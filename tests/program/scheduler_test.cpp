// Schedulers and the Executor run loop.
#include "program/scheduler.hpp"

#include <gtest/gtest.h>

#include "program/program.hpp"

namespace mpx::program {
namespace {

Program twoWriters() {
  ProgramBuilder b;
  const VarId x = b.var("x", 0);
  const VarId y = b.var("y", 0);
  auto t1 = b.thread();
  t1.write(x, lit(1)).write(x, lit(2));
  auto t2 = b.thread();
  t2.write(y, lit(1)).write(y, lit(2));
  return b.build();
}

std::vector<ThreadId> threadOrder(const ExecutionRecord& rec) {
  std::vector<ThreadId> out;
  for (const auto& e : rec.events) out.push_back(e.thread);
  return out;
}

TEST(GreedyScheduler, RunsLowestIdToCompletion) {
  const Program p = twoWriters();
  GreedyScheduler sched;
  const ExecutionRecord rec = runProgram(p, sched);
  // t1's 2 writes + exit, then t2's.
  EXPECT_EQ(threadOrder(rec), (std::vector<ThreadId>{0, 0, 0, 1, 1, 1}));
  EXPECT_FALSE(rec.deadlocked);
}

TEST(FixedScheduler, FollowsScriptThenFallsBack) {
  const Program p = twoWriters();
  FixedScheduler sched({1, 0, 1});
  const ExecutionRecord rec = runProgram(p, sched);
  const auto order = threadOrder(rec);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 0u);
  EXPECT_EQ(order[2], 1u);
  EXPECT_EQ(order[3], 0u);  // fallback: lowest-id runnable
}

TEST(FixedScheduler, NonRunnableScriptEntryThrows) {
  const Program p = twoWriters();
  FixedScheduler sched({5});
  Executor ex(p, sched);
  EXPECT_THROW(ex.run(), std::logic_error);
}

TEST(RoundRobinScheduler, AlternatesWithQuantumOne) {
  const Program p = twoWriters();
  RoundRobinScheduler sched(1);
  const ExecutionRecord rec = runProgram(p, sched);
  const auto order = threadOrder(rec);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 1u);
  EXPECT_EQ(order[2], 0u);
  EXPECT_EQ(order[3], 1u);
}

TEST(RoundRobinScheduler, HonorsQuantum) {
  const Program p = twoWriters();
  RoundRobinScheduler sched(2);
  const ExecutionRecord rec = runProgram(p, sched);
  const auto order = threadOrder(rec);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 0u);
  EXPECT_EQ(order[2], 1u);
  EXPECT_EQ(order[3], 1u);
}

TEST(RandomScheduler, SameSeedSameExecution) {
  const Program p = twoWriters();
  const auto a = runProgramRandom(p, 99);
  const auto b = runProgramRandom(p, 99);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i], b.events[i]);
  }
}

TEST(RandomScheduler, DifferentSeedsExploreDifferentOrders) {
  const Program p = twoWriters();
  bool sawDifference = false;
  const auto base = threadOrder(runProgramRandom(p, 0));
  for (std::uint64_t seed = 1; seed < 20 && !sawDifference; ++seed) {
    sawDifference = threadOrder(runProgramRandom(p, seed)) != base;
  }
  EXPECT_TRUE(sawDifference);
}

TEST(Executor, RecordsFinalSharedState) {
  const Program p = twoWriters();
  GreedyScheduler sched;
  const ExecutionRecord rec = runProgram(p, sched);
  EXPECT_EQ(rec.finalShared[p.vars.id("x")], 2);
  EXPECT_EQ(rec.finalShared[p.vars.id("y")], 2);
}

TEST(Executor, RecordsLocksHeldPerEvent) {
  ProgramBuilder b;
  const VarId x = b.var("x", 0);
  const LockId m = b.lock("m");
  auto t = b.thread();
  t.write(x, lit(1))
      .lockAcquire(m)
      .write(x, lit(2))
      .lockRelease(m)
      .write(x, lit(3));
  const Program p = b.build();
  GreedyScheduler sched;
  const ExecutionRecord rec = runProgram(p, sched);
  ASSERT_EQ(rec.events.size(), rec.locksHeld.size());
  for (std::size_t i = 0; i < rec.events.size(); ++i) {
    if (rec.events[i].kind == trace::EventKind::kWrite &&
        rec.events[i].value == 2) {
      EXPECT_EQ(rec.locksHeld[i], std::vector<LockId>{m});
    }
    if (rec.events[i].kind == trace::EventKind::kWrite &&
        rec.events[i].value != 2) {
      EXPECT_TRUE(rec.locksHeld[i].empty());
    }
  }
}

TEST(Executor, ListenerSeesEveryEventWithContext) {
  const Program p = twoWriters();
  GreedyScheduler sched;
  Executor ex(p, sched);
  std::size_t count = 0;
  ex.setListener([&count](const trace::Event&, const Interpreter& in) {
    ++count;
    EXPECT_GE(in.eventCount(), count);
  });
  const ExecutionRecord rec = ex.run();
  EXPECT_EQ(count, rec.events.size());
}

TEST(Executor, MaxStepsTruncates) {
  const Program p = twoWriters();
  GreedyScheduler sched;
  Executor ex(p, sched);
  const ExecutionRecord rec = ex.run(/*maxSteps=*/2);
  EXPECT_EQ(rec.steps, 2u);
  EXPECT_FALSE(ex.interpreter().allFinished());
}

TEST(Executor, DeadlockIsReported) {
  // Two threads acquire two locks in opposite order; force the deadlock.
  ProgramBuilder b;
  const LockId a = b.lock("a");
  const LockId c = b.lock("c");
  auto t1 = b.thread();
  t1.lockAcquire(a).lockAcquire(c).lockRelease(c).lockRelease(a);
  auto t2 = b.thread();
  t2.lockAcquire(c).lockAcquire(a).lockRelease(a).lockRelease(c);
  const Program p = b.build();
  FixedScheduler sched({0, 1});  // t1 takes a, t2 takes c -> deadlock
  const ExecutionRecord rec = runProgram(p, sched);
  EXPECT_TRUE(rec.deadlocked);
  EXPECT_EQ(rec.deadlockedThreads, (std::vector<ThreadId>{0, 1}));
}

}  // namespace
}  // namespace mpx::program
