// The canonical programs behave as the paper describes.
#include "program/corpus.hpp"

#include <gtest/gtest.h>

#include "program/explorer.hpp"
#include "program/scheduler.hpp"

namespace mpx::program::corpus {
namespace {

std::vector<Value> dataStates(const ExecutionRecord& rec, const Program& p,
                              const std::vector<std::string>& names,
                              std::vector<std::vector<Value>>* trace) {
  std::vector<VarId> ids;
  for (const auto& n : names) ids.push_back(p.vars.id(n));
  std::vector<Value> cur;
  for (const VarId v : ids) cur.push_back(p.vars.initial(v));
  if (trace) trace->push_back(cur);
  for (const auto& e : rec.events) {
    if (e.kind != trace::EventKind::kWrite) continue;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (ids[i] == e.var) {
        cur[i] = e.value;
        if (trace) trace->push_back(cur);
      }
    }
  }
  return cur;
}

TEST(LandingController, ObservedScheduleReproducesPaperRun) {
  const Program p = landingController();
  FixedScheduler sched(landingObservedSchedule());
  const ExecutionRecord rec = runProgram(p, sched);
  ASSERT_FALSE(rec.deadlocked);

  std::vector<std::vector<Value>> states;
  dataStates(rec, p, {"landing", "approved", "radio"}, &states);
  // Paper: <0,0,1> -> approved -> <0,1,1> -> landing -> <1,1,1>
  //        -> radio off -> <1,1,0>.
  const std::vector<std::vector<Value>> expected = {
      {0, 0, 1}, {0, 1, 1}, {1, 1, 1}, {1, 1, 0}};
  EXPECT_EQ(states, expected);
}

TEST(LandingController, RadioFirstMeansNoLanding) {
  const Program p = landingController();
  // Thread 2 (radio) runs to completion first.
  FixedScheduler sched({1, 1, 1});
  const ExecutionRecord rec = runProgram(p, sched);
  EXPECT_EQ(rec.finalShared[p.vars.id("approved")], 0);
  EXPECT_EQ(rec.finalShared[p.vars.id("landing")], 0);
}

TEST(LandingController, PaddingDelaysTheRadio) {
  const Program p = landingController(/*padding=*/5);
  GreedyScheduler sched;
  const ExecutionRecord rec = runProgram(p, sched);
  // Still terminates with the radio off.
  EXPECT_EQ(rec.finalShared[p.vars.id("radio")], 0);
}

TEST(Xyz, ObservedScheduleReproducesPaperStateSequence) {
  const Program p = xyzProgram();
  FixedScheduler sched(xyzObservedSchedule());
  const ExecutionRecord rec = runProgram(p, sched);
  ASSERT_FALSE(rec.deadlocked);

  std::vector<std::vector<Value>> states;
  dataStates(rec, p, {"x", "y", "z"}, &states);
  // Paper: (-1,0,0), (0,0,0), (0,0,1), (1,0,1), (1,1,1).
  const std::vector<std::vector<Value>> expected = {
      {-1, 0, 0}, {0, 0, 0}, {0, 0, 1}, {1, 0, 1}, {1, 1, 1}};
  EXPECT_EQ(states, expected);
}

TEST(Xyz, GreedyScheduleEndsAtSameFinalState) {
  // Final state is schedule-dependent for y (reads x at different times),
  // but x always ends at 1 here? No: if T2 runs first, z = x+1 = 0, x = 0;
  // then T1: x = 1, y = 2.  Just verify termination and sane values.
  const Program p = xyzProgram();
  GreedyScheduler sched;
  const ExecutionRecord rec = runProgram(p, sched);
  EXPECT_FALSE(rec.deadlocked);
  EXPECT_EQ(rec.finalShared[p.vars.id("x")], 1);
}

TEST(BankAccount, GreedyDepositsSumCorrectly) {
  const Program p = bankAccountRacy();
  GreedyScheduler sched;
  const ExecutionRecord rec = runProgram(p, sched);
  EXPECT_EQ(rec.finalShared[p.vars.id("balance")], 150);
}

TEST(BankAccount, InterleavedRacyDepositsLoseAnUpdate) {
  const Program p = bankAccountRacy();
  // Both threads read 0 before either writes.
  FixedScheduler sched({0, 1, 0, 1, 0, 1});
  const ExecutionRecord rec = runProgram(p, sched);
  const Value final = rec.finalShared[p.vars.id("balance")];
  EXPECT_NE(final, 150);  // one update lost
}

TEST(BankAccount, LockedDepositsNeverLoseUpdates) {
  const Program p = bankAccountLocked(2);
  RandomScheduler sched(7);
  const ExecutionRecord rec = runProgram(p, sched);
  EXPECT_EQ(rec.finalShared[p.vars.id("balance")], 2 * 100 + 2 * 50);
}

TEST(DiningPhilosophers, GreedyRunEveryoneEats) {
  const Program p = diningPhilosophers(4);
  GreedyScheduler sched;
  const ExecutionRecord rec = runProgram(p, sched);
  EXPECT_FALSE(rec.deadlocked);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(rec.finalShared[p.vars.id("meals" + std::to_string(i))], 1);
  }
}

TEST(IndependentWriters, EveryVariableEndsAtWriteCount) {
  const Program p = independentWriters(3, 4);
  RandomScheduler sched(3);
  const ExecutionRecord rec = runProgram(p, sched);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(rec.finalShared[p.vars.id("v" + std::to_string(i))], 4);
  }
}

TEST(SerializedWriters, TotalIsExactUnderAnySchedule) {
  const Program p = serializedWriters(3, 3);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const ExecutionRecord rec = runProgramRandom(p, seed);
    EXPECT_EQ(rec.finalShared[p.vars.id("total")], 9) << "seed " << seed;
  }
}

TEST(ProducerConsumer, AllItemsConsumedUnderRandomSchedules) {
  const Program p = producerConsumer(3);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const ExecutionRecord rec = runProgramRandom(p, seed);
    EXPECT_FALSE(rec.deadlocked) << "seed " << seed;
    EXPECT_EQ(rec.finalShared[p.vars.id("consumed")], 3) << "seed " << seed;
  }
}

TEST(SpawnJoin, SumIsComputedAfterBothWorkers) {
  const Program p = spawnJoin();
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const ExecutionRecord rec = runProgramRandom(p, seed);
    EXPECT_FALSE(rec.deadlocked);
    EXPECT_EQ(rec.finalShared[p.vars.id("sum")], 42) << "seed " << seed;
  }
}

TEST(CasCounter, NeverLosesUpdatesUnderRandomSchedules) {
  const Program p = casCounter(2, 3);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const ExecutionRecord rec = runProgramRandom(p, seed);
    EXPECT_FALSE(rec.deadlocked) << "seed " << seed;
    EXPECT_EQ(rec.finalShared[p.vars.id("counter")], 6) << "seed " << seed;
  }
}

TEST(CasCounter, ExhaustivelyCorrect) {
  // Every schedule ends with counter == threads * increments — the CAS
  // retry loop is the fix for bankAccountRacy's lost update.
  const Program p = casCounter(2, 1);
  ExhaustiveExplorer ex;
  const VarId counter = p.vars.id("counter");
  bool allExact = true;
  ex.explore(p, [&](const ExecutionRecord& rec) {
    if (rec.finalShared[counter] != 2) allExact = false;
    return true;
  });
  EXPECT_TRUE(allExact);
  EXPECT_GT(ex.lastStats().executions, 1u);
}

TEST(RandomProgram, SameSeedSameProgram) {
  const Program a = randomProgram(5);
  const Program b = randomProgram(5);
  EXPECT_EQ(a.disassemble(), b.disassemble());
}

TEST(RandomProgram, TerminatesUnderRandomSchedules) {
  RandomProgramOptions opts;
  opts.locks = 2;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Program p = randomProgram(seed, opts);
    const ExecutionRecord rec = runProgramRandom(p, seed * 31 + 1);
    EXPECT_FALSE(rec.deadlocked) << "seed " << seed;
    EXPECT_GT(rec.events.size(), 0u);
  }
}

}  // namespace
}  // namespace mpx::program::corpus
