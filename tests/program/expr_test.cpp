#include "program/expr.hpp"

#include <gtest/gtest.h>

namespace mpx::program {
namespace {

Value ev(const Expr& e, std::vector<Value> regs = {0, 0, 0, 0}) {
  return e.eval(regs);
}

TEST(Expr, DefaultIsZero) { EXPECT_EQ(ev(Expr{}), 0); }

TEST(Expr, ConstantsAndRegisters) {
  EXPECT_EQ(ev(lit(42)), 42);
  EXPECT_EQ(ev(lit(-7)), -7);
  EXPECT_EQ(ev(reg(2), {1, 2, 3}), 3);
}

TEST(Expr, Arithmetic) {
  EXPECT_EQ(ev(lit(2) + lit(3)), 5);
  EXPECT_EQ(ev(lit(2) - lit(3)), -1);
  EXPECT_EQ(ev(lit(4) * lit(5)), 20);
  EXPECT_EQ(ev(lit(17) / lit(5)), 3);
  EXPECT_EQ(ev(lit(17) % lit(5)), 2);
  EXPECT_EQ(ev(-lit(9)), -9);
}

TEST(Expr, DivisionAndModByZeroAreTotal) {
  EXPECT_EQ(ev(lit(5) / lit(0)), 0);
  EXPECT_EQ(ev(lit(5) % lit(0)), 0);
}

TEST(Expr, Comparisons) {
  EXPECT_EQ(ev(lit(1) == lit(1)), 1);
  EXPECT_EQ(ev(lit(1) == lit(2)), 0);
  EXPECT_EQ(ev(lit(1) != lit(2)), 1);
  EXPECT_EQ(ev(lit(1) < lit(2)), 1);
  EXPECT_EQ(ev(lit(2) <= lit(2)), 1);
  EXPECT_EQ(ev(lit(3) > lit(2)), 1);
  EXPECT_EQ(ev(lit(2) >= lit(3)), 0);
}

TEST(Expr, BooleanOps) {
  EXPECT_EQ(ev(lit(1) && lit(2)), 1);
  EXPECT_EQ(ev(lit(1) && lit(0)), 0);
  EXPECT_EQ(ev(lit(0) || lit(3)), 1);
  EXPECT_EQ(ev(lit(0) || lit(0)), 0);
  EXPECT_EQ(ev(!lit(0)), 1);
  EXPECT_EQ(ev(!lit(5)), 0);
}

TEST(Expr, NestedExpression) {
  // (r0 + 1) * (r1 - 2)
  const Expr e = (reg(0) + lit(1)) * (reg(1) - lit(2));
  EXPECT_EQ(ev(e, {4, 10}), 40);
}

TEST(Expr, MaxRegister) {
  EXPECT_EQ(lit(1).maxRegister(), -1);
  EXPECT_EQ(reg(3).maxRegister(), 3);
  EXPECT_EQ((reg(1) + reg(5) * lit(2)).maxRegister(), 5);
}

TEST(Expr, OutOfRangeRegisterThrows) {
  std::vector<Value> regs{1};
  EXPECT_THROW((void)reg(3).eval(regs), std::out_of_range);
}

TEST(Expr, ToString) {
  EXPECT_EQ((reg(0) + lit(1)).toString(), "(r0 + 1)");
  EXPECT_EQ((!reg(1)).toString(), "!r1");
}

TEST(Expr, SharedStructureIsCheapToCopy) {
  const Expr a = reg(0) + lit(1);
  const Expr b = a;  // shares nodes
  EXPECT_EQ(ev(b, {4}), 5);
  EXPECT_EQ(ev(a, {4}), 5);
}

}  // namespace
}  // namespace mpx::program
