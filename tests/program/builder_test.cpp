// ProgramBuilder: structured control flow lowering and validation.
#include <gtest/gtest.h>

#include "program/program.hpp"

namespace mpx::program {
namespace {

TEST(ProgramBuilder, EmptyThreadGetsImplicitHalt) {
  ProgramBuilder b;
  b.thread("t");
  const Program p = b.build();
  ASSERT_EQ(p.threads.size(), 1u);
  ASSERT_EQ(p.threads[0].code.size(), 1u);
  EXPECT_EQ(p.threads[0].code[0].op, OpCode::kHalt);
}

TEST(ProgramBuilder, ThreadNamesDefaultAndExplicit) {
  ProgramBuilder b;
  b.thread();
  b.thread("worker");
  const Program p = b.build();
  EXPECT_EQ(p.threads[0].name, "t1");
  EXPECT_EQ(p.threads[1].name, "worker");
}

TEST(ProgramBuilder, IfThenLowering) {
  ProgramBuilder b;
  const VarId x = b.var("x", 0);
  auto t = b.thread();
  t.compute(0, lit(1)).ifThen(reg(0), [&](ThreadBuilder& tb) {
    tb.write(x, lit(5));
  });
  const Program p = b.build();
  const auto& code = p.threads[0].code;
  // compute, brz, write, halt
  ASSERT_EQ(code.size(), 4u);
  EXPECT_EQ(code[1].op, OpCode::kBranchIfZero);
  EXPECT_EQ(code[1].target, 3u);  // skips the write
}

TEST(ProgramBuilder, IfThenElseLowering) {
  ProgramBuilder b;
  const VarId x = b.var("x", 0);
  auto t = b.thread();
  t.ifThenElse(
      reg(0), [&](ThreadBuilder& tb) { tb.write(x, lit(1)); },
      [&](ThreadBuilder& tb) { tb.write(x, lit(2)); });
  const Program p = b.build();
  const auto& code = p.threads[0].code;
  // brz(else), write1, jump(end), write2, halt
  ASSERT_EQ(code.size(), 5u);
  EXPECT_EQ(code[0].op, OpCode::kBranchIfZero);
  EXPECT_EQ(code[0].target, 3u);
  EXPECT_EQ(code[2].op, OpCode::kJump);
  EXPECT_EQ(code[2].target, 4u);
}

TEST(ProgramBuilder, WhileLoopLowering) {
  ProgramBuilder b;
  const VarId x = b.var("x", 0);
  auto t = b.thread();
  t.whileLoop(reg(0), [&](ThreadBuilder& tb) { tb.read(x, 0); });
  const Program p = b.build();
  const auto& code = p.threads[0].code;
  // brz(exit), read, jump(top), halt
  ASSERT_EQ(code.size(), 4u);
  EXPECT_EQ(code[0].op, OpCode::kBranchIfZero);
  EXPECT_EQ(code[0].target, 3u);
  EXPECT_EQ(code[2].op, OpCode::kJump);
  EXPECT_EQ(code[2].target, 0u);
}

TEST(ProgramBuilder, RepeatUnrolls) {
  ProgramBuilder b;
  auto t = b.thread();
  t.repeat(3, [](ThreadBuilder& tb) { tb.internalOp(); });
  const Program p = b.build();
  EXPECT_EQ(p.threads[0].code.size(), 4u);  // 3 ops + halt
}

TEST(ProgramBuilder, SynchronizedWrapsBody) {
  ProgramBuilder b;
  const VarId x = b.var("x", 0);
  const LockId m = b.lock("m");
  auto t = b.thread();
  t.synchronized(m, [&](ThreadBuilder& tb) { tb.write(x, lit(1)); });
  const Program p = b.build();
  const auto& code = p.threads[0].code;
  EXPECT_EQ(code[0].op, OpCode::kLock);
  EXPECT_EQ(code[1].op, OpCode::kWrite);
  EXPECT_EQ(code[2].op, OpCode::kUnlock);
}

TEST(ProgramBuilder, LockAndCondGetBackingVariables) {
  ProgramBuilder b;
  const LockId m = b.lock("m");
  const CondId c = b.cond("c");
  const ThreadId t = b.thread("w", /*startsRunning=*/false).id();
  const Program p = b.build();
  EXPECT_EQ(p.vars.role(p.lockVars[m]), trace::VarRole::kLock);
  EXPECT_EQ(p.vars.role(p.condVars[c]), trace::VarRole::kCondition);
  EXPECT_EQ(p.vars.role(p.threadVars[t]), trace::VarRole::kCondition);
  EXPECT_EQ(p.vars.name(p.lockVars[m]), "__lock_m");
}

TEST(ProgramBuilder, NoteAttachesToNextInstruction) {
  ProgramBuilder b;
  const VarId x = b.var("x", 0);
  auto t = b.thread();
  t.note("the write").write(x, lit(1));
  const Program p = b.build();
  EXPECT_EQ(p.threads[0].code[0].note, "the write");
}

TEST(ProgramBuilder, RegisterOutOfRangeRejected) {
  ProgramBuilder b;
  b.registers(2);
  const VarId x = b.var("x", 0);
  auto t = b.thread();
  t.read(x, 5);
  EXPECT_THROW(b.build(), std::out_of_range);
}

TEST(ProgramBuilder, ExpressionRegisterOutOfRangeRejected) {
  ProgramBuilder b;
  b.registers(2);
  const VarId x = b.var("x", 0);
  auto t = b.thread();
  t.write(x, reg(7));
  EXPECT_THROW(b.build(), std::out_of_range);
}

TEST(ProgramBuilder, SpawnOfInitiallyRunningThreadRejected) {
  ProgramBuilder b;
  auto t1 = b.thread();
  auto t2 = b.thread();
  t1.spawn(t2.id());
  EXPECT_THROW(b.build(), std::logic_error);
}

TEST(ProgramBuilder, ReadWriteOfLockVariableRejected) {
  // The lock's backing variable must not be accessed as plain data.
  ProgramBuilder b;
  const LockId m = b.lock("m");
  const VarId lockVar = b.lockVar(m);
  auto t = b.thread();
  t.write(lockVar, lit(1));
  EXPECT_THROW(b.build(), std::logic_error);
}

TEST(ProgramBuilder, BuildTwiceThrows) {
  ProgramBuilder b;
  b.thread();
  (void)b.build();
  EXPECT_THROW(b.build(), std::logic_error);
}

TEST(Program, DisassembleMentionsAllPieces) {
  ProgramBuilder b;
  const VarId x = b.var("x", 0);
  const LockId m = b.lock("m");
  auto t = b.thread("main");
  t.lockAcquire(m).read(x, 0).write(x, reg(0) + lit(1)).lockRelease(m);
  const Program p = b.build();
  const std::string dis = p.disassemble();
  EXPECT_NE(dis.find("main"), std::string::npos);
  EXPECT_NE(dis.find("lock m"), std::string::npos);
  EXPECT_NE(dis.find("x <- (r0 + 1)"), std::string::npos);
  EXPECT_NE(dis.find("halt"), std::string::npos);
}

}  // namespace
}  // namespace mpx::program
