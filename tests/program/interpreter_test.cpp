// VM semantics: one atomic instruction per step, blocking synchronization,
// event generation with correct numbering.
#include "program/interpreter.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "program/program.hpp"

namespace mpx::program {
namespace {

using trace::EventKind;

TEST(Interpreter, ReadWriteComputeSemantics) {
  ProgramBuilder b;
  const VarId x = b.var("x", 7);
  const VarId y = b.var("y", 0);
  auto t = b.thread();
  t.read(x, 0).compute(1, reg(0) * lit(2)).write(y, reg(1));
  const Program p = b.build();

  Interpreter in(p);
  auto e1 = in.step(0);  // read
  ASSERT_EQ(e1.events.size(), 1u);
  EXPECT_EQ(e1.events[0].kind, EventKind::kRead);
  EXPECT_EQ(e1.events[0].value, 7);
  auto e2 = in.step(0);  // compute -> internal event
  ASSERT_EQ(e2.events.size(), 1u);
  EXPECT_EQ(e2.events[0].kind, EventKind::kInternal);
  auto e3 = in.step(0);  // write
  EXPECT_EQ(e3.events[0].kind, EventKind::kWrite);
  EXPECT_EQ(e3.events[0].value, 14);
  EXPECT_EQ(in.sharedValue(y), 14);
}

TEST(Interpreter, ControlFlowGeneratesNoEvents) {
  ProgramBuilder b;
  const VarId x = b.var("x", 0);
  auto t = b.thread();
  t.compute(0, lit(1)).ifThenElse(
      reg(0), [&](ThreadBuilder& tb) { tb.write(x, lit(10)); },
      [&](ThreadBuilder& tb) { tb.write(x, lit(20)); });
  const Program p = b.build();
  Interpreter in(p);
  in.step(0);                      // compute
  const auto br = in.step(0);      // brz — pure control flow
  EXPECT_TRUE(br.events.empty());
  const auto wr = in.step(0);
  EXPECT_EQ(wr.events[0].value, 10);  // then-branch taken
}

TEST(Interpreter, EventNumberingIsPerThreadAndGlobal) {
  ProgramBuilder b;
  const VarId x = b.var("x", 0);
  auto t1 = b.thread();
  t1.write(x, lit(1)).write(x, lit(2));
  auto t2 = b.thread();
  t2.write(x, lit(3));
  const Program p = b.build();

  Interpreter in(p);
  const auto a = in.step(0).events[0];
  const auto c = in.step(1).events[0];
  const auto d = in.step(0).events[0];
  EXPECT_EQ(a.localSeq, 1u);
  EXPECT_EQ(c.localSeq, 1u);  // per-thread numbering
  EXPECT_EQ(d.localSeq, 2u);
  EXPECT_EQ(a.globalSeq, 1u);
  EXPECT_EQ(c.globalSeq, 2u);  // global total order
  EXPECT_EQ(d.globalSeq, 3u);
}

TEST(Interpreter, LockBlocksAndUnblocks) {
  ProgramBuilder b;
  const LockId m = b.lock("m");
  const VarId x = b.var("x", 0);
  auto t1 = b.thread();
  t1.lockAcquire(m).write(x, lit(1)).lockRelease(m);
  auto t2 = b.thread();
  t2.lockAcquire(m).write(x, lit(2)).lockRelease(m);
  const Program p = b.build();

  Interpreter in(p);
  const auto a = in.step(0);  // t1 acquires
  EXPECT_EQ(a.events[0].kind, EventKind::kLockAcquire);
  EXPECT_EQ(in.lockOwner(m), 0u);
  EXPECT_EQ(in.locksHeld(0), std::vector<LockId>{m});

  // t2 cannot progress: not in runnableThreads while m is held.
  auto runnable = in.runnableThreads();
  EXPECT_EQ(runnable, std::vector<ThreadId>{0});

  in.step(0);                  // write
  const auto r = in.step(0);   // release
  EXPECT_EQ(r.events[0].kind, EventKind::kLockRelease);
  EXPECT_EQ(in.lockOwner(m), kNoThread);

  runnable = in.runnableThreads();
  EXPECT_NE(std::find(runnable.begin(), runnable.end(), 1u), runnable.end());
  const auto a2 = in.step(1);
  EXPECT_EQ(a2.events[0].kind, EventKind::kLockAcquire);
}

TEST(Interpreter, UnlockWithoutOwnershipThrows) {
  ProgramBuilder b;
  const LockId m = b.lock("m");
  auto t = b.thread();
  t.lockRelease(m);
  const Program p = b.build();
  Interpreter in(p);
  EXPECT_THROW(in.step(0), std::logic_error);
}

TEST(Interpreter, HaltWhileHoldingLockThrows) {
  ProgramBuilder b;
  const LockId m = b.lock("m");
  auto t = b.thread();
  t.lockAcquire(m);  // never released
  const Program p = b.build();
  Interpreter in(p);
  in.step(0);
  EXPECT_THROW(in.step(0), std::logic_error);  // halt with lock held
}

TEST(Interpreter, WaitNotifyRoundTrip) {
  ProgramBuilder b;
  const LockId m = b.lock("m");
  const CondId c = b.cond("c");
  const VarId x = b.var("x", 0);
  auto waiter = b.thread("waiter");
  waiter.lockAcquire(m).wait(c, m).write(x, lit(1)).lockRelease(m);
  auto notifier = b.thread("notifier");
  notifier.notifyAll(c);
  const Program p = b.build();

  Interpreter in(p);
  in.step(0);                        // waiter acquires m
  const auto w = in.step(0);         // waiter waits: releases m, parks
  ASSERT_EQ(w.events.size(), 1u);
  EXPECT_EQ(w.events[0].kind, EventKind::kLockRelease);
  EXPECT_FALSE(w.progressed);
  EXPECT_EQ(in.status(0), ThreadStatus::kWaiting);
  EXPECT_EQ(in.lockOwner(m), kNoThread);

  // Waiter is NOT runnable before the notify.
  EXPECT_EQ(in.runnableThreads(), std::vector<ThreadId>{1});

  const auto n = in.step(1);         // notify
  EXPECT_EQ(n.events[0].kind, EventKind::kNotify);
  EXPECT_EQ(in.status(0), ThreadStatus::kBlockedOnLock);

  const auto resume = in.step(0);    // reacquire + resume
  ASSERT_EQ(resume.events.size(), 2u);
  EXPECT_EQ(resume.events[0].kind, EventKind::kLockAcquire);
  EXPECT_EQ(resume.events[1].kind, EventKind::kWaitResume);
  const auto wr = in.step(0);        // the guarded write
  EXPECT_EQ(wr.events[0].value, 1);
}

TEST(Interpreter, LostWakeupIsDeadlock) {
  // Notify happens before the wait: the waiter sleeps forever.
  ProgramBuilder b;
  const LockId m = b.lock("m");
  const CondId c = b.cond("c");
  auto waiter = b.thread();
  waiter.lockAcquire(m).wait(c, m).lockRelease(m);
  auto notifier = b.thread();
  notifier.notifyAll(c);
  const Program p = b.build();

  Interpreter in(p);
  in.step(1);        // notify first (no one waiting)
  in.step(1);        // notifier halts
  in.step(0);        // waiter acquires
  in.step(0);        // waiter waits — never woken
  EXPECT_TRUE(in.isDeadlocked());
  EXPECT_EQ(in.unfinishedThreads(), std::vector<ThreadId>{0});
}

TEST(Interpreter, SpawnEmitsStartEventOnChildFirstStep) {
  ProgramBuilder b;
  const VarId x = b.var("x", 0);
  auto main = b.thread("main");
  auto child = b.thread("child", /*startsRunning=*/false);
  child.write(x, lit(9));
  main.spawn(child.id());
  const Program p = b.build();

  Interpreter in(p);
  EXPECT_EQ(in.status(1), ThreadStatus::kNotStarted);
  const auto sp = in.step(0);  // spawn
  EXPECT_EQ(sp.events[0].kind, EventKind::kNotify);
  EXPECT_EQ(sp.events[0].var, p.threadVars[1]);
  EXPECT_EQ(in.status(1), ThreadStatus::kRunnable);

  const auto first = in.step(1);  // child's start event
  ASSERT_EQ(first.events.size(), 1u);
  EXPECT_EQ(first.events[0].kind, EventKind::kThreadStart);
  EXPECT_EQ(first.events[0].thread, 1u);
  const auto wr = in.step(1);
  EXPECT_EQ(wr.events[0].value, 9);
}

TEST(Interpreter, JoinBlocksUntilTargetFinishes) {
  ProgramBuilder b;
  auto main = b.thread("main");
  auto child = b.thread("child", false);
  child.internalOp();
  main.spawn(child.id()).join(child.id());
  const Program p = b.build();

  Interpreter in(p);
  in.step(0);  // spawn
  // main's join target unfinished: not runnable.
  {
    const auto runnable = in.runnableThreads();
    EXPECT_EQ(runnable, std::vector<ThreadId>{1});
  }
  in.step(1);  // child start event
  in.step(1);  // child internal
  const auto exitStep = in.step(1);  // child halt
  EXPECT_EQ(exitStep.events[0].kind, EventKind::kThreadExit);
  EXPECT_EQ(in.status(1), ThreadStatus::kFinished);

  const auto j = in.step(0);  // join resumes
  EXPECT_EQ(j.events[0].kind, EventKind::kWaitResume);
  EXPECT_EQ(j.events[0].var, p.threadVars[1]);
}

TEST(Interpreter, SpawnTwiceThrows) {
  ProgramBuilder b;
  auto m1 = b.thread();
  auto m2 = b.thread();
  auto child = b.thread("c", false);
  m1.spawn(child.id());
  m2.spawn(child.id());
  const Program p = b.build();
  Interpreter in(p);
  in.step(0);
  EXPECT_THROW(in.step(1), std::logic_error);
}

TEST(Interpreter, SteppingFinishedThreadThrows) {
  ProgramBuilder b;
  b.thread();
  const Program p = b.build();
  Interpreter in(p);
  in.step(0);  // halt
  EXPECT_THROW(in.step(0), std::logic_error);
}

TEST(Interpreter, HaltEmitsThreadExitOnOwnDummyVar) {
  ProgramBuilder b;
  b.thread();
  const Program p = b.build();
  Interpreter in(p);
  const auto h = in.step(0);
  ASSERT_EQ(h.events.size(), 1u);
  EXPECT_EQ(h.events[0].kind, EventKind::kThreadExit);
  EXPECT_EQ(h.events[0].var, p.threadVars[0]);
  EXPECT_TRUE(in.allFinished());
  EXPECT_FALSE(in.isDeadlocked());
}

TEST(Interpreter, CasSuccessIsAtomicUpdate) {
  ProgramBuilder b;
  const VarId x = b.var("x", 5);
  auto t = b.thread();
  t.compareExchange(x, 0, lit(5), lit(9));
  const Program p = b.build();
  Interpreter in(p);
  const auto r = in.step(0);
  ASSERT_EQ(r.events.size(), 1u);
  EXPECT_EQ(r.events[0].kind, EventKind::kAtomicUpdate);
  EXPECT_EQ(r.events[0].value, 9);
  EXPECT_EQ(in.sharedValue(x), 9);
}

TEST(Interpreter, CasFailureIsARead) {
  ProgramBuilder b;
  const VarId x = b.var("x", 5);
  auto t = b.thread();
  t.compareExchange(x, 0, lit(7), lit(9));  // expected 7, actual 5
  const Program p = b.build();
  Interpreter in(p);
  const auto r = in.step(0);
  ASSERT_EQ(r.events.size(), 1u);
  EXPECT_EQ(r.events[0].kind, EventKind::kRead);
  EXPECT_EQ(r.events[0].value, 5);
  EXPECT_EQ(in.sharedValue(x), 5);  // unchanged
}

TEST(Interpreter, CasObservedValueLandsInDst) {
  ProgramBuilder b;
  const VarId x = b.var("x", 3);
  auto t = b.thread();
  t.compareExchange(x, 2, lit(0), lit(1));  // fails; r2 = 3
  const Program p = b.build();
  Interpreter in(p);
  in.step(0);
  // The dst register is thread-local; verify through a subsequent write.
  // (No direct register accessor — rebuild with a write of r2.)
  ProgramBuilder b2;
  const VarId y = b2.var("y", 3);
  const VarId out = b2.var("out", 0);
  auto t2 = b2.thread();
  t2.compareExchange(y, 2, lit(0), lit(1)).write(out, reg(2));
  const Program p2 = b2.build();
  Interpreter in2(p2);
  in2.step(0);
  in2.step(0);
  EXPECT_EQ(in2.sharedValue(out), 3);
}

TEST(Interpreter, CopyIsIndependentSnapshot) {
  ProgramBuilder b;
  const VarId x = b.var("x", 0);
  auto t = b.thread();
  t.write(x, lit(1)).write(x, lit(2));
  const Program p = b.build();

  Interpreter a(p);
  a.step(0);
  Interpreter snapshot = a;
  a.step(0);
  EXPECT_EQ(a.sharedValue(x), 2);
  EXPECT_EQ(snapshot.sharedValue(x), 1);
  snapshot.step(0);
  EXPECT_EQ(snapshot.sharedValue(x), 2);
}

TEST(Interpreter, StateHashDistinguishesStates) {
  ProgramBuilder b;
  const VarId x = b.var("x", 0);
  auto t = b.thread();
  t.write(x, lit(1));
  const Program p = b.build();
  Interpreter a(p);
  const std::size_t h0 = a.stateHash();
  a.step(0);
  EXPECT_NE(a.stateHash(), h0);
}

TEST(Interpreter, StateHashEqualForEqualStates) {
  const Program p = [] {
    ProgramBuilder b;
    const VarId x = b.var("x", 0);
    const VarId y = b.var("y", 0);
    auto t1 = b.thread();
    t1.write(x, lit(1));
    auto t2 = b.thread();
    t2.write(y, lit(1));
    return b.build();
  }();
  // Reaching the same cut along both orders yields the same dynamic state.
  Interpreter a(p);
  a.step(0);
  a.step(1);
  Interpreter b2(p);
  b2.step(1);
  b2.step(0);
  EXPECT_EQ(a.stateHash(), b2.stateHash());
}

}  // namespace
}  // namespace mpx::program
