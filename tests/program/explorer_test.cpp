// Exhaustive schedule exploration — the ground-truth oracle.
#include "program/explorer.hpp"

#include <gtest/gtest.h>

#include "program/corpus.hpp"
#include "program/program.hpp"

namespace mpx::program {
namespace {

/// n-choose-k for small numbers.
std::uint64_t choose(std::uint64_t n, std::uint64_t k) {
  std::uint64_t r = 1;
  for (std::uint64_t i = 1; i <= k; ++i) r = r * (n - k + i) / i;
  return r;
}

TEST(Explorer, SingleThreadHasOneExecution) {
  ProgramBuilder b;
  const VarId x = b.var("x", 0);
  auto t = b.thread();
  t.write(x, lit(1)).write(x, lit(2));
  const Program p = b.build();
  ExhaustiveExplorer ex;
  EXPECT_EQ(ex.countExecutions(p), 1u);
}

class ExplorerInterleavings
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ExplorerInterleavings, TwoIndependentThreadsCountIsBinomial) {
  const auto [a, c] = GetParam();
  // Thread 1 takes a+1 steps (a writes + halt), thread 2 c+1.
  const Program p = [&] {
    ProgramBuilder b;
    const VarId x = b.var("x", 0);
    const VarId y = b.var("y", 0);
    auto t1 = b.thread();
    for (std::size_t i = 0; i < a; ++i) t1.write(x, lit(1));
    auto t2 = b.thread();
    for (std::size_t i = 0; i < c; ++i) t2.write(y, lit(1));
    return b.build();
  }();
  ExhaustiveExplorer ex;
  EXPECT_EQ(ex.countExecutions(p), choose(a + c + 2, a + 1));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, ExplorerInterleavings,
    ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                      std::pair<std::size_t, std::size_t>{2, 1},
                      std::pair<std::size_t, std::size_t>{2, 2},
                      std::pair<std::size_t, std::size_t>{3, 2}));

TEST(Explorer, FindsTheDiningPhilosophersDeadlock) {
  const Program p = corpus::diningPhilosophers(3);
  ExhaustiveExplorer ex;
  EXPECT_TRUE(ex.existsExecution(
      p, [](const ExecutionRecord& r) { return r.deadlocked; }));
  EXPECT_GT(ex.lastStats().statesExpanded, 0u);
}

TEST(Explorer, OrderedForksNeverDeadlock) {
  const Program p = corpus::diningPhilosophers(3, /*orderedForks=*/true);
  ExhaustiveExplorer ex;
  EXPECT_FALSE(ex.existsExecution(
      p, [](const ExecutionRecord& r) { return r.deadlocked; }));
}

TEST(Explorer, CollectAllProducesCompleteRecords) {
  const Program p = corpus::bankAccountRacy();
  ExhaustiveExplorer ex;
  const auto all = ex.collectAll(p);
  ASSERT_FALSE(all.empty());
  const VarId balance = p.vars.id("balance");
  for (const auto& rec : all) {
    EXPECT_FALSE(rec.deadlocked);
    // Lost update or not, the balance ends in one of three values.
    const Value v = rec.finalShared[balance];
    EXPECT_TRUE(v == 150 || v == 100 || v == 50) << v;
  }
  // Some schedule must exhibit the lost update.
  const bool lost = std::any_of(all.begin(), all.end(),
                                [balance](const ExecutionRecord& r) {
                                  return r.finalShared[balance] != 150;
                                });
  EXPECT_TRUE(lost);
}

TEST(Explorer, EarlyStopTruncates) {
  const Program p = corpus::independentWriters(2, 2);
  ExhaustiveExplorer ex;
  std::size_t seen = 0;
  const auto stats = ex.explore(p, [&seen](const ExecutionRecord&) {
    return ++seen < 3;
  });
  EXPECT_EQ(seen, 3u);
  EXPECT_TRUE(stats.truncated);
}

TEST(Explorer, MaxExecutionsCap) {
  ExploreOptions opts;
  opts.maxExecutions = 5;
  ExhaustiveExplorer ex(opts);
  const Program p = corpus::independentWriters(3, 2);
  const auto stats = ex.explore(p, [](const ExecutionRecord&) { return true; });
  EXPECT_EQ(stats.executions, 5u);
  EXPECT_TRUE(stats.truncated);
}

TEST(Explorer, DedupeStatesVisitsEachStateOnce) {
  // Two independent single-write threads (2 steps each incl. halt):
  // C(4,2) = 6 executions, but many interleavings converge to the same
  // dynamic state; with dedupe, converging branches are pruned.
  const Program p = corpus::independentWriters(2, 1);
  ExhaustiveExplorer full;
  const std::size_t allExecs = full.countExecutions(p);
  EXPECT_EQ(allExecs, 6u);

  ExploreOptions opts;
  opts.dedupeStates = true;
  ExhaustiveExplorer deduped(opts);
  EXPECT_LT(deduped.countExecutions(p), allExecs);
}

TEST(Explorer, DeadlockCountsReported) {
  const Program p = corpus::diningPhilosophers(2);
  ExhaustiveExplorer ex;
  std::size_t deadlocks = 0;
  const auto stats = ex.explore(p, [&](const ExecutionRecord& r) {
    if (r.deadlocked) ++deadlocks;
    return true;
  });
  EXPECT_EQ(stats.deadlocks, deadlocks);
  EXPECT_GT(stats.deadlocks, 0u);
  EXPECT_GT(stats.executions, stats.deadlocks);
}

TEST(Explorer, ProducerConsumerAlwaysCompletes) {
  const Program p = corpus::producerConsumer(2);
  ExhaustiveExplorer ex;
  const VarId consumed = p.vars.id("consumed");
  bool allComplete = true;
  ex.explore(p, [&](const ExecutionRecord& r) {
    if (r.deadlocked || r.finalShared[consumed] != 2) allComplete = false;
    return true;
  });
  EXPECT_TRUE(allComplete);
  EXPECT_GT(ex.lastStats().executions, 1u);
}

}  // namespace
}  // namespace mpx::program
