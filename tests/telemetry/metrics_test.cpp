// Instrument semantics and registry behavior: counters, gauges, histogram
// bucketing, and snapshot consistency under concurrent writers.
#include "telemetry/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace mpx::telemetry {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddAndHighWaterMark) {
  Gauge g;
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);
  g.recordMax(5);
  EXPECT_EQ(g.value(), 7) << "recordMax must not lower the gauge";
  g.recordMax(19);
  EXPECT_EQ(g.value(), 19);
  g.reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(Histogram, BoundsAreInclusiveUpperLimits) {
  Histogram h({10, 100});
  h.record(5);    // <= 10
  h.record(10);   // <= 10 (inclusive)
  h.record(11);   // <= 100
  h.record(100);  // <= 100
  h.record(101);  // +Inf bucket
  EXPECT_EQ(h.bucketCount(0), 2u);
  EXPECT_EQ(h.bucketCount(1), 2u);
  EXPECT_EQ(h.bucketCount(2), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 5u + 10 + 11 + 100 + 101);
}

TEST(Histogram, DefaultBucketFamiliesAreSortedAndNonEmpty) {
  for (const auto& bounds : {latencyBucketsNs(), sizeBuckets()}) {
    ASSERT_FALSE(bounds.empty());
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
}

TEST(MetricsRegistry, SameNameReturnsSameInstrument) {
  MetricsRegistry& reg = registry();
  Counter& a = reg.counter("test_registry_same_name");
  Counter& b = reg.counter("test_registry_same_name");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(MetricsRegistry, SnapshotCarriesNamesHelpAndValues) {
  MetricsRegistry& reg = registry();
  reg.counter("test_snap_counter", "counter help").add(7);
  reg.gauge("test_snap_gauge", "gauge help").set(-4);
  reg.histogram("test_snap_hist", "hist help", {1, 2}).record(2);

  const MetricsSnapshot snap = reg.snapshot();
  bool sawCounter = false, sawGauge = false, sawHist = false;
  for (const auto& c : snap.counters) {
    if (c.name != "test_snap_counter") continue;
    sawCounter = true;
    EXPECT_EQ(c.help, "counter help");
    EXPECT_EQ(c.value, 7u);
  }
  for (const auto& g : snap.gauges) {
    if (g.name != "test_snap_gauge") continue;
    sawGauge = true;
    EXPECT_EQ(g.value, -4);
  }
  for (const auto& h : snap.histograms) {
    if (h.name != "test_snap_hist") continue;
    sawHist = true;
    ASSERT_EQ(h.bounds.size(), 2u);
    ASSERT_EQ(h.counts.size(), 3u);
    EXPECT_EQ(h.counts[1], 1u);
    EXPECT_EQ(h.count, 1u);
    EXPECT_EQ(h.sum, 2u);
  }
  EXPECT_TRUE(sawCounter);
  EXPECT_TRUE(sawGauge);
  EXPECT_TRUE(sawHist);
}

TEST(MetricsRegistry, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry& reg = registry();
  Counter& c = reg.counter("test_reset_counter");
  c.add(9);
  const std::size_t before = reg.snapshot().size();
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(reg.snapshot().size(), before);
}

TEST(MetricsRegistry, SnapshotSectionsAreNameSorted) {
  // Registration order is thread-interleaving-dependent (unordered_map
  // internally); the snapshot contract is what keeps --stats and report
  // JSON byte-stable across runs.
  MetricsRegistry& reg = registry();
  reg.counter("test_sort_zz");
  reg.counter("test_sort_aa");
  reg.counter("test_sort_mm");
  reg.gauge("test_sort_g2");
  reg.gauge("test_sort_g1");
  reg.histogram("test_sort_h2", "", {1});
  reg.histogram("test_sort_h1", "", {1});

  const MetricsSnapshot snap = reg.snapshot();
  const auto sorted = [](const auto& section) {
    for (std::size_t i = 1; i < section.size(); ++i) {
      if (!(section[i - 1].name < section[i].name)) return false;
    }
    return true;
  };
  EXPECT_TRUE(sorted(snap.counters));
  EXPECT_TRUE(sorted(snap.gauges));
  EXPECT_TRUE(sorted(snap.histograms));
}

TEST(LatencySampling, PeriodRoundsUpToAPowerOfTwo) {
  setLatencySampleEvery(5);
  EXPECT_EQ(latencySampleEvery(), 8u);
  EXPECT_TRUE(shouldSampleLatency(0));
  EXPECT_FALSE(shouldSampleLatency(1));
  EXPECT_FALSE(shouldSampleLatency(7));
  EXPECT_TRUE(shouldSampleLatency(8));
  EXPECT_TRUE(shouldSampleLatency(16));
  setLatencySampleEvery(64);  // restore the default
}

TEST(LatencySampling, OneMeansEveryEventZeroMeansOff) {
  setLatencySampleEvery(1);
  EXPECT_EQ(latencySampleEvery(), 1u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(shouldSampleLatency(i)) << i;
  }
  setLatencySampleEvery(0);
  EXPECT_EQ(latencySampleEvery(), 0u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_FALSE(shouldSampleLatency(i)) << i;
  }
  setLatencySampleEvery(64);  // restore the default
}

TEST(LatencySampling, ExactPowersAreKept) {
  setLatencySampleEvery(256);
  EXPECT_EQ(latencySampleEvery(), 256u);
  EXPECT_TRUE(shouldSampleLatency(512));
  EXPECT_FALSE(shouldSampleLatency(511));
  setLatencySampleEvery(64);  // restore the default
}

TEST(MetricsRegistry, ConcurrentWritersLoseNothing) {
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;
  MetricsRegistry& reg = registry();
  Counter& c = reg.counter("test_mt_counter");
  Gauge& g = reg.gauge("test_mt_gauge");
  Histogram& h = reg.histogram("test_mt_hist", "", {8, 64, 512});
  c.reset();
  g.reset();
  h.reset();

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add(1);
        g.recordMax(static_cast<std::int64_t>(t * kPerThread + i));
        h.record(i % 1000);
        if (i % 4096 == 0) {
          // Snapshots interleaved with writes must stay internally sane.
          const MetricsSnapshot snap = reg.snapshot();
          for (const auto& hs : snap.histograms) {
            if (hs.name != "test_mt_hist") continue;
            std::uint64_t bucketTotal = 0;
            for (const auto n : hs.counts) bucketTotal += n;
            EXPECT_LE(hs.count, kThreads * kPerThread);
            EXPECT_LE(bucketTotal, kThreads * kPerThread);
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(c.value(), kThreads * kPerThread);
  EXPECT_EQ(g.value(),
            static_cast<std::int64_t>(kThreads * kPerThread) - 1);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  std::uint64_t bucketTotal = 0;
  for (std::size_t i = 0; i <= 3; ++i) bucketTotal += h.bucketCount(i);
  EXPECT_EQ(bucketTotal, kThreads * kPerThread);
}

}  // namespace
}  // namespace mpx::telemetry
