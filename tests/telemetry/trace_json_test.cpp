// Chrome trace-event output: well-formed JSON, correct phases, and the
// RAII span life cycle (including the disabled fast path).
#include "telemetry/trace_span.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"

namespace mpx::telemetry {
namespace {

/// Structural JSON check: balanced braces/brackets outside strings, and a
/// non-empty document.  A full parser would be overkill; Perfetto's loader
/// is exercised manually (docs/OBSERVABILITY.md).
void expectBalancedJson(const std::string& s) {
  int depth = 0;
  bool inString = false;
  bool escaped = false;
  for (const char c : s) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
      continue;
    }
    if (c == '"') {
      inString = !inString;
      continue;
    }
    if (inString) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      --depth;
      ASSERT_GE(depth, 0) << "unbalanced close in:\n" << s;
    }
  }
  EXPECT_FALSE(inString) << "unterminated string in:\n" << s;
  EXPECT_EQ(depth, 0) << "unbalanced JSON:\n" << s;
}

std::size_t countOccurrences(const std::string& s, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = s.find(needle); pos != std::string::npos;
       pos = s.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

class TraceRecorderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::global().clear();
    TraceRecorder::global().setEnabled(true);
  }
  void TearDown() override {
    TraceRecorder::global().setEnabled(false);
    TraceRecorder::global().clear();
  }
};

TEST_F(TraceRecorderTest, SpansRecordWhenEnabled) {
  {
    TraceSpan span("unit.work", "test");
    span.arg("items", 3);
  }
  EXPECT_EQ(TraceRecorder::global().spanCount(), 1u);
}

TEST_F(TraceRecorderTest, DisabledRecorderDropsSpans) {
  TraceRecorder::global().setEnabled(false);
  { TraceSpan span("unit.skipped", "test"); }
  EXPECT_EQ(TraceRecorder::global().spanCount(), 0u);
}

TEST_F(TraceRecorderTest, JsonIsWellFormedAndCarriesEvents) {
  {
    TraceSpan span("unit.alpha", "test");
    span.arg("level", 2);
  }
  { TraceSpan span("unit.beta", "test"); }
  TraceRecorder::global().recordInstant("unit.mark", "test");

  const std::string json = TraceRecorder::global().toChromeTraceJson();
  expectBalancedJson(json);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"unit.alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"unit.beta\""), std::string::npos);
  EXPECT_NE(json.find("\"unit.mark\""), std::string::npos);
  EXPECT_NE(json.find("\"level\""), std::string::npos);
  EXPECT_EQ(countOccurrences(json, "\"ph\": \"X\""), 2u);
  EXPECT_EQ(countOccurrences(json, "\"ph\": \"i\""), 1u);
}

TEST_F(TraceRecorderTest, NamesAreEscaped) {
  TraceRecorder::global().recordComplete("quote\"back\\slash", "test", 0, 1);
  const std::string json = TraceRecorder::global().toChromeTraceJson();
  expectBalancedJson(json);
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
}

TEST_F(TraceRecorderTest, ThreadsGetDistinctTrackIds) {
  { TraceSpan span("unit.main", "test"); }
  std::thread other([] { TraceSpan span("unit.other", "test"); });
  other.join();
  const std::string json = TraceRecorder::global().toChromeTraceJson();
  expectBalancedJson(json);
  EXPECT_EQ(TraceRecorder::global().spanCount(), 2u);

  // Collect the tid of each event; the two threads must differ.
  std::vector<std::string> tids;
  const std::string key = "\"tid\": ";
  for (std::size_t pos = json.find(key); pos != std::string::npos;
       pos = json.find(key, pos + key.size())) {
    const std::size_t start = pos + key.size();
    std::size_t end = start;
    while (end < json.size() && std::isdigit(json[end]) != 0) ++end;
    tids.push_back(json.substr(start, end - start));
  }
  ASSERT_EQ(tids.size(), 2u);
  EXPECT_NE(tids[0], tids[1]);
}

TEST_F(TraceRecorderTest, DefaultPidIsOneAndNoProcessMetadata) {
  { TraceSpan span("unit.pid", "test"); }
  const std::string json = TraceRecorder::global().toChromeTraceJson();
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  EXPECT_EQ(json.find("process_name"), std::string::npos);
}

TEST_F(TraceRecorderTest, PidAndProcessNameJoinCrossProcessTraces) {
  // Cross-process correlation: each process stamps its own pid and a
  // process_name metadata event, so a merged client+daemon trace shows
  // two named tracks whose spans share the stream_id arg.
  TraceRecorder::global().setPid(4242);
  TraceRecorder::global().setProcessName("mpx_observerd");
  {
    TraceSpan span("daemon.frame", "net");
    span.arg("stream_id", 77);
  }
  const std::string json = TraceRecorder::global().toChromeTraceJson();
  expectBalancedJson(json);
  EXPECT_NE(json.find("\"name\": \"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos);
  EXPECT_NE(json.find("\"mpx_observerd\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 4242"), std::string::npos);
  EXPECT_EQ(json.find("\"pid\": 1,"), std::string::npos)
      << "all events must carry the configured pid";
  EXPECT_NE(json.find("\"stream_id\""), std::string::npos);

  TraceRecorder::global().setPid(1);
  TraceRecorder::global().setProcessName("");
}

TEST(Exporters, PrometheusTextAndJsonAreConsistent) {
  MetricsRegistry& reg = registry();
  reg.counter("test_export_counter", "an exported counter").add(5);
  reg.histogram("test_export_hist", "an exported histogram", {4, 16})
      .record(9);
  const MetricsSnapshot snap = reg.snapshot();

  const std::string prom = toPrometheusText(snap);
  EXPECT_NE(prom.find("# HELP test_export_counter an exported counter"),
            std::string::npos);
  EXPECT_NE(prom.find("test_export_counter 5"), std::string::npos);
  EXPECT_NE(prom.find("test_export_hist_bucket{le=\"16\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("test_export_hist_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("test_export_hist_count 1"), std::string::npos);

  const std::string json = toJson(snap);
  expectBalancedJson(json);
  EXPECT_NE(json.find("\"test_export_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"test_export_hist\""), std::string::npos);
}

}  // namespace
}  // namespace mpx::telemetry
