// Flight recorder: ring semantics (wrap, seq order, torn-slot skip is
// covered by hammering), JSON shape, and the async-signal-safe dump path
// exercised through a real file descriptor.
#include "telemetry/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

namespace mpx::telemetry {
namespace {

TEST(FlightRecorder, RecordsInSequenceWithPayload) {
  FlightRecorder& fr = FlightRecorder::global();
  fr.reset();
  fr.record(FlightEvent::kConnAccepted, 1);
  fr.record(FlightEvent::kHandshake, 0xabcd, 3, 4);
  fr.record(FlightEvent::kLevel, 7, 42);

  const auto events = fr.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, FlightEvent::kConnAccepted);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[1].type, FlightEvent::kHandshake);
  EXPECT_EQ(events[1].a, 0xabcdu);
  EXPECT_EQ(events[1].b, 3u);
  EXPECT_EQ(events[1].c, 4u);
  EXPECT_EQ(events[2].type, FlightEvent::kLevel);
  EXPECT_EQ(events[2].a, 7u);
  EXPECT_EQ(events[2].b, 42u);
  EXPECT_LE(events[0].tsNs, events[2].tsNs);
  EXPECT_EQ(fr.recorded(), 3u);
}

TEST(FlightRecorder, RingWrapKeepsOnlyTheMostRecent) {
  FlightRecorder& fr = FlightRecorder::global();
  fr.reset();
  const std::uint64_t total = FlightRecorder::kCapacity + 50;
  for (std::uint64_t i = 0; i < total; ++i) {
    fr.record(FlightEvent::kFrame, /*a=*/i);
  }
  EXPECT_EQ(fr.recorded(), total);
  const auto events = fr.snapshot();
  ASSERT_EQ(events.size(), FlightRecorder::kCapacity);
  // Oldest surviving record is exactly total - capacity; order is seq.
  EXPECT_EQ(events.front().seq, total - FlightRecorder::kCapacity);
  EXPECT_EQ(events.back().seq, total - 1);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
  }
  EXPECT_EQ(events.back().a, total - 1);
}

TEST(FlightRecorder, EventNamesAreStable) {
  EXPECT_STREQ(flightEventName(FlightEvent::kConnAccepted), "conn_accepted");
  EXPECT_STREQ(flightEventName(FlightEvent::kHandshake), "handshake");
  EXPECT_STREQ(flightEventName(FlightEvent::kViolation), "violation");
  EXPECT_STREQ(flightEventName(FlightEvent::kDump), "dump");
}

TEST(FlightRecorder, JsonCarriesNamesAndPayload) {
  FlightRecorder& fr = FlightRecorder::global();
  fr.reset();
  fr.record(FlightEvent::kViolation, 9);
  fr.record(FlightEvent::kDump, 3);
  const std::string json = fr.toJson();
  EXPECT_NE(json.find("\"recorded\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"type\": \"violation\", \"a\": 9"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"type\": \"dump\", \"a\": 3"), std::string::npos);
}

TEST(FlightRecorder, DumpToFileMatchesToJson) {
  FlightRecorder& fr = FlightRecorder::global();
  fr.reset();
  fr.record(FlightEvent::kConnAccepted, 1);
  fr.record(FlightEvent::kStreamEnd, 0x55);

  const std::string path = "flight_recorder_test_dump.json";
  ASSERT_TRUE(fr.dumpToFile(path.c_str()));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  // The signal-safe writer and the string renderer must produce the same
  // document — one code path cannot silently drift from the other.
  EXPECT_EQ(buf.str(), fr.toJson());
  std::remove(path.c_str());
}

TEST(FlightRecorder, DumpToBadPathFailsWithoutSideEffects) {
  FlightRecorder& fr = FlightRecorder::global();
  EXPECT_FALSE(fr.dumpToFile("/nonexistent-dir/nope/flight.json"));
  EXPECT_FALSE(fr.dumpToFile(""));
  EXPECT_FALSE(fr.dumpToFile(nullptr));
}

TEST(FlightRecorder, ConcurrentWritersNeverProduceTornSnapshots) {
  FlightRecorder& fr = FlightRecorder::global();
  fr.reset();
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&fr, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        // Payload encodes (writer, i) twice; a torn read would decouple
        // the halves.
        const std::uint64_t tag =
            (static_cast<std::uint64_t>(t) << 32) | i;
        fr.record(FlightEvent::kFrame, tag, tag, tag);
      }
    });
  }
  std::uint64_t snapshots = 0;
  while (snapshots < 50) {
    for (const FlightRecord& r : fr.snapshot()) {
      EXPECT_EQ(r.a, r.b);
      EXPECT_EQ(r.b, r.c);
    }
    ++snapshots;
  }
  for (auto& w : writers) w.join();
  EXPECT_EQ(fr.recorded(), kThreads * kPerThread);
  fr.reset();
  EXPECT_EQ(fr.recorded(), 0u);
  EXPECT_TRUE(fr.snapshot().empty());
}

}  // namespace
}  // namespace mpx::telemetry
