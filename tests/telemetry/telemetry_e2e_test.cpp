// End-to-end: the observer-layer metrics emitted while an analyzer runs
// must agree with the analyzer's own LatticeStats on the same trace — the
// telemetry is a live view of the exact quantities the stats accumulate.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "../support/fixtures.hpp"
#include "logic/monitor.hpp"
#include "logic/parser.hpp"
#include "observer/lattice.hpp"
#include "observer/online.hpp"
#include "program/corpus.hpp"
#include "telemetry/metrics.hpp"

namespace mpx::observer {
namespace {

using mpx::testing::landingComputation;
using mpx::testing::xyzComputation;

std::uint64_t counterValue(const telemetry::MetricsSnapshot& snap,
                           const std::string& name) {
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  ADD_FAILURE() << "counter not found: " << name;
  return 0;
}

/// Asserts the per-run metric deltas (the registry was reset before the
/// run) match the lattice's own bookkeeping.
void expectMetricsMatchStats(const LatticeStats& stats) {
  const telemetry::MetricsSnapshot snap = telemetry::registry().snapshot();
  // stats.levels counts level 0; the counter ticks once per advance.
  EXPECT_EQ(counterValue(snap, "mpx_observer_levels_advanced_total"),
            stats.levels - 1);
  // stats.totalNodes counts the initial node; created = expanded ones.
  EXPECT_EQ(counterValue(snap, "mpx_observer_nodes_created_total"),
            stats.totalNodes - 1);
  EXPECT_EQ(counterValue(snap, "mpx_observer_nodes_gc_total"),
            stats.gcNodes);
}

TEST(TelemetryE2E, OnlineAnalyzerMetricsMatchItsStats) {
  const auto c = xyzComputation();
  logic::SynthesizedMonitor mon(
      logic::SpecParser(c.space).parse(program::corpus::xyzProperty()));

  telemetry::registry().reset();
  OnlineAnalyzer online(c.space, c.prog.threadCount(), &mon);
  for (const auto& ref : c.graph.observedOrder()) {
    online.onMessage(c.graph.message(ref));
  }
  online.endOfTrace();
  ASSERT_TRUE(online.finished());

  expectMetricsMatchStats(online.stats());
  const telemetry::MetricsSnapshot snap = telemetry::registry().snapshot();
  EXPECT_EQ(counterValue(snap, "mpx_observer_violations_total"),
            online.violations().size());
}

TEST(TelemetryE2E, BatchLatticeMetricsMatchItsStats) {
  const auto c = landingComputation();
  logic::SynthesizedMonitor mon(
      logic::SpecParser(c.space).parse(program::corpus::landingProperty()));

  telemetry::registry().reset();
  ComputationLattice lattice(c.graph, c.space);
  std::vector<Violation> violations;
  lattice.check(mon, violations);

  expectMetricsMatchStats(lattice.stats());
  const telemetry::MetricsSnapshot snap = telemetry::registry().snapshot();
  EXPECT_EQ(counterValue(snap, "mpx_observer_violations_total"),
            violations.size());
}

TEST(TelemetryE2E, OnlineAndBatchAgreeOnGcWork) {
  const auto c = xyzComputation();

  telemetry::registry().reset();
  ComputationLattice batch(c.graph, c.space);
  batch.build();

  OnlineAnalyzer online(c.space, c.prog.threadCount(), nullptr);
  for (const auto& ref : c.graph.observedOrder()) {
    online.onMessage(c.graph.message(ref));
  }
  online.endOfTrace();
  ASSERT_TRUE(online.finished());

  // Same lattice, same sliding window: identical node and GC accounting.
  EXPECT_EQ(online.stats().totalNodes, batch.stats().totalNodes);
  EXPECT_EQ(online.stats().gcNodes, batch.stats().gcNodes);
  EXPECT_EQ(online.stats().levels, batch.stats().levels);
}

TEST(TelemetryE2E, FrontierWidthObservationsCoverEveryLevel) {
  const auto c = xyzComputation();

  telemetry::registry().reset();
  ComputationLattice lattice(c.graph, c.space);
  lattice.build();

  const telemetry::MetricsSnapshot snap = telemetry::registry().snapshot();
  bool found = false;
  for (const auto& h : snap.histograms) {
    if (h.name != "mpx_observer_frontier_width") continue;
    found = true;
    EXPECT_EQ(h.count, lattice.stats().levels - 1);
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace mpx::observer
