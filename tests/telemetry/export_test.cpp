// Prometheus exposition renderer: HELP escaping, bucket cumulativity,
// _count/_sum lines, and a golden full-exposition check over a hand-built
// snapshot (so the format is pinned independently of the live registry).
#include "telemetry/export.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "telemetry/metrics.hpp"

namespace mpx::telemetry {
namespace {

MetricsSnapshot demoSnapshot() {
  MetricsSnapshot snap;
  snap.counters.push_back(
      CounterSample{"mpx_demo_total", "Counts demo events", 3});
  snap.gauges.push_back(
      GaugeSample{"mpx_demo_gauge", "line1\nline2 \\ tail", -4});
  HistogramSample h;
  h.name = "mpx_demo_ns";
  h.help = "Latency";
  h.bounds = {10, 100};
  h.counts = {2, 3, 1};  // per-bucket (non-cumulative), +Inf last
  h.count = 6;
  h.sum = 123;
  snap.histograms.push_back(h);
  return snap;
}

TEST(PrometheusText, GoldenExposition) {
  const char* expected =
      "# HELP mpx_demo_total Counts demo events\n"
      "# TYPE mpx_demo_total counter\n"
      "mpx_demo_total 3\n"
      "# HELP mpx_demo_gauge line1\\nline2 \\\\ tail\n"
      "# TYPE mpx_demo_gauge gauge\n"
      "mpx_demo_gauge -4\n"
      "# HELP mpx_demo_ns Latency\n"
      "# TYPE mpx_demo_ns histogram\n"
      "mpx_demo_ns_bucket{le=\"10\"} 2\n"
      "mpx_demo_ns_bucket{le=\"100\"} 5\n"
      "mpx_demo_ns_bucket{le=\"+Inf\"} 6\n"
      "mpx_demo_ns_sum 123\n"
      "mpx_demo_ns_count 6\n";
  EXPECT_EQ(toPrometheusText(demoSnapshot()), expected);
}

TEST(PrometheusText, HelpEscapesBackslashAndNewline) {
  // A raw newline in HELP would terminate the comment mid-string and make
  // the next fragment parse as a sample line — the whole scrape 400s.
  const std::string text = toPrometheusText(demoSnapshot());
  EXPECT_EQ(text.find("line1\nline2"), std::string::npos)
      << "raw newline leaked into HELP";
  EXPECT_NE(text.find("line1\\nline2 \\\\ tail"), std::string::npos);
}

TEST(PrometheusText, BucketsAreCumulativeAndCappedByInf) {
  const std::string text = toPrometheusText(demoSnapshot());
  // Stored counts are per-bucket {2, 3, 1}; exposition must cumulate.
  EXPECT_NE(text.find("mpx_demo_ns_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("mpx_demo_ns_bucket{le=\"100\"} 5"), std::string::npos);
  EXPECT_NE(text.find("mpx_demo_ns_bucket{le=\"+Inf\"} 6"),
            std::string::npos);
  // _count equals the +Inf bucket, _sum is the raw total.
  EXPECT_NE(text.find("mpx_demo_ns_count 6"), std::string::npos);
  EXPECT_NE(text.find("mpx_demo_ns_sum 123"), std::string::npos);
}

TEST(PrometheusText, ExoticMetricNamesAreSanitized) {
  MetricsSnapshot snap;
  snap.counters.push_back(CounterSample{"bad name-with.dots", "", 1});
  const std::string text = toPrometheusText(snap);
  EXPECT_NE(text.find("bad_name_with_dots 1"), std::string::npos);
}

TEST(PrometheusText, LiveRegistrySnapshotRendersSorted) {
  // The registry snapshot contract (name-sorted sections) is what makes
  // two --stats dumps of the same workload diff cleanly; the renderer
  // must preserve that order.
  registry().counter("test_export_zz_total", "later").add(1);
  registry().counter("test_export_aa_total", "earlier").add(1);
  const MetricsSnapshot snap = registry().snapshot();
  EXPECT_TRUE(std::is_sorted(
      snap.counters.begin(), snap.counters.end(),
      [](const CounterSample& a, const CounterSample& b) {
        return a.name < b.name;
      }));
  const std::string text = toPrometheusText(snap);
  const std::size_t aa = text.find("test_export_aa_total");
  const std::size_t zz = text.find("test_export_zz_total");
  ASSERT_NE(aa, std::string::npos);
  ASSERT_NE(zz, std::string::npos);
  EXPECT_LT(aa, zz);
}

}  // namespace
}  // namespace mpx::telemetry
