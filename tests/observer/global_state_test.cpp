#include "observer/global_state.hpp"

#include <gtest/gtest.h>

namespace mpx::observer {
namespace {

trace::VarTable table() {
  trace::VarTable t;
  t.intern("x", -1);
  t.intern("y", 0);
  t.intern("__lock_m", 0, trace::VarRole::kLock);
  t.intern("z", 7);
  return t;
}

TEST(StateSpace, ByNamesTracksInOrder) {
  const trace::VarTable t = table();
  const StateSpace s = StateSpace::byNames(t, {"z", "x"});
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.name(0), "z");
  EXPECT_EQ(s.name(1), "x");
  EXPECT_EQ(s.initialValues(), (std::vector<Value>{7, -1}));
}

TEST(StateSpace, SlotLookups) {
  const trace::VarTable t = table();
  const StateSpace s = StateSpace::byNames(t, {"x", "y"});
  EXPECT_EQ(s.slotOf(t.id("x")), 0u);
  EXPECT_EQ(s.slotOf(t.id("y")), 1u);
  EXPECT_FALSE(s.slotOf(t.id("z")).has_value());
  EXPECT_EQ(s.slotOfName("y"), 1u);
  EXPECT_THROW((void)s.slotOfName("z"), std::out_of_range);
}

TEST(StateSpace, UnknownNameThrows) {
  const trace::VarTable t = table();
  EXPECT_THROW(StateSpace::byNames(t, {"nope"}), std::out_of_range);
}

TEST(StateSpace, DuplicateTrackedVariableThrows) {
  const trace::VarTable t = table();
  EXPECT_THROW(StateSpace::byNames(t, {"x", "x"}), std::invalid_argument);
}

TEST(StateSpace, AllDataSkipsLockVariables) {
  const trace::VarTable t = table();
  const StateSpace s = StateSpace::allData(t);
  EXPECT_EQ(s.size(), 3u);  // x, y, z — not __lock_m
  EXPECT_FALSE(s.slotOf(t.id("__lock_m")).has_value());
}

TEST(GlobalState, WithProducesUpdatedCopy) {
  const GlobalState s({1, 2, 3});
  const GlobalState u = s.with(1, 9);
  EXPECT_EQ(u.values, (std::vector<Value>{1, 9, 3}));
  EXPECT_EQ(s.values, (std::vector<Value>{1, 2, 3}));
}

TEST(GlobalState, EqualityAndHash) {
  const GlobalState a({1, 2});
  const GlobalState b({1, 2});
  const GlobalState c({2, 1});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a, c);
  EXPECT_NE(a.hash(), c.hash());
}

TEST(GlobalState, ToStringForms) {
  const trace::VarTable t = table();
  const StateSpace space = StateSpace::byNames(t, {"x", "y"});
  const GlobalState s({5, -2});
  EXPECT_EQ(s.toString(), "<5,-2>");
  EXPECT_EQ(s.toString(space), "x = 5, y = -2");
}

}  // namespace
}  // namespace mpx::observer
