// Beam-width lattice approximation: graceful degradation when the lattice
// would grow too wide.  Soundness: everything reported is a real violating
// run; completeness is explicitly surrendered (stats.approximated).
#include <gtest/gtest.h>

#include "../support/fixtures.hpp"
#include "observer/lattice.hpp"
#include "observer/run_enumerator.hpp"

namespace mpx::observer {
namespace {

using mpx::testing::observe;

/// Monitor violating when slot 0 is negative.
class NegativeMonitor final : public LatticeMonitor {
 public:
  MonitorState initial(const GlobalState& s) override {
    return s.values[0] < 0 ? 1 : 0;
  }
  MonitorState advance(MonitorState prev, const GlobalState& s) override {
    return prev == 1 || s.values[0] < 0 ? 1 : 0;
  }
  [[nodiscard]] bool isViolating(MonitorState m) const override {
    return m == 1;
  }
};

mpx::testing::ObservedComputation wideComputation() {
  program::GreedyScheduler sched;
  return observe(program::corpus::independentWriters(4, 3), sched,
                 {"v0", "v1", "v2", "v3"});
}

TEST(Beam, DisabledByDefault) {
  const auto c = wideComputation();
  ComputationLattice lattice(c.graph, c.space);
  const auto& stats = lattice.build();
  EXPECT_FALSE(stats.approximated);
  EXPECT_EQ(stats.beamPrunedNodes, 0u);
  EXPECT_EQ(stats.totalNodes, 256u);  // 4^4
}

TEST(Beam, PrunesWideLevelsAndFlagsApproximation) {
  const auto c = wideComputation();
  LatticeOptions opts;
  opts.beamWidth = 8;
  ComputationLattice lattice(c.graph, c.space, opts);
  const auto& stats = lattice.build();
  EXPECT_TRUE(stats.approximated);
  EXPECT_GT(stats.beamPrunedNodes, 0u);
  EXPECT_LT(stats.totalNodes, 256u);
  EXPECT_LE(stats.peakLevelWidth, 8u);
  EXPECT_FALSE(stats.truncated);  // beam is degradation, not abort
}

TEST(Beam, StillReachesTheFinalCut) {
  const auto c = wideComputation();
  LatticeOptions opts;
  opts.beamWidth = 4;
  ComputationLattice lattice(c.graph, c.space, opts);
  const auto& stats = lattice.build();
  // All levels get built even under heavy pruning.
  EXPECT_EQ(stats.levels, 13u);  // 12 events + level 0
}

TEST(Beam, ReportedViolationsRemainRealRuns) {
  // A violating state exists on every path (x goes negative): even a
  // narrow beam must find it, and the counterexample must be a real run.
  program::ProgramBuilder b;
  const VarId x = b.var("x", 0);
  const VarId y = b.var("y", 0);
  const VarId z = b.var("z", 0);
  auto t1 = b.thread();
  t1.write(x, program::lit(-1));
  auto t2 = b.thread();
  t2.write(y, program::lit(1)).write(y, program::lit(2));
  auto t3 = b.thread();
  t3.write(z, program::lit(1)).write(z, program::lit(2));
  program::GreedyScheduler sched;
  const auto c = observe(b.build(), sched, {"x", "y", "z"});

  LatticeOptions opts;
  opts.beamWidth = 2;
  ComputationLattice lattice(c.graph, c.space, opts);
  NegativeMonitor mon;
  std::vector<Violation> violations;
  lattice.check(mon, violations);
  ASSERT_FALSE(violations.empty());
  RunEnumerator runs(c.graph, c.space);
  for (const auto& v : violations) {
    EXPECT_TRUE(runs.isConsistentRun(v.path));
  }
}

TEST(Beam, WiderBeamSubsumesNarrower) {
  const auto c = wideComputation();
  std::size_t prevNodes = 0;
  for (const std::size_t width : {2u, 8u, 32u, 1024u}) {
    LatticeOptions opts;
    opts.beamWidth = width;
    ComputationLattice lattice(c.graph, c.space, opts);
    const auto& stats = lattice.build();
    EXPECT_GE(stats.totalNodes, prevNodes);
    prevNodes = stats.totalNodes;
  }
  // The widest beam covers everything.
  EXPECT_EQ(prevNodes, 256u);
}

}  // namespace
}  // namespace mpx::observer
