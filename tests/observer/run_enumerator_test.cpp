// Run enumeration: agrees with the lattice's run counting and the
// exhaustive explorer's relevant-event linearizations.
#include "observer/run_enumerator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "../support/fixtures.hpp"
#include "observer/lattice.hpp"

namespace mpx::observer {
namespace {

using mpx::testing::landingComputation;
using mpx::testing::observe;
using mpx::testing::xyzComputation;

TEST(RunEnumerator, LandingHasExactlyThreeRuns) {
  const auto c = landingComputation();
  RunEnumerator runs(c.graph, c.space);
  const auto all = runs.enumerateAll();
  EXPECT_EQ(all.size(), 3u);
  // Every run has 3 events and 4 states and ends at <1,1,0>.
  for (const auto& r : all) {
    EXPECT_EQ(r.events.size(), 3u);
    ASSERT_EQ(r.states.size(), 4u);
    EXPECT_EQ(r.states.back().values, (std::vector<Value>{1, 1, 0}));
  }
  // Runs are distinct.
  std::set<std::vector<std::pair<ThreadId, LocalSeq>>> distinct;
  for (const auto& r : all) {
    std::vector<std::pair<ThreadId, LocalSeq>> key;
    for (const auto& e : r.events) key.emplace_back(e.thread, e.index);
    distinct.insert(key);
  }
  EXPECT_EQ(distinct.size(), 3u);
}

TEST(RunEnumerator, XyzHasExactlyThreeRuns) {
  const auto c = xyzComputation();
  RunEnumerator runs(c.graph, c.space);
  EXPECT_EQ(runs.enumerateAll().size(), 3u);
}

TEST(RunEnumerator, CountMatchesLatticePathCount) {
  for (std::size_t threads = 2; threads <= 3; ++threads) {
    program::GreedyScheduler sched;
    std::vector<std::string> names;
    for (std::size_t i = 0; i < threads; ++i) {
      names.push_back("v" + std::to_string(i));
    }
    const auto c = observe(
        program::corpus::independentWriters(threads, 2), sched, names);
    RunEnumerator runs(c.graph, c.space);
    std::size_t n = 0;
    runs.forEachRun([&n](const observer::Run&) {
      ++n;
      return true;
    });
    ComputationLattice lattice(c.graph, c.space);
    lattice.build();
    EXPECT_EQ(n, lattice.stats().pathCount) << threads << " threads";
  }
}

TEST(RunEnumerator, MaxRunsStopsEnumeration) {
  program::GreedyScheduler sched;
  const auto c = observe(program::corpus::independentWriters(3, 2), sched,
                         {"v0", "v1", "v2"});
  RunEnumerator runs(c.graph, c.space);
  const std::size_t n = runs.forEachRun([](const observer::Run&) { return true; },
                                        /*maxRuns=*/5);
  EXPECT_EQ(n, 5u);
}

TEST(RunEnumerator, CallbackFalseStopsEarly) {
  const auto c = landingComputation();
  RunEnumerator runs(c.graph, c.space);
  std::size_t n = 0;
  runs.forEachRun([&n](const observer::Run&) {
    ++n;
    return false;
  });
  EXPECT_EQ(n, 1u);
}

TEST(RunEnumerator, IsConsistentRunValidation) {
  const auto c = landingComputation();
  RunEnumerator runs(c.graph, c.space);
  const auto all = runs.enumerateAll();
  for (const auto& r : all) EXPECT_TRUE(runs.isConsistentRun(r.events));

  // Swapping the two thread-0 events violates program order.
  auto bad = all[0].events;
  std::swap(bad[0], bad[1]);
  EXPECT_FALSE(runs.isConsistentRun(bad));

  // Dropping an event leaves a consistent *prefix*, but a truncated index
  // sequence referencing event 2 without event 1 is rejected.
  std::vector<EventRef> gap = {all[0].events[1]};
  if (gap[0].index == 2) {
    EXPECT_FALSE(runs.isConsistentRun(gap));
  }
}

TEST(RunEnumerator, StatesAlongMatchesEnumeratedStates) {
  const auto c = xyzComputation();
  RunEnumerator runs(c.graph, c.space);
  for (const auto& r : runs.enumerateAll()) {
    EXPECT_EQ(runs.statesAlong(r.events), r.states);
  }
}

TEST(RunEnumerator, ObservedOrderIsOneOfTheRuns) {
  const auto c = xyzComputation();
  RunEnumerator runs(c.graph, c.space);
  const auto observed = c.graph.observedOrder();
  EXPECT_TRUE(runs.isConsistentRun(observed));
}

}  // namespace
}  // namespace mpx::observer
