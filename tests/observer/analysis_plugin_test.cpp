// The pluggable analysis interface: node dispatch coverage, fork/merge
// determinism under parallel expansion, violation filtering through the
// owning plugins, and MonitorBus component packing.
#include "observer/analysis.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "../support/fixtures.hpp"
#include "observer/lattice.hpp"

namespace mpx::observer {
namespace {

using mpx::testing::ObservedComputation;
using mpx::testing::observe;
using mpx::testing::xyzComputation;

/// Counts nodes and records their dispatch order.  merge() appends the
/// fork's order — dispatched chunks arrive in chunk-index order, so the
/// merged order must equal the serial order.
class NodeCensus final : public Analysis {
 public:
  [[nodiscard]] std::string name() const override { return "census"; }
  [[nodiscard]] std::string kind() const override { return "census"; }
  [[nodiscard]] bool wantsNodes() const override { return true; }

  void onNode(const NodeView& node) override {
    ++count_;
    order_.push_back(node.cut->toString());
    statePtrs_.insert(node.state);
    msetPtrs_.insert(node.monitorStates);
  }

  [[nodiscard]] std::unique_ptr<Analysis> fork() override {
    return std::make_unique<NodeCensus>();
  }

  void merge(Analysis& fork) override {
    auto& f = static_cast<NodeCensus&>(fork);
    count_ += f.count_;
    order_.insert(order_.end(), f.order_.begin(), f.order_.end());
    statePtrs_.insert(f.statePtrs_.begin(), f.statePtrs_.end());
    msetPtrs_.insert(f.msetPtrs_.begin(), f.msetPtrs_.end());
  }

  [[nodiscard]] AnalysisReport report() const override {
    AnalysisReport r;
    r.name = name();
    r.kind = kind();
    r.text = "nodes: " + std::to_string(count_) + "\n";
    return r;
  }

  std::size_t count_ = 0;
  std::vector<std::string> order_;
  std::set<const GlobalState*> statePtrs_;
  std::set<const std::vector<MonitorState>*> msetPtrs_;
};

/// 1-bit monitor: violating whenever the watched slot equals `bad`.
class SlotMonitor final : public LatticeMonitor {
 public:
  SlotMonitor(std::size_t slot, Value bad) : slot_(slot), bad_(bad) {}
  MonitorState initial(const GlobalState& s) override {
    return s.values[slot_] == bad_ ? 1u : 0u;
  }
  MonitorState advance(MonitorState, const GlobalState& s) override {
    return s.values[slot_] == bad_ ? 1u : 0u;
  }
  [[nodiscard]] bool isViolating(MonitorState m) const override {
    return m == 1u;
  }
  [[nodiscard]] bool canEverViolate(MonitorState) const override {
    return true;
  }
  [[nodiscard]] unsigned stateBits() const override { return 1; }

 private:
  std::size_t slot_;
  Value bad_;
};

/// Rides the monitor word with a SlotMonitor and either accepts or rejects
/// every violating token.
class SlotChecker final : public Analysis {
 public:
  SlotChecker(std::size_t slot, Value bad, bool accept)
      : mon_(slot, bad), accept_(accept) {}

  [[nodiscard]] std::string name() const override { return "slot-checker"; }
  [[nodiscard]] std::string kind() const override { return "slot"; }
  [[nodiscard]] LatticeMonitor* monitor() override { return &mon_; }

  bool onViolation(const Violation& v, MonitorState componentState) override {
    offered_.push_back(componentState);
    cuts_.push_back(v.cut.toString());
    return accept_;
  }

  [[nodiscard]] AnalysisReport report() const override {
    AnalysisReport r;
    r.name = name();
    r.kind = kind();
    r.violationCount = accept_ ? offered_.size() : 0;
    return r;
  }

  SlotMonitor mon_;
  bool accept_;
  std::vector<MonitorState> offered_;
  std::vector<std::string> cuts_;
};

/// Three threads, two writes each to private variables: a 27-cut lattice,
/// wide enough to exercise chunked parallel node dispatch.
ObservedComputation wideComputation() {
  program::ProgramBuilder b;
  const VarId a = b.var("a", 0);
  const VarId c = b.var("c", 0);
  const VarId d = b.var("d", 0);
  for (const VarId v : {a, c, d}) {
    auto t = b.thread();
    t.write(v, program::lit(1)).write(v, program::lit(2));
  }
  program::GreedyScheduler sched;
  return observe(b.build(), sched, {"a", "c", "d"});
}

LatticeOptions withJobs(std::size_t jobs) {
  LatticeOptions opts;
  opts.parallel.jobs = jobs;
  opts.parallel.minFrontier = 1;  // chunk even narrow levels
  return opts;
}

TEST(AnalysisPlugin, NodeDispatchCoversEveryNodeOnce) {
  const auto c = xyzComputation();
  NodeCensus census;
  AnalysisBus bus({&census});
  ComputationLattice lattice(c.graph, c.space, LatticeOptions{});
  std::vector<Violation> violations;
  const LatticeStats stats = lattice.analyze(bus, violations);

  EXPECT_EQ(census.count_, stats.totalNodes);
  // NodeView hands out interned pointers: distinct pointers == distinct
  // states (never more than cuts).
  EXPECT_EQ(census.statePtrs_.size(), stats.internedStates);
  EXPECT_LE(census.statePtrs_.size(), census.count_);
  // No monitor on the bus: every node carries the interned empty set.
  EXPECT_EQ(census.msetPtrs_.size(), 1u);
}

TEST(AnalysisPlugin, ForkMergeOrderMatchesSerialAcrossJobs) {
  const auto c = wideComputation();

  std::vector<std::string> serialOrder;
  {
    NodeCensus census;
    AnalysisBus bus({&census});
    ComputationLattice lattice(c.graph, c.space, withJobs(1));
    std::vector<Violation> violations;
    lattice.analyze(bus, violations);
    serialOrder = census.order_;
    EXPECT_EQ(census.count_, 27u);  // (2+1)^3 cuts
  }
  for (const std::size_t jobs : {2u, 4u}) {
    NodeCensus census;
    AnalysisBus bus({&census});
    ComputationLattice lattice(c.graph, c.space, withJobs(jobs));
    std::vector<Violation> violations;
    lattice.analyze(bus, violations);
    EXPECT_EQ(census.order_, serialOrder) << "jobs=" << jobs;
  }
}

TEST(AnalysisPlugin, RejectedViolationsAreNotRecorded) {
  const auto c = xyzComputation();
  // Slot of "x" in the space; x reaches 1 only at the lattice's end.
  const std::size_t slot = *c.space.slotOf(c.prog.vars.id("x"));

  for (const bool accept : {false, true}) {
    SlotChecker checker(slot, 1, accept);
    AnalysisBus bus({&checker});
    ComputationLattice lattice(c.graph, c.space, LatticeOptions{});
    std::vector<Violation> violations;
    lattice.analyze(bus, violations);

    EXPECT_FALSE(checker.offered_.empty());
    for (const MonitorState m : checker.offered_) EXPECT_EQ(m, 1u);
    if (accept) {
      EXPECT_EQ(violations.size(), checker.offered_.size());
    } else {
      EXPECT_TRUE(violations.empty());
    }
  }
}

TEST(AnalysisPlugin, MonitorBusPacksComponentsSideBySide) {
  const auto c = xyzComputation();
  const std::size_t xSlot = *c.space.slotOf(c.prog.vars.id("x"));
  const std::size_t ySlot = *c.space.slotOf(c.prog.vars.id("y"));

  SlotChecker xChecker(xSlot, 1, true);
  SlotChecker yChecker(ySlot, 1, true);
  AnalysisBus bus({&xChecker, &yChecker});
  ASSERT_EQ(bus.monitorBus().components().size(), 2u);
  EXPECT_EQ(bus.monitorBus().stateBits(), 2u);

  ComputationLattice lattice(c.graph, c.space, LatticeOptions{});
  std::vector<Violation> violations;
  lattice.analyze(bus, violations);

  // Each plugin is offered only ITS component's violating slice.
  EXPECT_FALSE(xChecker.offered_.empty());
  EXPECT_FALSE(yChecker.offered_.empty());
  for (const MonitorState m : xChecker.offered_) EXPECT_EQ(m, 1u);
  for (const MonitorState m : yChecker.offered_) EXPECT_EQ(m, 1u);
  // y reaches 1 earlier than x on this computation, so the y component
  // fires at cuts where the x component does not.
  EXPECT_NE(xChecker.cuts_, yChecker.cuts_);
}

TEST(AnalysisPlugin, ReportsComeBackInPluginOrder) {
  const auto c = xyzComputation();
  NodeCensus census;
  SlotChecker checker(0, 99, true);  // never fires
  AnalysisBus bus({&census, &checker});
  ComputationLattice lattice(c.graph, c.space, LatticeOptions{});
  std::vector<Violation> violations;
  lattice.analyze(bus, violations);
  bus.finish(lattice.stats());

  const auto reports = bus.reports();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].kind, "census");
  EXPECT_EQ(reports[1].kind, "slot");
}

}  // namespace
}  // namespace mpx::observer
