// The observer's causality reconstruction: correct in ANY delivery order.
#include "observer/causality.hpp"

#include <gtest/gtest.h>

#include "core/instrumentor.hpp"
#include "core/reference.hpp"
#include "program/corpus.hpp"
#include "program/scheduler.hpp"
#include "trace/channel.hpp"

namespace mpx::observer {
namespace {

/// Runs a random program, instruments it, and returns the message stream
/// in emission order together with the underlying events.
struct Emitted {
  program::Program prog;
  program::ExecutionRecord rec;
  std::vector<trace::Message> messages;
};

Emitted emit(std::uint64_t seed) {
  Emitted out;
  program::corpus::RandomProgramOptions opts;
  opts.threads = 3;
  opts.vars = 3;
  opts.opsPerThread = 6;
  out.prog = program::corpus::randomProgram(seed, opts);
  out.rec = program::runProgramRandom(out.prog, seed + 99);
  std::unordered_set<VarId> dataVars;
  for (const VarId v : out.prog.vars.idsWithRole(trace::VarRole::kData)) {
    dataVars.insert(v);
  }
  trace::CollectingSink sink;
  core::Instrumentor instr(core::RelevancePolicy::writesOf(dataVars), sink);
  for (const auto& e : out.rec.events) instr.onEvent(e);
  out.messages = sink.take();
  return out;
}

TEST(CausalityGraph, IngestAndFinalizeInFifoOrder) {
  const Emitted e = emit(7);
  CausalityGraph g;
  for (const auto& m : e.messages) g.ingest(m);
  g.finalize();
  EXPECT_TRUE(g.finalized());
  EXPECT_EQ(g.eventCount(), e.messages.size());
}

TEST(CausalityGraph, QueriesBeforeFinalizeNotAllowedAfterIngest) {
  CausalityGraph g;
  g.finalize();
  // Finalize is idempotent; ingest after finalize throws.
  g.finalize();
  trace::Message m;
  m.event.thread = 0;
  m.clock.set(0, 1);
  EXPECT_THROW(g.ingest(m), std::logic_error);
}

TEST(CausalityGraph, DetectsGapsInThreadStream) {
  CausalityGraph g;
  trace::Message m1, m3;
  m1.event.thread = 0;
  m1.clock.set(0, 1);
  m3.event.thread = 0;
  m3.clock.set(0, 3);  // message 2 missing
  g.ingest(m1);
  g.ingest(m3);
  EXPECT_THROW(g.finalize(), std::runtime_error);
}

TEST(CausalityGraph, DetectsDuplicates) {
  CausalityGraph g;
  trace::Message m1;
  m1.event.thread = 0;
  m1.clock.set(0, 1);
  g.ingest(m1);
  g.ingest(m1);
  EXPECT_THROW(g.finalize(), std::runtime_error);
}

TEST(CausalityGraph, MessageLookupByRef) {
  const Emitted e = emit(11);
  CausalityGraph g;
  for (const auto& m : e.messages) g.ingest(m);
  g.finalize();
  for (ThreadId j = 0; j < g.threadCount(); ++j) {
    const auto stream = g.threadStream(j);
    for (LocalSeq k = 1; k <= stream.size(); ++k) {
      EXPECT_EQ(g.message(j, k).clock[j], k);
    }
  }
  EXPECT_THROW((void)g.message(0, 0), std::out_of_range);
  EXPECT_THROW((void)g.message(99, 1), std::out_of_range);
}

TEST(CausalityGraph, ObservedOrderSortsByGlobalSeq) {
  const Emitted e = emit(13);
  CausalityGraph g;
  for (const auto& m : e.messages) g.ingest(m);
  g.finalize();
  const auto order = g.observedOrder();
  ASSERT_EQ(order.size(), e.messages.size());
  GlobalSeq prev = 0;
  for (const auto& ref : order) {
    const GlobalSeq s = g.message(ref).event.globalSeq;
    EXPECT_GT(s, prev);
    prev = s;
  }
}

// ------------------------------------------------------------------
// The centerpiece: reconstruction is invariant under delivery order.
// ------------------------------------------------------------------

class DeliveryInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeliveryInvariance, AllPoliciesYieldTheSameCausality) {
  const Emitted e = emit(GetParam());
  if (e.messages.empty()) GTEST_SKIP() << "no relevant events this seed";

  const auto reconstruct = [&](trace::DeliveryPolicy policy) {
    CausalityGraph g;
    auto ch = trace::makeChannel(policy, g, /*seed=*/GetParam() * 3 + 1,
                                 /*maxDelay=*/4);
    for (const auto& m : e.messages) ch->onMessage(m);
    ch->close();
    g.finalize();
    return g;
  };

  const CausalityGraph fifo = reconstruct(trace::DeliveryPolicy::kFifo);
  for (const auto policy :
       {trace::DeliveryPolicy::kShuffle, trace::DeliveryPolicy::kBoundedDelay,
        trace::DeliveryPolicy::kReverse}) {
    const CausalityGraph other = reconstruct(policy);
    ASSERT_EQ(other.eventCount(), fifo.eventCount());
    ASSERT_EQ(other.threadCount(), fifo.threadCount());
    // Same per-thread streams...
    for (ThreadId j = 0; j < fifo.threadCount(); ++j) {
      ASSERT_EQ(other.eventsOfThread(j), fifo.eventsOfThread(j));
      for (LocalSeq k = 1; k <= fifo.eventsOfThread(j); ++k) {
        EXPECT_EQ(other.message(j, k), fifo.message(j, k));
      }
    }
    // ...and the same precedence relation.
    const auto all = fifo.allEvents();
    for (const auto& a : all) {
      for (const auto& b : all) {
        EXPECT_EQ(other.precedes(a, b), fifo.precedes(a, b));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeliveryInvariance,
                         ::testing::Values(31, 32, 33, 34, 35, 36));

// Precedence via Theorem 3 matches the specification-level causality.
class GraphVsReference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GraphVsReference, PrecedesMatchesSpec) {
  const Emitted e = emit(GetParam());
  CausalityGraph g;
  std::vector<std::size_t> eventIndexOf;  // position in rec.events per msg
  {
    // Recompute emission indices.
    std::unordered_set<VarId> dataVars;
    for (const VarId v : e.prog.vars.idsWithRole(trace::VarRole::kData)) {
      dataVars.insert(v);
    }
    trace::CollectingSink sink;
    core::Instrumentor instr(core::RelevancePolicy::writesOf(dataVars), sink);
    for (std::size_t k = 0; k < e.rec.events.size(); ++k) {
      const auto before = sink.messages().size();
      instr.onEvent(e.rec.events[k]);
      if (sink.messages().size() > before) eventIndexOf.push_back(k);
    }
  }
  for (const auto& m : e.messages) g.ingest(m);
  g.finalize();
  const core::ReferenceCausality ref(e.rec.events);

  // Map graph refs back to message positions via observed order.
  const auto order = g.observedOrder();
  for (std::size_t a = 0; a < order.size(); ++a) {
    for (std::size_t b = 0; b < order.size(); ++b) {
      if (a == b) continue;
      EXPECT_EQ(g.precedes(order[a], order[b]),
                ref.precedes(eventIndexOf[a], eventIndexOf[b]))
          << "pair " << a << "," << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphVsReference,
                         ::testing::Values(41, 42, 43, 44));


TEST(CausalityGraph, RenderDotShowsCoveringRelation) {
  // The xyz computation: e1 -> e2 -> e4 and e1 -> e3, with the e1 -> e4
  // edge absent (covered through e2).
  program::FixedScheduler sched(program::corpus::xyzObservedSchedule());
  const program::Program prog = program::corpus::xyzProgram();
  program::Executor ex(prog, sched);
  const auto rec = ex.run();
  CausalityGraph g;
  std::unordered_set<VarId> vars = {prog.vars.id("x"), prog.vars.id("y"),
                                    prog.vars.id("z")};
  core::Instrumentor instr(core::RelevancePolicy::writesOf(vars), g);
  for (const auto& e : rec.events) instr.onEvent(e);
  g.finalize();

  const std::string dot = g.renderDot(prog.vars);
  EXPECT_NE(dot.find("digraph causality"), std::string::npos);
  EXPECT_NE(dot.find("T1: x=0"), std::string::npos);
  EXPECT_NE(dot.find("T2: x=1"), std::string::npos);
  // Covering edges present:
  EXPECT_NE(dot.find("e0_1 -> e1_1;"), std::string::npos);  // e1 -> e2
  EXPECT_NE(dot.find("e1_1 -> e1_2;"), std::string::npos);  // e2 -> e4
  EXPECT_NE(dot.find("e0_1 -> e0_2;"), std::string::npos);  // e1 -> e3
  // Transitively implied edge reduced away:
  EXPECT_EQ(dot.find("e0_1 -> e1_2;"), std::string::npos);  // e1 -> e4
}

}  // namespace
}  // namespace mpx::observer
