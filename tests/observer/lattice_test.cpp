// The computation lattice: Fig. 5 and Fig. 6 structure, level-by-level
// memory discipline, run counting, monitor piggybacking.
#include "observer/lattice.hpp"

#include <gtest/gtest.h>

#include "../support/fixtures.hpp"
#include "observer/run_enumerator.hpp"

namespace mpx::observer {
namespace {

using mpx::testing::landingComputation;
using mpx::testing::observe;
using mpx::testing::xyzComputation;

LatticeOptions fullRetention() {
  LatticeOptions o;
  o.retention = Retention::kFull;
  return o;
}

TEST(Lattice, Figure5Structure) {
  const auto c = landingComputation();
  ComputationLattice lattice(c.graph, c.space, fullRetention());
  const LatticeStats& stats = lattice.build();

  // Paper: "there are only 6 states to analyze and three corresponding
  // runs".
  EXPECT_EQ(stats.totalNodes, 6u);
  EXPECT_EQ(stats.pathCount, 3u);
  EXPECT_EQ(stats.levels, 4u);  // levels 0..3

  const auto& levels = lattice.levels();
  ASSERT_EQ(levels.size(), 4u);
  // Level 0: <0,0,1>; the paper's Fig. 5 state set.
  EXPECT_EQ(levels[0][0].state.values, (std::vector<Value>{0, 0, 1}));
  ASSERT_EQ(levels[1].size(), 2u);
  EXPECT_EQ(levels[1][0].state.values, (std::vector<Value>{0, 0, 0}));
  EXPECT_EQ(levels[1][1].state.values, (std::vector<Value>{0, 1, 1}));
  ASSERT_EQ(levels[2].size(), 2u);
  EXPECT_EQ(levels[2][0].state.values, (std::vector<Value>{0, 1, 0}));
  EXPECT_EQ(levels[2][1].state.values, (std::vector<Value>{1, 1, 1}));
  ASSERT_EQ(levels[3].size(), 1u);
  EXPECT_EQ(levels[3][0].state.values, (std::vector<Value>{1, 1, 0}));
}

TEST(Lattice, Figure6Structure) {
  const auto c = xyzComputation();
  ComputationLattice lattice(c.graph, c.space, fullRetention());
  const LatticeStats& stats = lattice.build();

  // Fig. 6: 7 states (S00 S10 S11 S20 S21 S12 S22), 3 runs.
  EXPECT_EQ(stats.totalNodes, 7u);
  EXPECT_EQ(stats.pathCount, 3u);
  EXPECT_EQ(stats.levels, 5u);

  const auto& levels = lattice.levels();
  EXPECT_EQ(levels[0][0].state.values, (std::vector<Value>{-1, 0, 0}));
  EXPECT_EQ(levels[1][0].state.values, (std::vector<Value>{0, 0, 0}));
  // Level 2: S11 = (0,0,1) and S20 = (0,1,0).
  ASSERT_EQ(levels[2].size(), 2u);
  // Level 4: S22 = (1,1,1).
  EXPECT_EQ(levels[4][0].state.values, (std::vector<Value>{1, 1, 1}));
}

TEST(Lattice, PathCountsAccumulatePerNode) {
  const auto c = landingComputation();
  ComputationLattice lattice(c.graph, c.space, fullRetention());
  lattice.build();
  // Final node path count == total runs; level sums grow Pascal-style.
  const auto& levels = lattice.levels();
  EXPECT_EQ(levels.back()[0].pathCount, 3u);
}

TEST(Lattice, SlidingWindowKeepsAtMostTwoLevels) {
  // Claim C4 / paper §4.1: "at most two consecutive levels in the
  // computation lattice need to be stored at any moment".
  const auto c = [&] {
    program::GreedyScheduler sched;
    return observe(program::corpus::independentWriters(3, 3), sched,
                   {"v0", "v1", "v2"});
  }();
  ComputationLattice lattice(c.graph, c.space);  // sliding window default
  const LatticeStats& stats = lattice.build();

  // 3 threads x 3 writes: (9)! / (3!)^3 = 1680 runs over 10 levels.
  EXPECT_EQ(stats.pathCount, 1680u);
  EXPECT_EQ(stats.levels, 10u);
  // Peak live nodes is bounded by the two widest adjacent levels, far
  // below the total node count.
  EXPECT_LT(stats.peakLiveNodes, stats.totalNodes);
  std::size_t widest2 = 0;
  // width of level L of the 3x3 multinomial lattice: number of
  // compositions (k0,k1,k2) with ki <= 3 summing to L.
  const auto width = [](std::size_t L) {
    std::size_t w = 0;
    for (std::size_t a = 0; a <= 3; ++a) {
      for (std::size_t b = 0; b <= 3; ++b) {
        for (std::size_t cc = 0; cc <= 3; ++cc) {
          if (a + b + cc == L) ++w;
        }
      }
    }
    return w;
  };
  for (std::size_t L = 0; L + 1 <= 9; ++L) {
    widest2 = std::max(widest2, width(L) + width(L + 1));
  }
  EXPECT_LE(stats.peakLiveNodes, widest2);
}

TEST(Lattice, FullyOrderedEventsGiveAPathLattice) {
  program::GreedyScheduler sched;
  const auto c = observe(program::corpus::serializedWriters(2, 2), sched,
                         {"total"});
  ComputationLattice lattice(c.graph, c.space, fullRetention());
  const LatticeStats& stats = lattice.build();
  EXPECT_EQ(stats.pathCount, 1u);  // lock order serializes everything
  EXPECT_EQ(stats.peakLevelWidth, 1u);
  EXPECT_EQ(stats.totalNodes, stats.levels);
}

TEST(Lattice, UnfinalizedGraphRejected) {
  CausalityGraph g;
  EXPECT_THROW(ComputationLattice(g, StateSpace{}), std::logic_error);
}

TEST(Lattice, LevelsRequireFullRetention) {
  const auto c = landingComputation();
  ComputationLattice lattice(c.graph, c.space);
  lattice.build();
  EXPECT_THROW((void)lattice.levels(), std::logic_error);
}

TEST(Lattice, TruncationOnLevelWidthCap) {
  program::GreedyScheduler sched;
  const auto c = observe(program::corpus::independentWriters(4, 3), sched,
                         {"v0", "v1", "v2", "v3"});
  LatticeOptions opts;
  opts.maxNodesPerLevel = 5;
  ComputationLattice lattice(c.graph, c.space, opts);
  const LatticeStats& stats = lattice.build();
  EXPECT_TRUE(stats.truncated);
}

TEST(Lattice, RenderShowsPaperStyleLabels) {
  const auto c = landingComputation();
  ComputationLattice lattice(c.graph, c.space, fullRetention());
  lattice.build();
  const std::string out = lattice.render();
  EXPECT_NE(out.find("S00<0,0,1>"), std::string::npos);
  EXPECT_NE(out.find("S21<1,1,0>"), std::string::npos);
  const std::string dot = lattice.renderDot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("\"S00\" -> "), std::string::npos);
}

// --- Monitor piggybacking --------------------------------------------

/// Toy monitor: state counts how many distinct states with x != 0 were on
/// some path (capped); violating when the current x value is negative.
class CountingMonitor final : public LatticeMonitor {
 public:
  MonitorState initial(const GlobalState& s) override {
    return s.values[0] < 0 ? kBad : (s.values[0] != 0 ? 1 : 0);
  }
  MonitorState advance(MonitorState prev, const GlobalState& s) override {
    if (prev == kBad || s.values[0] < 0) return kBad;
    return prev + (s.values[0] != 0 ? 1 : 0);
  }
  [[nodiscard]] bool isViolating(MonitorState m) const override {
    return m == kBad;
  }
  static constexpr MonitorState kBad = ~0ull;
};

TEST(Lattice, MonitorStatesMergeAtNodes) {
  // Two threads write x to different values; different paths accumulate
  // different counts, merged as a set at the join node.
  program::ProgramBuilder b;
  const VarId x = b.var("x", 0);
  const VarId y = b.var("y", 0);
  auto t1 = b.thread();
  t1.write(x, program::lit(1));
  auto t2 = b.thread();
  t2.write(y, program::lit(2));
  program::GreedyScheduler sched;
  const auto c = observe(b.build(), sched, {"x", "y"});

  LatticeOptions opts = fullRetention();
  ComputationLattice lattice(c.graph, c.space, opts);
  CountingMonitor mon;
  std::vector<Violation> violations;
  lattice.check(mon, violations);
  EXPECT_TRUE(violations.empty());
  // The final node is reached by 2 paths with different counts -> the
  // monitor-state set has 2 entries.
  const auto& final = lattice.levels().back();
  ASSERT_EQ(final.size(), 1u);
  EXPECT_EQ(final[0].monitorStates.size(), 2u);
  EXPECT_EQ(lattice.stats().monitorStatesPeak, 2u);
}

TEST(Lattice, InitialStateViolationIsReported) {
  program::ProgramBuilder b;
  b.var("x", -5);  // bad from the start
  auto t = b.thread();
  t.internalOp();
  program::GreedyScheduler sched;
  const auto c = observe(b.build(), sched, {"x"});
  ComputationLattice lattice(c.graph, c.space);
  CountingMonitor mon;
  std::vector<Violation> violations;
  lattice.check(mon, violations);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_TRUE(violations[0].path.empty());
  EXPECT_EQ(violations[0].state.values[0], -5);
}

TEST(Lattice, ViolationCapRespected) {
  program::GreedyScheduler sched;
  // x written to -1 by one thread: every path eventually violates.
  program::ProgramBuilder b;
  const VarId x = b.var("x", 0);
  const VarId y = b.var("y", 0);
  auto t1 = b.thread();
  t1.write(x, program::lit(-1));
  auto t2 = b.thread();
  t2.write(y, program::lit(1)).write(y, program::lit(2));
  const auto c = observe(b.build(), sched, {"x", "y"});

  LatticeOptions opts;
  opts.maxViolations = 1;
  ComputationLattice lattice(c.graph, c.space, opts);
  CountingMonitor mon;
  std::vector<Violation> violations;
  lattice.check(mon, violations);
  EXPECT_EQ(violations.size(), 1u);
}

TEST(Lattice, CounterexamplePathsAreConsistentRuns) {
  program::GreedyScheduler sched;
  program::ProgramBuilder b;
  const VarId x = b.var("x", 0);
  const VarId y = b.var("y", 0);
  auto t1 = b.thread();
  t1.write(x, program::lit(-1));
  auto t2 = b.thread();
  t2.write(y, program::lit(1));
  const auto c = observe(b.build(), sched, {"x", "y"});

  ComputationLattice lattice(c.graph, c.space);
  CountingMonitor mon;
  std::vector<Violation> violations;
  lattice.check(mon, violations);
  ASSERT_FALSE(violations.empty());
  RunEnumerator runs(c.graph, c.space);
  for (const auto& v : violations) {
    EXPECT_TRUE(runs.isConsistentRun(v.path));
    // Replaying the path reaches the reported state.
    const auto states = runs.statesAlong(v.path);
    EXPECT_EQ(states.back(), v.state);
  }
}

TEST(Cut, LevelAndAdvance) {
  Cut c(3);
  EXPECT_EQ(c.level(), 0u);
  const Cut d = c.advanced(1);
  EXPECT_EQ(d.level(), 1u);
  EXPECT_EQ(d.k[1], 1u);
  EXPECT_EQ(d.toString(), "S010");
  EXPECT_NE(c.hash(), d.hash());
}

}  // namespace
}  // namespace mpx::observer
