// Hash-consing arenas (intern.hpp) and their integration with the lattice
// engine: pointer equality == value equality, deterministic hit/miss
// counts, and the memory win over per-cut state copies.
#include "observer/intern.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "../support/fixtures.hpp"
#include "observer/lattice.hpp"

namespace mpx::observer {
namespace {

using mpx::testing::landingComputation;
using mpx::testing::xyzComputation;

TEST(StateArena, EqualStatesInternToSamePointer) {
  StateArena arena;
  const GlobalState* a = arena.intern(GlobalState({1, 2, 3}));
  const GlobalState* b = arena.intern(GlobalState({1, 2, 3}));
  EXPECT_EQ(a, b);
  const InternStats s = arena.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.size, 1u);
}

TEST(StateArena, DistinctStatesGetDistinctPointers) {
  StateArena arena;
  const GlobalState* a = arena.intern(GlobalState({0}));
  const GlobalState* b = arena.intern(GlobalState({1}));
  const GlobalState* c = arena.intern(GlobalState({0, 0}));
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
  EXPECT_EQ(arena.stats().misses, 3u);
  EXPECT_EQ(arena.stats().size, 3u);
}

TEST(StateArena, PointersSurviveManyInsertions) {
  // Node-based storage: rehashing must never move interned states.
  StateArena arena;
  const GlobalState* first = arena.intern(GlobalState({42}));
  const GlobalState firstCopy = *first;
  for (Value v = 0; v < 2000; ++v) {
    (void)arena.intern(GlobalState({v, v + 1}));
  }
  EXPECT_EQ(arena.intern(GlobalState({42})), first);
  EXPECT_EQ(first->values, firstCopy.values);
}

TEST(StateArena, NoteReuseCountsAsHit) {
  StateArena arena;
  (void)arena.intern(GlobalState({7}));
  arena.noteReuse();
  arena.noteReuse();
  EXPECT_EQ(arena.stats().hits, 2u);
  EXPECT_EQ(arena.stats().misses, 1u);
}

TEST(StateArena, HitRate) {
  StateArena arena;
  EXPECT_DOUBLE_EQ(arena.stats().hitRate(), 0.0);
  (void)arena.intern(GlobalState({1}));
  (void)arena.intern(GlobalState({1}));
  (void)arena.intern(GlobalState({1}));
  (void)arena.intern(GlobalState({2}));
  EXPECT_DOUBLE_EQ(arena.stats().hitRate(), 0.5);
}

TEST(MonitorSetArena, DedupesEqualSortedSets) {
  MonitorSetArena arena;
  const auto* a = arena.intern({1, 2, 3});
  const auto* b = arena.intern({1, 2, 3});
  const auto* c = arena.intern({1, 2});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  const InternStats s = arena.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.size, 2u);
}

TEST(MonitorSetArena, EmptySetIsACanonicalValueToo) {
  MonitorSetArena arena;
  const auto* a = arena.intern({});
  const auto* b = arena.intern({});
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a->empty());
}

// --- lattice integration ------------------------------------------------

TEST(LatticeIntern, MissesEqualDistinctStates) {
  // internMisses must equal the number of DISTINCT global states the
  // lattice visits — counted here independently from the retained levels.
  const auto c = xyzComputation();
  LatticeOptions opts;
  opts.retention = Retention::kFull;
  ComputationLattice lattice(c.graph, c.space, opts);
  const LatticeStats& stats = lattice.build();

  std::set<std::vector<Value>> distinct;
  for (const auto& level : lattice.levels()) {
    for (const auto& node : level) distinct.insert(node.state.values);
  }
  EXPECT_EQ(stats.internMisses, distinct.size());
  EXPECT_EQ(stats.internedStates, distinct.size());
  EXPECT_GE(stats.internMisses + stats.internHits, stats.totalNodes);
}

TEST(LatticeIntern, EveryCorpusComputationShowsNonzeroHitRate) {
  // The two-consecutive-levels bound only shrinks if interning actually
  // deduplicates: both paper examples revisit states across cuts.
  for (const auto& comp : {landingComputation(), xyzComputation()}) {
    ComputationLattice lattice(comp.graph, comp.space, LatticeOptions{});
    const LatticeStats& stats = lattice.build();
    EXPECT_GT(stats.internHits, 0u);
    EXPECT_GT(stats.internMisses, 0u);
    EXPECT_LE(stats.internedStates, stats.totalNodes);
  }
}

TEST(LatticeIntern, RevisitedStatesShareOneArenaEntry) {
  // Two threads toggling private flags: 9 cuts but only 4 distinct global
  // states ({0,1} x {0,1}) — the arena must hold 4, not 9.
  program::ProgramBuilder b;
  const VarId p = b.var("p", 0);
  const VarId q = b.var("q", 0);
  for (const VarId v : {p, q}) {
    auto t = b.thread();
    t.write(v, program::lit(1)).write(v, program::lit(0));
  }
  program::GreedyScheduler sched;
  const auto c = mpx::testing::observe(b.build(), sched, {"p", "q"});

  ComputationLattice lattice(c.graph, c.space, LatticeOptions{});
  const LatticeStats& stats = lattice.build();
  EXPECT_EQ(stats.totalNodes, 9u);
  EXPECT_EQ(stats.internedStates, 4u);
  EXPECT_EQ(stats.internMisses, 4u);
  EXPECT_LT(stats.internedStates, stats.totalNodes);
}

TEST(LatticeIntern, CountsDeterministicAcrossJobs) {
  // intern() runs from pool workers in parallel expansion, but the totals
  // are a pure function of the lattice — any jobs count agrees.
  const auto c = xyzComputation();
  LatticeStats serial;
  LatticeStats parallel;
  {
    LatticeOptions opts;
    opts.parallel.jobs = 1;
    ComputationLattice lattice(c.graph, c.space, opts);
    serial = lattice.build();
  }
  {
    LatticeOptions opts;
    opts.parallel.jobs = 4;
    opts.parallel.minFrontier = 1;  // force the parallel path
    ComputationLattice lattice(c.graph, c.space, opts);
    parallel = lattice.build();
  }
  EXPECT_EQ(serial.internHits, parallel.internHits);
  EXPECT_EQ(serial.internMisses, parallel.internMisses);
  EXPECT_EQ(serial.internedStates, parallel.internedStates);
  EXPECT_EQ(serial.totalNodes, parallel.totalNodes);
}

}  // namespace
}  // namespace mpx::observer
