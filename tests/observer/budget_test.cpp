// Direct unit tests for the degradation sampler (detail::enforceBudget):
// exact behavior at the budget boundary, the observed-path floor, rung
// stickiness, and determinism against insertion order.  The differential
// suite (tests/analysis) covers the same machinery end to end; these tests
// pin the byte-exact contract the acceptance criteria demand — "under any
// finite budget the engine never exceeds the budget (asserted via
// accounting)" — at the layer where it is provable.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "observer/budget.hpp"
#include "observer/lattice_types.hpp"

namespace mpx::observer {
namespace {

using detail::Frontier;
using detail::FrontierNode;

Cut makeCut(std::initializer_list<std::uint32_t> k) {
  Cut c;
  c.k.assign(k.begin(), k.end());
  return c;
}

/// A frontier node with `mstates` monitor entries (state pointers are not
/// consulted by the byte model).
FrontierNode makeNode(std::size_t mstates) {
  FrontierNode n;
  n.pathCount = 1;
  for (std::size_t i = 0; i < mstates; ++i) {
    n.mstates.emplace(static_cast<MonitorState>(i), nullptr);
  }
  return n;
}

/// Observed key = the cut's first component (deterministic, easy to reason
/// about: the observed path is the one advancing thread 0 first — the cut
/// with the SMALLEST key is kept).
std::uint64_t observedKey(const Cut& c) { return c.k.empty() ? 0 : c.k[0]; }

/// A 3-node, 2-thread frontier at level 2 with one monitor entry per node.
Frontier levelTwoFrontier() {
  Frontier f;
  f.emplace(makeCut({0, 2}), makeNode(1));
  f.emplace(makeCut({1, 1}), makeNode(1));
  f.emplace(makeCut({2, 0}), makeNode(1));
  return f;
}

std::set<std::string> cutsOf(const Frontier& f) {
  std::set<std::string> out;
  for (const auto& [cut, node] : f) out.insert(cut.toString());
  return out;
}

TEST(EnforceBudget, NoLimitsNoDegradation) {
  Frontier f = levelTwoFrontier();
  const std::uint64_t bytes = detail::frontierBytes(f, /*recordPaths=*/true);
  LatticeOptions opts;  // no budget, no cap
  LatticeStats stats;
  detail::enforceBudget(f, opts, stats, 2, /*arenaBytesNow=*/500,
                        /*carryBytes=*/100, observedKey);
  EXPECT_EQ(f.size(), 3u);
  EXPECT_EQ(stats.accountedBytes, 600 + bytes);
  EXPECT_EQ(stats.peakAccountedBytes, stats.accountedBytes);
  EXPECT_EQ(stats.droppedNodes, 0u);
  EXPECT_EQ(stats.degradation, DegradationMode::kFull);
  EXPECT_FALSE(stats.bounded());
}

TEST(EnforceBudget, ExactlyAtBudgetDoesNotDegrade) {
  Frontier f = levelTwoFrontier();
  const std::uint64_t bytes = detail::frontierBytes(f, true);
  LatticeOptions opts;
  opts.memoryBudgetBytes = 600 + bytes;  // fits to the byte
  LatticeStats stats;
  detail::enforceBudget(f, opts, stats, 2, 500, 100, observedKey);
  EXPECT_EQ(f.size(), 3u);
  EXPECT_EQ(stats.accountedBytes, opts.memoryBudgetBytes);
  EXPECT_EQ(stats.droppedNodes, 0u);
  EXPECT_EQ(stats.degradation, DegradationMode::kFull);
  EXPECT_EQ(stats.boundReason, BoundReason::kNone);
  EXPECT_FALSE(stats.bounded());
}

TEST(EnforceBudget, OneByteOverShedsAndStaysUnderBudget) {
  Frontier f = levelTwoFrontier();
  const std::uint64_t bytes = detail::frontierBytes(f, true);
  LatticeOptions opts;
  opts.memoryBudgetBytes = 600 + bytes - 1;  // one byte short
  LatticeStats stats;
  detail::enforceBudget(f, opts, stats, 2, 500, 100, observedKey);
  EXPECT_LT(f.size(), 3u);
  EXPECT_GE(f.size(), 1u);
  EXPECT_LE(stats.accountedBytes, opts.memoryBudgetBytes);
  EXPECT_EQ(stats.droppedNodes, 3u - f.size());
  EXPECT_NE(stats.degradation, DegradationMode::kFull);
  EXPECT_EQ(stats.boundReason, BoundReason::kMemoryBudget);
  EXPECT_EQ(stats.degradedAtLevel, 2u);
  EXPECT_TRUE(stats.bounded());
  // The observed cut (smallest key, i.e. k[0] == 0) always survives.
  EXPECT_EQ(f.count(makeCut({0, 2})), 1u);
}

TEST(EnforceBudget, MaxFrontierExactlyAtWidthDoesNotDegrade) {
  Frontier f = levelTwoFrontier();
  LatticeOptions opts;
  opts.maxFrontier = 3;
  LatticeStats stats;
  detail::enforceBudget(f, opts, stats, 2, 0, 0, observedKey);
  EXPECT_EQ(f.size(), 3u);
  EXPECT_EQ(stats.droppedNodes, 0u);
  EXPECT_FALSE(stats.bounded());
}

TEST(EnforceBudget, MaxFrontierOneUnderWidthShedsOne) {
  Frontier f = levelTwoFrontier();
  LatticeOptions opts;
  opts.maxFrontier = 2;
  LatticeStats stats;
  detail::enforceBudget(f, opts, stats, 2, 0, 0, observedKey);
  EXPECT_EQ(f.size(), 2u);
  EXPECT_EQ(stats.droppedNodes, 1u);
  EXPECT_EQ(stats.degradation, DegradationMode::kSampled);
  EXPECT_EQ(stats.boundReason, BoundReason::kMaxFrontier);
  EXPECT_EQ(f.count(makeCut({0, 2})), 1u);
}

TEST(EnforceBudget, ObservedFloorSurvivesImpossiblyTightBudget) {
  Frontier f = levelTwoFrontier();
  LatticeOptions opts;
  opts.memoryBudgetBytes = 1;  // even the floor cannot fit
  LatticeStats stats;
  detail::enforceBudget(f, opts, stats, 2, 500, 100, observedKey);
  // The observed-execution cut is the floor: never shed, even over budget.
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f.count(makeCut({0, 2})), 1u);
  EXPECT_EQ(stats.degradation, DegradationMode::kObservedOnly);
  EXPECT_EQ(stats.boundReason, BoundReason::kMemoryBudget);
  // Documented floor overshoot: accounted exceeds the budget and the
  // accounting says so instead of lying.
  EXPECT_GT(stats.accountedBytes, opts.memoryBudgetBytes);
}

TEST(EnforceBudget, ObservedOnlyRungIsSticky) {
  LatticeStats stats;
  stats.degradation = DegradationMode::kObservedOnly;
  stats.boundReason = BoundReason::kMemoryBudget;
  Frontier f = levelTwoFrontier();
  LatticeOptions opts;  // no budget pressure at all this level
  detail::enforceBudget(f, opts, stats, 3, 0, 0, observedKey);
  ASSERT_EQ(f.size(), 1u);  // still observed-path-only
  EXPECT_EQ(f.count(makeCut({0, 2})), 1u);
  EXPECT_EQ(stats.degradation, DegradationMode::kObservedOnly);
  EXPECT_EQ(stats.boundReason, BoundReason::kMemoryBudget);
}

TEST(EnforceBudget, SurvivorsIndependentOfInsertionOrder) {
  // Build the same 8-cut frontier in two different insertion orders; the
  // sampler must keep the identical survivor set (rank is a pure function
  // of (seed, level, cut)).
  std::vector<Cut> cuts;
  for (std::uint32_t a = 0; a <= 3; ++a) {
    for (std::uint32_t b = 0; b <= 1; ++b) cuts.push_back(makeCut({a, b}));
  }
  Frontier fwd;
  for (const Cut& c : cuts) fwd.emplace(c, makeNode(1));
  Frontier rev;
  for (auto it = cuts.rbegin(); it != cuts.rend(); ++it) {
    rev.emplace(*it, makeNode(1));
  }
  LatticeOptions opts;
  opts.maxFrontier = 3;
  LatticeStats sa;
  LatticeStats sb;
  detail::enforceBudget(fwd, opts, sa, 5, 0, 0, observedKey);
  detail::enforceBudget(rev, opts, sb, 5, 0, 0, observedKey);
  EXPECT_EQ(cutsOf(fwd), cutsOf(rev));
  EXPECT_EQ(sa.accountedBytes, sb.accountedBytes);
  EXPECT_EQ(sa.droppedNodes, sb.droppedNodes);
}

TEST(EnforceBudget, DifferentSeedsSampleDifferently) {
  // Sanity that the seed actually steers the sampler: across many seeds,
  // at least two different survivor sets must appear (the observed cut is
  // pinned, the other survivors rotate).
  std::set<std::set<std::string>> survivorSets;
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    Frontier f;
    for (std::uint32_t a = 0; a <= 4; ++a) {
      for (std::uint32_t b = 0; b <= 1; ++b) f.emplace(makeCut({a, b}), makeNode(1));
    }
    LatticeOptions opts;
    opts.maxFrontier = 3;
    opts.degradationSeed = seed;
    LatticeStats stats;
    detail::enforceBudget(f, opts, stats, 4, 0, 0, observedKey);
    survivorSets.insert(cutsOf(f));
  }
  EXPECT_GT(survivorSets.size(), 1u);
}

TEST(EnforceBudget, NeverExceedsBudgetRandomizedSweep) {
  // The acceptance-criteria invariant, asserted exhaustively: for random
  // frontiers and random budgets, post-shed accounted bytes never exceed
  // max(budget, fixed + floor bytes) — the only permitted overshoot is the
  // observed-path floor itself.
  std::mt19937_64 rng(0xB1D6E7);
  for (int iter = 0; iter < 2000; ++iter) {
    Frontier f;
    const std::size_t width = 1 + rng() % 12;
    for (std::size_t i = 0; i < width; ++i) {
      Cut c = makeCut({static_cast<std::uint32_t>(rng() % 6),
                       static_cast<std::uint32_t>(rng() % 6),
                       static_cast<std::uint32_t>(rng() % 6)});
      f.emplace(std::move(c), makeNode(rng() % 4));
    }
    const std::uint64_t arena = rng() % 4096;
    const std::uint64_t carry = rng() % 2048;
    LatticeOptions opts;
    opts.recordPaths = (rng() % 2) == 0;
    opts.memoryBudgetBytes = 1 + rng() % 8192;
    if (rng() % 3 == 0) opts.maxFrontier = 1 + rng() % 4;
    LatticeStats stats;
    detail::enforceBudget(f, opts, stats, 1 + iter % 7, arena, carry,
                          observedKey);
    ASSERT_GE(f.size(), 1u);
    // Recompute the floor: the surviving frontier always contains the
    // observed cut; a 1-node frontier IS the floor.
    std::uint64_t floorBytes = 0;
    for (const auto& [cut, node] : f) {
      floorBytes = detail::frontierNodeBytes(cut, node, opts.recordPaths);
      break;
    }
    const std::uint64_t allowed =
        std::max<std::uint64_t>(opts.memoryBudgetBytes,
                                arena + carry + floorBytes);
    ASSERT_LE(stats.accountedBytes, allowed)
        << "iter " << iter << " width " << width;
    if (opts.maxFrontier > 0) {
      ASSERT_LE(f.size(), std::max<std::size_t>(opts.maxFrontier, 1u));
    }
    if (stats.droppedNodes == 0) {
      ASSERT_FALSE(stats.bounded()) << "no shedding must stay SOUND";
    } else {
      ASSERT_TRUE(stats.bounded());
      ASSERT_NE(stats.boundReason, BoundReason::kNone);
    }
  }
}

}  // namespace
}  // namespace mpx::observer
