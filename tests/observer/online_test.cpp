// The online, incremental lattice analyzer: same verdicts as the batch
// lattice, levels advanced as early as the buffered messages allow,
// violations reported before the trace even ends.
#include "observer/online.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "../support/fixtures.hpp"
#include "logic/monitor.hpp"
#include "logic/parser.hpp"
#include "program/corpus.hpp"

namespace mpx::observer {
namespace {

using mpx::testing::landingComputation;
using mpx::testing::observe;
using mpx::testing::xyzComputation;

/// All messages of a finalized graph in emission (globalSeq) order.
std::vector<trace::Message> messagesInOrder(const CausalityGraph& g) {
  std::vector<trace::Message> out;
  for (const auto& ref : g.observedOrder()) out.push_back(g.message(ref));
  return out;
}

TEST(OnlineAnalyzer, MatchesBatchLatticeOnLanding) {
  const auto c = landingComputation();
  logic::SynthesizedMonitor batchMon(logic::SpecParser(c.space).parse(
      program::corpus::landingProperty()));
  ComputationLattice batch(c.graph, c.space);
  std::vector<Violation> batchViolations;
  batch.check(batchMon, batchViolations);

  logic::SynthesizedMonitor onlineMon(logic::SpecParser(c.space).parse(
      program::corpus::landingProperty()));
  OnlineAnalyzer online(c.space, c.prog.threadCount(), &onlineMon);
  for (const auto& m : messagesInOrder(c.graph)) online.onMessage(m);
  online.endOfTrace();

  EXPECT_TRUE(online.finished());
  EXPECT_EQ(online.stats().totalNodes, batch.stats().totalNodes);
  EXPECT_EQ(online.stats().pathCount, batch.stats().pathCount);
  EXPECT_EQ(online.stats().levels, batch.stats().levels);
  EXPECT_EQ(online.violations().size(), batchViolations.size());
}

TEST(OnlineAnalyzer, AnyArrivalOrderSameResult) {
  const auto c = xyzComputation();
  auto msgs = messagesInOrder(c.graph);
  std::mt19937_64 rng(7);

  std::optional<std::size_t> nodes;
  std::optional<std::size_t> nViolations;
  for (int round = 0; round < 20; ++round) {
    std::shuffle(msgs.begin(), msgs.end(), rng);
    logic::SynthesizedMonitor mon(
        logic::SpecParser(c.space).parse(program::corpus::xyzProperty()));
    OnlineAnalyzer online(c.space, c.prog.threadCount(), &mon);
    for (const auto& m : msgs) online.onMessage(m);
    online.endOfTrace();
    ASSERT_TRUE(online.finished());
    if (!nodes) {
      nodes = online.stats().totalNodes;
      nViolations = online.violations().size();
    }
    EXPECT_EQ(online.stats().totalNodes, *nodes) << "round " << round;
    EXPECT_EQ(online.violations().size(), *nViolations) << "round " << round;
  }
  EXPECT_EQ(*nodes, 7u);
  EXPECT_EQ(*nViolations, 1u);
}

TEST(OnlineAnalyzer, LevelsAdvanceAsMessagesArrive) {
  const auto c = xyzComputation();
  const auto msgs = messagesInOrder(c.graph);  // e1, e2, e4, e3
  logic::SynthesizedMonitor mon(
      logic::SpecParser(c.space).parse(program::corpus::xyzProperty()));
  OnlineAnalyzer online(c.space, c.prog.threadCount(), &mon);

  EXPECT_EQ(online.levelsCompleted(), 1u);  // level 0 exists
  online.onMessage(msgs[0]);                // e1 = <x=0, T1>
  // T2 stream still unknown; the analyzer cannot rule out that e1 has an
  // enabled sibling — but the frontier cut is level 0 and its T1-successor
  // is available while T2 has no messages... the whole-level rule waits.
  EXPECT_EQ(online.levelsCompleted(), 1u);
  online.onMessage(msgs[1]);  // e2 = <z=1, T2>
  EXPECT_GE(online.levelsCompleted(), 2u);  // level 1 = {S10} computable
  online.onMessage(msgs[2]);  // e4 = <x=1, T2>
  online.onMessage(msgs[3]);  // e3 = <y=1, T1>
  online.endOfTrace();
  EXPECT_TRUE(online.finished());
  EXPECT_EQ(online.levelsCompleted(), 5u);
}

TEST(OnlineAnalyzer, ViolationReportedBeforeEndOfTrace) {
  // Feed all four xyz messages but DO NOT end the trace: the violation is
  // already known (it occurs on the final level, which is computable the
  // moment all its events are present... except the analyzer must wait for
  // possible further events).  So instead check the landing case at an
  // intermediate level: the violating monitor state appears at level 3 of
  // 3 — also final.  The honest early-detection case: a 3-event thread
  // where the violation fires at level 1.
  trace::VarTable dummy;
  program::ProgramBuilder b;
  const VarId x = b.var("x", 0);
  const VarId y = b.var("y", 0);
  auto t1 = b.thread();
  t1.write(x, program::lit(-1)).write(x, program::lit(0));
  auto t2 = b.thread();
  t2.write(y, program::lit(1)).write(y, program::lit(2));
  program::GreedyScheduler sched;
  const auto c = observe(b.build(), sched, {"x", "y"});

  logic::SynthesizedMonitor mon(
      logic::SpecParser(c.space).parse("x >= 0"));
  OnlineAnalyzer online(c.space, c.prog.threadCount(), &mon);
  const auto msgs = messagesInOrder(c.graph);
  // Feed only the first events of each thread: level 1 contains the state
  // x = -1, violating "x >= 0".
  online.onMessage(msgs[0]);  // x = -1 (T1 first)
  ASSERT_GE(msgs.size(), 2u);
  online.onMessage(msgs[2]);  // y = 1 (T2 first)
  EXPECT_GE(online.levelsCompleted(), 2u);
  EXPECT_FALSE(online.violations().empty())
      << "violation should be reported before the trace ends";
  // Finish cleanly.
  online.onMessage(msgs[1]);
  online.onMessage(msgs[3]);
  online.endOfTrace();
  EXPECT_TRUE(online.finished());
}

TEST(OnlineAnalyzer, DuplicateMessageRejected) {
  const auto c = landingComputation();
  OnlineAnalyzer online(c.space, c.prog.threadCount(), nullptr);
  const auto msgs = messagesInOrder(c.graph);
  online.onMessage(msgs[0]);
  EXPECT_THROW(online.onMessage(msgs[0]), std::runtime_error);
}

TEST(OnlineAnalyzer, GapAtEndOfTraceRejected) {
  const auto c = landingComputation();
  OnlineAnalyzer online(c.space, c.prog.threadCount(), nullptr);
  const auto msgs = messagesInOrder(c.graph);
  // Drop the first T1 message but keep the second: a gap.
  for (std::size_t i = 1; i < msgs.size(); ++i) online.onMessage(msgs[i]);
  EXPECT_THROW(online.endOfTrace(), std::runtime_error);
}

TEST(OnlineAnalyzer, MessageAfterEndRejected) {
  const auto c = landingComputation();
  OnlineAnalyzer online(c.space, c.prog.threadCount(), nullptr);
  for (const auto& m : messagesInOrder(c.graph)) online.onMessage(m);
  online.endOfTrace();
  EXPECT_THROW(online.onMessage(messagesInOrder(c.graph)[0]),
               std::logic_error);
}

TEST(OnlineAnalyzer, StructureOnlyModeCountsRuns) {
  const auto c = landingComputation();
  OnlineAnalyzer online(c.space, c.prog.threadCount(), nullptr);
  for (const auto& m : messagesInOrder(c.graph)) online.onMessage(m);
  online.endOfTrace();
  EXPECT_EQ(online.stats().pathCount, 3u);
  EXPECT_EQ(online.stats().totalNodes, 6u);
  EXPECT_TRUE(online.violations().empty());
}

TEST(OnlineAnalyzer, RandomProgramsMatchBatch) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    program::corpus::RandomProgramOptions opts;
    opts.threads = 3;
    opts.vars = 2;
    opts.opsPerThread = 5;
    program::RandomScheduler sched(seed * 5 + 1);
    const auto c = observe(program::corpus::randomProgram(seed, opts), sched,
                           {"g0", "g1"});

    const std::string spec = "historically g0 <= g1 + 6";
    logic::SynthesizedMonitor batchMon(logic::SpecParser(c.space).parse(spec));
    ComputationLattice batch(c.graph, c.space);
    std::vector<Violation> batchViolations;
    batch.check(batchMon, batchViolations);

    logic::SynthesizedMonitor onlineMon(
        logic::SpecParser(c.space).parse(spec));
    OnlineAnalyzer online(c.space, c.prog.threadCount(), &onlineMon);
    auto msgs = messagesInOrder(c.graph);
    std::mt19937_64 rng(seed);
    std::shuffle(msgs.begin(), msgs.end(), rng);
    for (const auto& m : msgs) online.onMessage(m);
    online.endOfTrace();

    EXPECT_EQ(online.stats().totalNodes, batch.stats().totalNodes)
        << "seed " << seed;
    EXPECT_EQ(online.stats().pathCount, batch.stats().pathCount);
    EXPECT_EQ(online.violations().empty(), batchViolations.empty());
  }
}

}  // namespace
}  // namespace mpx::observer
