// libFuzzer target: FrameReader over an arbitrary byte stream with
// fuzzer-chosen chunking.  Build with -DMPX_BUILD_FUZZERS=ON (clang only).
#include "fuzz_harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  mpx::testing::fuzz::driveFrameReader(data, size);
  return 0;
}
