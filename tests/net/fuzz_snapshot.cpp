// libFuzzer target: decodeSnapshot + canonical re-encode fixpoint over
// arbitrary bytes (epoch checkpoint files are untrusted startup input).
// Build with -DMPX_BUILD_FUZZERS=ON (clang only).
#include "fuzz_harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  mpx::testing::fuzz::driveSnapshot(data, size);
  return 0;
}
