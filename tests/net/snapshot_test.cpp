// Snapshot file format: the epoch-checkpoint container must round-trip
// byte-exactly, reject every corruption a crash or a hostile peer can
// produce (bit flips, truncation, trailing bytes, lying length words), and
// the file writer must be atomic — a failed write never clobbers the
// previous good snapshot.
#include "net/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

namespace mpx::net {
namespace {

std::vector<SnapshotEntry> sampleEntries() {
  std::vector<SnapshotEntry> entries;
  SnapshotEntry a;
  a.tenant = "team-payments";
  a.traceId = 0xfeedface01ull;
  a.blob = {0x01, 0x02, 0x03, 0x04, 0xff};
  entries.push_back(a);
  SnapshotEntry b;  // the default/legacy session: empty tenant, trace 0
  b.blob = std::vector<std::uint8_t>(300, 0xAB);
  entries.push_back(b);
  SnapshotEntry c;
  c.tenant = "tenant-with-empty-blob";
  c.traceId = 7;
  entries.push_back(c);
  return entries;
}

TEST(NetSnapshot, EncodeDecodeRoundTripsEveryEntry) {
  const auto entries = sampleEntries();
  const std::vector<std::uint8_t> bytes = encodeSnapshot(entries);
  std::vector<SnapshotEntry> back;
  const char* error = nullptr;
  ASSERT_TRUE(decodeSnapshot(bytes.data(), bytes.size(), back, &error))
      << error;
  ASSERT_EQ(back.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(back[i].tenant, entries[i].tenant) << i;
    EXPECT_EQ(back[i].traceId, entries[i].traceId) << i;
    EXPECT_EQ(back[i].blob, entries[i].blob) << i;
  }
  // The encoding is canonical: re-encoding the decode is byte-identical.
  EXPECT_EQ(encodeSnapshot(back), bytes);
}

TEST(NetSnapshot, EmptySnapshotRoundTrips) {
  const std::vector<std::uint8_t> bytes = encodeSnapshot({});
  std::vector<SnapshotEntry> back;
  const char* error = nullptr;
  ASSERT_TRUE(decodeSnapshot(bytes.data(), bytes.size(), back, &error))
      << error;
  EXPECT_TRUE(back.empty());
}

TEST(NetSnapshot, EveryBitFlipFailsTheChecksum) {
  const std::vector<std::uint8_t> bytes = encodeSnapshot(sampleEntries());
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::vector<std::uint8_t> flipped = bytes;
    flipped[i] ^= 0x40;
    std::vector<SnapshotEntry> back;
    const char* error = nullptr;
    EXPECT_FALSE(decodeSnapshot(flipped.data(), flipped.size(), back, &error))
        << "flip at byte " << i;
    ASSERT_NE(error, nullptr);
    // A flip in the body fails the CRC before any field is parsed; a flip
    // inside the CRC trailer itself also mismatches.
    EXPECT_STREQ(error, "snapshot checksum mismatch") << "flip at byte " << i;
  }
}

TEST(NetSnapshot, EveryTruncationIsRejected) {
  const std::vector<std::uint8_t> bytes = encodeSnapshot(sampleEntries());
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    std::vector<SnapshotEntry> back;
    const char* error = nullptr;
    EXPECT_FALSE(decodeSnapshot(bytes.data(), n, back, &error))
        << "length " << n;
    EXPECT_NE(error, nullptr) << "length " << n;
  }
}

TEST(NetSnapshot, TrailingBytesAreRejected) {
  // Appending a byte breaks the CRC; appending a byte AND refreshing the
  // CRC must still fail on the trailing-bytes check — the count says where
  // the entries end.
  std::vector<std::uint8_t> bytes = encodeSnapshot(sampleEntries());
  bytes.resize(bytes.size() - 4);  // strip the old CRC
  bytes.push_back(0xEE);           // junk after the last entry
  const std::uint32_t crc = snapshotCrc32(bytes.data(), bytes.size());
  for (int i = 0; i < 4; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
  }
  std::vector<SnapshotEntry> back;
  const char* error = nullptr;
  EXPECT_FALSE(decodeSnapshot(bytes.data(), bytes.size(), back, &error));
  EXPECT_STREQ(error, "snapshot has trailing bytes");
}

TEST(NetSnapshot, HostileSessionCountIsRejectedBeforeAllocation) {
  // Header claiming 2^40 sessions (with a valid CRC): the count cap must
  // reject it before any per-entry work.
  std::vector<std::uint8_t> bytes;
  const auto put32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  put32(kSnapshotMagic);
  bytes.push_back(static_cast<std::uint8_t>(kSnapshotVersion));
  bytes.push_back(static_cast<std::uint8_t>(kSnapshotVersion >> 8));
  const std::uint64_t huge = 1ull << 40;
  for (int i = 0; i < 8; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(huge >> (8 * i)));
  }
  put32(snapshotCrc32(bytes.data(), bytes.size()));
  std::vector<SnapshotEntry> back;
  const char* error = nullptr;
  EXPECT_FALSE(decodeSnapshot(bytes.data(), bytes.size(), back, &error));
  ASSERT_NE(error, nullptr);
  EXPECT_NE(std::string(error).find("session count"), std::string::npos);
}

TEST(NetSnapshot, WrongMagicAndVersionAreRejected) {
  std::vector<std::uint8_t> bytes = encodeSnapshot({});
  {
    std::vector<std::uint8_t> wrongMagic = bytes;
    wrongMagic[0] ^= 0xFF;
    // Refresh the CRC so only the magic is wrong.
    wrongMagic.resize(wrongMagic.size() - 4);
    const std::uint32_t crc =
        snapshotCrc32(wrongMagic.data(), wrongMagic.size());
    for (int i = 0; i < 4; ++i) {
      wrongMagic.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
    }
    std::vector<SnapshotEntry> back;
    const char* error = nullptr;
    EXPECT_FALSE(
        decodeSnapshot(wrongMagic.data(), wrongMagic.size(), back, &error));
    ASSERT_NE(error, nullptr);
    EXPECT_NE(std::string(error).find("magic"), std::string::npos);
  }
  {
    std::vector<std::uint8_t> wrongVersion = bytes;
    wrongVersion[4] = 0x7F;
    wrongVersion.resize(wrongVersion.size() - 4);
    const std::uint32_t crc =
        snapshotCrc32(wrongVersion.data(), wrongVersion.size());
    for (int i = 0; i < 4; ++i) {
      wrongVersion.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
    }
    std::vector<SnapshotEntry> back;
    const char* error = nullptr;
    EXPECT_FALSE(decodeSnapshot(wrongVersion.data(), wrongVersion.size(),
                                back, &error));
    ASSERT_NE(error, nullptr);
    EXPECT_NE(std::string(error).find("version"), std::string::npos);
  }
}

TEST(NetSnapshot, FileWriteReadRoundTripsAndReplacesAtomically) {
  const std::string path =
      ::testing::TempDir() + "mpx_snapshot_test_roundtrip.bin";
  std::remove(path.c_str());

  const auto first = sampleEntries();
  const char* error = nullptr;
  ASSERT_TRUE(writeSnapshotFile(path, first, &error)) << error;
  std::vector<SnapshotEntry> back;
  ASSERT_TRUE(readSnapshotFile(path, back, &error)) << error;
  ASSERT_EQ(back.size(), first.size());
  EXPECT_EQ(back[0].tenant, first[0].tenant);
  EXPECT_EQ(back[1].blob, first[1].blob);

  // Overwrite with a different epoch; the reader sees only the new state.
  std::vector<SnapshotEntry> second = first;
  second.pop_back();
  second[0].blob.push_back(0x99);
  ASSERT_TRUE(writeSnapshotFile(path, second, &error)) << error;
  back.clear();
  ASSERT_TRUE(readSnapshotFile(path, back, &error)) << error;
  ASSERT_EQ(back.size(), second.size());
  EXPECT_EQ(back[0].blob, second[0].blob);
  std::remove(path.c_str());
}

TEST(NetSnapshot, MissingAndCorruptFilesFailWithReasons) {
  const std::string missing =
      ::testing::TempDir() + "mpx_snapshot_test_missing.bin";
  std::remove(missing.c_str());
  std::vector<SnapshotEntry> back;
  const char* error = nullptr;
  EXPECT_FALSE(readSnapshotFile(missing, back, &error));
  EXPECT_STREQ(error, "cannot open snapshot file");

  // A torn write (half the file) must fail validation, not half-restore.
  const std::string torn = ::testing::TempDir() + "mpx_snapshot_test_torn.bin";
  const std::vector<std::uint8_t> bytes = encodeSnapshot(sampleEntries());
  std::FILE* f = std::fopen(torn.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(bytes.data(), 1, bytes.size() / 2, f);
  std::fclose(f);
  error = nullptr;
  EXPECT_FALSE(readSnapshotFile(torn, back, &error));
  EXPECT_NE(error, nullptr);
  std::remove(torn.c_str());
}

}  // namespace
}  // namespace mpx::net
