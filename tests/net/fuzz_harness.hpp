// Shared fuzz drivers for the untrusted wire layer.
//
// Each driver consumes an arbitrary byte string, exercises one parser
// (FrameReader, BinaryCodec::tryDecode, decodeHandshake) and checks the
// parser's CONTRACT — not just "no crash":
//
//   * a non-throwing API must never throw, whatever the bytes;
//   * kNeedMore must really mean "a prefix": appending bytes may only move
//     the verdict forward, never resurrect a corrupt stream;
//   * every successful decode must re-encode to something that decodes to
//     the same value (encode/decode fixpoint);
//   * declared sizes in the input must never drive unbounded allocation.
//
// The drivers are used twice: by the libFuzzer targets (fuzz_*.cpp, built
// only with -DMPX_BUILD_FUZZERS=ON under clang) and by the deterministic
// tier-1 smoke test (fuzz_smoke_test.cpp), which replays the checked-in
// seed corpus plus seeded random mutations of valid encodings through the
// exact same code.  A crash found by CI fuzzing is landed as a named
// regression input in the smoke test.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "net/snapshot.hpp"
#include "net/wire.hpp"
#include "trace/codec.hpp"

namespace mpx::testing::fuzz {

/// Abort with a message: both libFuzzer and the gtest smoke treat an abort
/// as a finding (gtest surfaces it as a crashed test binary with the
/// message on stderr).
#define MPX_FUZZ_ASSERT(cond, what)                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "fuzz invariant violated: %s (%s:%d)\n", what, \
                   __FILE__, __LINE__);                                   \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

// --- FrameReader --------------------------------------------------------

/// Feeds `data` to a FrameReader in chunk sizes derived from the data
/// itself (so the fuzzer controls the chunking too) and drains frames
/// after every feed.
inline void driveFrameReader(const std::uint8_t* data, std::size_t len) {
  // Small payload cap: a fuzzer must be able to reach it with small inputs.
  net::FrameReader reader(/*maxPayload=*/4096);
  std::size_t pos = 0;
  bool corrupt = false;
  std::uint64_t drained = 0;
  while (pos < len) {
    // Chunk size 1..64, steered by the input bytes.
    const std::size_t chunk =
        std::min<std::size_t>(len - pos, 1 + (data[pos] & 63));
    reader.feed(data + pos, chunk);
    pos += chunk;
    net::Frame frame;
    for (;;) {
      const net::FrameReader::Status st = reader.next(frame);
      if (st == net::FrameReader::Status::kFrame) {
        MPX_FUZZ_ASSERT(!corrupt, "frame extracted after corruption");
        MPX_FUZZ_ASSERT(frame.payload.size() <= 4096,
                        "frame payload exceeds the reader's cap");
        ++drained;
        continue;
      }
      if (st == net::FrameReader::Status::kCorrupt) {
        MPX_FUZZ_ASSERT(reader.error() != nullptr,
                        "kCorrupt without a reason");
        corrupt = true;
      } else {
        MPX_FUZZ_ASSERT(!corrupt, "corrupt reader recovered to kNeedMore");
      }
      break;
    }
    // A reader never buffers more than a header + one capped payload per
    // pending frame; with draining after every feed the backlog stays
    // bounded by one frame (plus the unconsumed chunk).
    MPX_FUZZ_ASSERT(reader.buffered() <= net::kFrameHeaderSize + 4096 + 64,
                    "reader buffered more than one capped frame");
  }
  (void)drained;
}

// --- BinaryCodec::tryDecode ---------------------------------------------

/// Decodes messages from the input until it is exhausted, corrupt, or a
/// prefix; checks consumption accounting and the encode/decode fixpoint.
inline void driveCodec(const std::uint8_t* data, std::size_t len) {
  std::size_t pos = 0;
  while (pos < len) {
    const trace::DecodeResult r =
        trace::BinaryCodec::tryDecode(data + pos, len - pos);
    if (r.status == trace::DecodeStatus::kOk) {
      MPX_FUZZ_ASSERT(r.consumed > 0, "kOk consumed nothing");
      MPX_FUZZ_ASSERT(r.consumed <= len - pos, "kOk consumed past the end");
      // Semantic fixpoint: re-encoding the decoded message must decode to
      // an EQUAL message.  Byte identity is deliberately not required —
      // trailing zero clock components are implicit (vector_clock.hpp), so
      // the canonical re-encode may be SHORTER than the consumed bytes,
      // never longer.
      std::vector<std::uint8_t> re;
      const std::size_t written = trace::BinaryCodec::encode(r.message, re);
      MPX_FUZZ_ASSERT(written == re.size(), "encode() miscounted");
      MPX_FUZZ_ASSERT(re.size() <= r.consumed,
                      "re-encode longer than the consumed bytes");
      const trace::DecodeResult r2 =
          trace::BinaryCodec::tryDecode(re.data(), re.size());
      MPX_FUZZ_ASSERT(r2.status == trace::DecodeStatus::kOk,
                      "re-encoded message does not decode");
      MPX_FUZZ_ASSERT(r2.consumed == re.size(),
                      "re-encoded message decodes short");
      MPX_FUZZ_ASSERT(r2.message.event == r.message.event,
                      "event changed in round trip");
      MPX_FUZZ_ASSERT(r2.message.clock == r.message.clock,
                      "clock changed in round trip");
      pos += r.consumed;
      continue;
    }
    if (r.status == trace::DecodeStatus::kNeedMore) {
      // A true prefix: decoding any shorter slice must also be kNeedMore
      // or kCorrupt-free — spot-check the empty tail contract.
      MPX_FUZZ_ASSERT(r.error == nullptr, "kNeedMore with an error reason");
    } else {
      MPX_FUZZ_ASSERT(r.error != nullptr, "kCorrupt without a reason");
    }
    break;
  }
  // Whole-buffer batch decode through the frame-payload path must agree.
  std::vector<std::uint8_t> payload(data, data + len);
  std::vector<trace::Message> out;
  const char* error = nullptr;
  (void)net::decodeEventsPayload(payload, out, &error);
}

// --- SparseClockCodec::tryDecode ----------------------------------------

/// Decodes sparse-coded messages (wire v4 tails) from the input with a
/// frame-local state, exactly like one kEventsSparse frame; checks the
/// contract plus the sparse-specific invariants: hostile counts and
/// indices must be rejected before they drive allocation, and a decoded
/// stream must re-encode (with a mirrored frame state) to the same or
/// fewer bytes and decode back to equal messages.
inline void driveSparseClock(const std::uint8_t* data, std::size_t len) {
  trace::SparseClockCodec::FrameState dec;
  // Mirror states: `reEnc`/`reDec` replay the accepted messages so the
  // delta bases on the re-encode path match the original stream's.
  trace::SparseClockCodec::FrameState reEnc;
  trace::SparseClockCodec::FrameState reDec;
  std::size_t pos = 0;
  while (pos < len) {
    const trace::DecodeResult r =
        trace::SparseClockCodec::tryDecode(data + pos, len - pos, dec);
    if (r.status == trace::DecodeStatus::kOk) {
      MPX_FUZZ_ASSERT(r.consumed > 0, "kOk consumed nothing");
      MPX_FUZZ_ASSERT(r.consumed <= len - pos, "kOk consumed past the end");
      MPX_FUZZ_ASSERT(r.message.clock.size() <=
                          trace::BinaryCodec::kMaxClockComponents,
                      "decoded clock wider than the component cap");
      // Semantic fixpoint: the minimal re-encode may be shorter than the
      // consumed bytes (the input may have used a non-minimal mode or
      // redundant entries), never longer.
      std::vector<std::uint8_t> re;
      const std::size_t written =
          trace::SparseClockCodec::encode(r.message, reEnc, re);
      MPX_FUZZ_ASSERT(written == re.size(), "encode() miscounted");
      MPX_FUZZ_ASSERT(re.size() <= r.consumed,
                      "re-encode longer than the consumed bytes");
      const trace::DecodeResult r2 =
          trace::SparseClockCodec::tryDecode(re.data(), re.size(), reDec);
      MPX_FUZZ_ASSERT(r2.status == trace::DecodeStatus::kOk,
                      "re-encoded sparse message does not decode");
      MPX_FUZZ_ASSERT(r2.consumed == re.size(),
                      "re-encoded sparse message decodes short");
      MPX_FUZZ_ASSERT(r2.message.event == r.message.event,
                      "event changed in sparse round trip");
      MPX_FUZZ_ASSERT(r2.message.clock == r.message.clock,
                      "clock changed in sparse round trip");
      pos += r.consumed;
      continue;
    }
    if (r.status == trace::DecodeStatus::kNeedMore) {
      MPX_FUZZ_ASSERT(r.error == nullptr, "kNeedMore with an error reason");
    } else {
      MPX_FUZZ_ASSERT(r.error != nullptr, "kCorrupt without a reason");
    }
    break;
  }
  // Whole-buffer decode through the v4 frame-payload path must not throw
  // either; prepend the timestamp prefix the payload decoder expects.
  std::vector<std::uint8_t> payload(net::kEventsTsPrefixSize, 0);
  payload.insert(payload.end(), data, data + len);
  std::vector<trace::Message> out;
  std::uint64_t sendNs = 0;
  const char* error = nullptr;
  (void)net::decodeEventsSparsePayload(payload, sendNs, out, &error);
}

// --- handshake (v1 + v2) ------------------------------------------------

/// decodeHandshake must accept or reject any payload without throwing, and
/// every accepted payload must survive an encode/decode round trip.
inline void driveHandshake(const std::uint8_t* data, std::size_t len) {
  const std::vector<std::uint8_t> payload(data, data + len);
  net::Handshake h;
  const char* error = nullptr;
  if (!net::decodeHandshake(payload, h, &error)) {
    MPX_FUZZ_ASSERT(error != nullptr, "decode failure without a reason");
    return;
  }
  MPX_FUZZ_ASSERT(h.version >= net::kLegacyProtocolVersion &&
                      h.version <= net::kProtocolVersion,
                  "accepted handshake with an unsupported version");
  // Fixpoint: what we decoded must re-encode to something that decodes to
  // the same surface (version normalization aside).
  const std::vector<std::uint8_t> re = net::encodeHandshake(h);
  net::Handshake h2;
  MPX_FUZZ_ASSERT(net::decodeHandshake(re, h2, &error),
                  "re-encoded handshake does not decode");
  MPX_FUZZ_ASSERT(h2.version == h.version, "version changed in round trip");
  MPX_FUZZ_ASSERT(h2.threads == h.threads, "threads changed in round trip");
  MPX_FUZZ_ASSERT(h2.specs == h.specs, "specs changed in round trip");
  MPX_FUZZ_ASSERT(h2.tracked == h.tracked, "tracked changed in round trip");
  MPX_FUZZ_ASSERT(h2.vars.size() == h.vars.size(),
                  "var table size changed in round trip");
}

// --- snapshot files (epoch checkpoints) ---------------------------------

/// decodeSnapshot must accept or reject any byte string without throwing
/// or over-allocating, and — because the format is fully canonical (no
/// slack, trailing bytes rejected, CRC over everything) — any ACCEPTED
/// input must re-encode byte-identically.
inline void driveSnapshot(const std::uint8_t* data, std::size_t len) {
  std::vector<net::SnapshotEntry> entries;
  const char* error = nullptr;
  if (!net::decodeSnapshot(data, len, entries, &error)) {
    MPX_FUZZ_ASSERT(error != nullptr, "snapshot rejection without a reason");
    MPX_FUZZ_ASSERT(entries.empty(), "rejected snapshot left entries behind");
    return;
  }
  MPX_FUZZ_ASSERT(entries.size() <= net::kMaxSnapshotSessions,
                  "decoded snapshot exceeds the session cap");
  const std::vector<std::uint8_t> re = net::encodeSnapshot(entries);
  MPX_FUZZ_ASSERT(re.size() == len, "snapshot re-encode changed the length");
  MPX_FUZZ_ASSERT(len == 0 || std::memcmp(re.data(), data, len) == 0,
                  "snapshot re-encode is not byte-identical");
}

// --- seed inputs --------------------------------------------------------
// Valid encodings the corpus ships and the smoke test mutates.  Kept here
// so the corpus generator utility and the smoke test produce byte-identical
// seeds.

inline trace::Message seedMessage(std::uint64_t salt) {
  trace::Message m;
  m.event.kind = trace::EventKind::kWrite;
  m.event.thread = static_cast<ThreadId>(salt % 3);
  m.event.var = static_cast<VarId>(salt % 5);
  m.event.value = static_cast<Value>(salt * 7 % 23);
  m.event.localSeq = static_cast<LocalSeq>(1 + salt % 4);
  m.event.globalSeq = static_cast<GlobalSeq>(1 + salt);
  m.clock = vc::VectorClock(3);
  for (ThreadId t = 0; t < 3; ++t) {
    m.clock.set(t, (salt + t) % 5);
  }
  return m;
}

inline std::vector<std::uint8_t> seedEventsPayload() {
  std::vector<std::uint8_t> out;
  for (std::uint64_t i = 0; i < 4; ++i) {
    trace::BinaryCodec::encode(seedMessage(i), out);
  }
  return out;
}

/// An annotated-region marker message (wire v6 event kinds): no variable,
/// the region id in the value field.
inline trace::Message seedRegionMessage(std::uint64_t salt, bool begin,
                                        Value regionId) {
  trace::Message m = seedMessage(salt);
  m.event.kind =
      begin ? trace::EventKind::kRegionBegin : trace::EventKind::kRegionEnd;
  m.event.var = kNoVar;
  m.event.value = regionId;
  return m;
}

/// Region-kind (wire v6) message stream: a matched begin/body/end run plus
/// the two hostile shapes pinned as named corpus regressions below.
inline std::vector<std::uint8_t> seedRegionEventsPayload() {
  std::vector<std::uint8_t> out;
  trace::BinaryCodec::encode(seedRegionMessage(1, true, 7), out);
  trace::BinaryCodec::encode(seedMessage(2), out);
  trace::BinaryCodec::encode(seedRegionMessage(3, false, 7), out);
  return out;
}

/// Named regression: a region opened and never closed (the stream just
/// ends).  The codec is segmentation-blind, so this must decode and
/// round-trip like any message run; only the analysis layer interprets it.
inline std::vector<std::uint8_t> seedRegionBeginWithoutEnd() {
  std::vector<std::uint8_t> out;
  trace::BinaryCodec::encode(seedRegionMessage(4, true, 11), out);
  trace::BinaryCodec::encode(seedMessage(5), out);
  return out;
}

/// Named regression: hostile region ids — extreme values, an end with no
/// begin, and a marker carrying a (meaningless but representable) var id.
inline std::vector<std::uint8_t> seedRegionHostileId() {
  std::vector<std::uint8_t> out;
  trace::BinaryCodec::encode(
      seedRegionMessage(6, false, std::numeric_limits<Value>::min()), out);
  trace::Message odd =
      seedRegionMessage(7, true, std::numeric_limits<Value>::max());
  odd.event.var = 3;  // markers access no variable; the codec passes it on
  trace::BinaryCodec::encode(odd, out);
  return out;
}

inline std::vector<std::uint8_t> seedHandshakePayload(std::uint16_t version) {
  trace::VarTable vars;
  vars.intern("g0", 1);
  vars.intern("g1", 2);
  vars.intern("L0", 0, trace::VarRole::kLock);
  net::Handshake h = net::makeHandshake(
      3, std::vector<std::string>{"historically g0 <= g1 + 5", "g0 >= 0"},
      {"g0", "g1"}, vars);
  h.version = version;
  return net::encodeHandshake(h);
}

/// A sparse-coded (wire v4) message stream exercising all three clock
/// modes: a wide dense-ish first clock, a sparse mostly-zero clock, and
/// same-thread successors that delta-code to a handful of entries.
inline std::vector<std::uint8_t> seedSparseEventsPayload() {
  trace::SparseClockCodec::FrameState st;
  std::vector<std::uint8_t> out;
  // Thread 0: a 32-wide fully-populated clock, then two small advances
  // (delta mode with 1-2 entries).
  trace::Message m = seedMessage(1);
  m.event.thread = 0;
  for (ThreadId t = 0; t < 32; ++t) m.clock.set(t, 100 + t);
  trace::SparseClockCodec::encode(m, st, out);
  m.clock.set(0, m.clock.get(0) + 1);
  m.event.localSeq++;
  trace::SparseClockCodec::encode(m, st, out);
  m.clock.set(0, m.clock.get(0) + 1);
  m.clock.set(31, m.clock.get(31) + 3);
  m.event.localSeq++;
  trace::SparseClockCodec::encode(m, st, out);
  // Thread 1: a mostly-zero wide clock (sparse-absolute mode).
  trace::Message n = seedMessage(2);
  n.event.thread = 1;
  n.clock = vc::VectorClock();
  n.clock.set(1, 7);
  n.clock.set(30, 9);
  trace::SparseClockCodec::encode(n, st, out);
  // Thread 2: a narrow clock (dense mode wins at small widths).
  trace::SparseClockCodec::encode(seedMessage(3), st, out);
  return out;
}

/// A valid three-entry snapshot file image (named tenants + the default
/// session + an empty blob).
inline std::vector<std::uint8_t> seedSnapshotBytes() {
  std::vector<net::SnapshotEntry> entries(3);
  entries[0].tenant = "tenant-a";
  entries[0].traceId = 0x1111;
  entries[0].blob = {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x42};
  entries[1].blob = std::vector<std::uint8_t>(64, 0x5A);  // default session
  entries[2].tenant = "tenant-empty";
  entries[2].traceId = 0x2222;
  return net::encodeSnapshot(entries);
}

inline std::vector<std::uint8_t> seedFrameStream() {
  std::vector<std::uint8_t> out;
  net::appendFrame(out, net::FrameType::kHandshake,
                   seedHandshakePayload(net::kProtocolVersion));
  net::appendFrame(out, net::FrameType::kEvents, seedEventsPayload());
  std::vector<std::uint8_t> sparse(net::kEventsTsPrefixSize, 0);
  const auto body = seedSparseEventsPayload();
  sparse.insert(sparse.end(), body.begin(), body.end());
  net::appendFrame(out, net::FrameType::kEventsSparse, sparse);
  net::appendFrame(out, net::FrameType::kEndOfTrace, nullptr, 0);
  return out;
}

/// Deterministic mutation of a valid encoding: byte flips, truncations,
/// duplications and splices, steered by `seed`.
inline std::vector<std::uint8_t> mutateSeed(std::vector<std::uint8_t> bytes,
                                            std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  if (bytes.empty()) bytes.push_back(0);
  const std::size_t mutations = 1 + rng() % 4;
  for (std::size_t i = 0; i < mutations; ++i) {
    switch (rng() % 5) {
      case 0:  // flip one byte
        bytes[rng() % bytes.size()] ^=
            static_cast<std::uint8_t>(1u << (rng() % 8));
        break;
      case 1:  // truncate
        bytes.resize(1 + rng() % bytes.size());
        break;
      case 2: {  // duplicate a slice onto the end
        const std::size_t at = rng() % bytes.size();
        const std::size_t n = std::min<std::size_t>(
            bytes.size() - at, 1 + rng() % 16);
        bytes.insert(bytes.end(), bytes.begin() + at, bytes.begin() + at + n);
        break;
      }
      case 3: {  // overwrite a length-looking word with a huge value
        if (bytes.size() >= 4) {
          const std::size_t at = rng() % (bytes.size() - 3);
          const std::uint32_t big = 0x7fffffffu >> (rng() % 8);
          std::memcpy(bytes.data() + at, &big, 4);
        }
        break;
      }
      default: {  // insert random bytes
        const std::size_t at = rng() % (bytes.size() + 1);
        std::vector<std::uint8_t> junk(1 + rng() % 8);
        for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
        bytes.insert(bytes.begin() + at, junk.begin(), junk.end());
        break;
      }
    }
  }
  return bytes;
}

}  // namespace mpx::testing::fuzz
