// Multi-tenant sessions + epoch checkpoint/restore, end to end on
// loopback: tenants must be fully isolated on one daemon, a killed daemon
// restored from its snapshot must finish with a report byte-identical to
// an uninterrupted run (the emitter's resend window replays the gap), and
// the per-tenant admission cap must shed one tenant without touching the
// others.
#include "net/observerd.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "../support/fixtures.hpp"
#include "logic/parser.hpp"
#include "net/emitter.hpp"
#include "net/snapshot.hpp"
#include "program/corpus.hpp"
#include "trace/codec.hpp"

namespace mpx::net {
namespace {

using namespace std::chrono_literals;
using mpx::testing::ObservedComputation;
using mpx::testing::landingComputation;
using mpx::testing::xyzComputation;

std::vector<trace::Message> messagesInOrder(
    const observer::CausalityGraph& g) {
  std::vector<trace::Message> out;
  for (const auto& ref : g.observedOrder()) out.push_back(g.message(ref));
  return out;
}

Handshake tenantHandshake(const ObservedComputation& c, const char* spec,
                          const std::vector<std::string>& tracked,
                          const std::string& tenant, std::uint64_t traceId) {
  Handshake h = makeHandshake(static_cast<std::uint32_t>(c.prog.threadCount()),
                              spec != nullptr ? spec : "", tracked, c.prog.vars);
  h.tenant = tenant;
  h.traceId = traceId;
  return h;
}

DaemonOptions quietDaemon() {
  DaemonOptions o;
  o.jobs = 1;
  o.logErrors = false;
  return o;
}

EmitterOptions emitterTo(std::uint16_t port, Handshake h) {
  EmitterOptions o;
  o.port = port;
  o.handshake = std::move(h);
  o.reconnectBase = 1ms;
  o.reconnectMax = 20ms;
  return o;
}

template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(2ms);
  }
  return true;
}

/// The uninterrupted reference: one daemon, one clean run, same handshake.
std::string referenceReport(const ObservedComputation& c, const char* spec,
                            const std::vector<std::string>& tracked) {
  ObserverDaemon daemon(quietDaemon());
  EXPECT_TRUE(daemon.start());
  {
    SocketEmitter emitter(
        emitterTo(daemon.port(), tenantHandshake(c, spec, tracked, "", 0)));
    for (const auto& m : messagesInOrder(c.graph)) emitter.onMessage(m);
    emitter.close();
  }
  EXPECT_TRUE(daemon.waitFinished(10000ms)) << daemon.streamError();
  std::string report = daemon.renderReport();
  daemon.stop();
  return report;
}

TEST(NetFleetE2E, TwoTenantsRunIsolatedSessionsOnOneDaemon) {
  // Tenant A analyzes the landing trace, tenant B the xyz trace, through
  // ONE daemon concurrently.  Each session must produce exactly the report
  // a dedicated daemon produces — same specs, same violations, no
  // cross-tenant bleed through shared arenas or counters.
  const auto landing = landingComputation();
  const auto xyz = xyzComputation();
  const char* landingSpec = program::corpus::landingProperty();
  const char* xyzSpec = program::corpus::xyzProperty();
  const std::string refLanding =
      referenceReport(landing, landingSpec, {"landing", "approved", "radio"});
  const std::string refXyz = referenceReport(xyz, xyzSpec, {"x", "y", "z"});
  ASSERT_NE(refLanding, refXyz);

  ObserverDaemon daemon(quietDaemon());
  ASSERT_TRUE(daemon.start());
  {
    SocketEmitter a(emitterTo(
        daemon.port(), tenantHandshake(landing, landingSpec,
                                       {"landing", "approved", "radio"},
                                       "tenant-a", 1)));
    SocketEmitter b(emitterTo(
        daemon.port(),
        tenantHandshake(xyz, xyzSpec, {"x", "y", "z"}, "tenant-b", 2)));
    const auto msgsA = messagesInOrder(landing.graph);
    const auto msgsB = messagesInOrder(xyz.graph);
    const std::size_t n = std::max(msgsA.size(), msgsB.size());
    for (std::size_t i = 0; i < n; ++i) {  // interleave the two tenants
      if (i < msgsA.size()) a.onMessage(msgsA[i]);
      if (i < msgsB.size()) b.onMessage(msgsB[i]);
    }
    // Both handshakes must be routed before either stream ENDS: the finish
    // condition is all-sessions-finished, which would be trivially true of
    // a lone tenant-a session if tenant-b's handshake were still in flight.
    // (The emitter connects lazily with its first frame, so this can only
    // be awaited after messages have been enqueued.)
    ASSERT_TRUE(eventually([&] { return daemon.sessionCount() == 2u; }));
    a.close();
    b.close();
  }
  ASSERT_TRUE(daemon.waitFinished(10000ms)) << daemon.streamError();

  ASSERT_EQ(daemon.sessionCount(), 2u);
  const auto sessions = daemon.sessionSnapshots();
  ASSERT_EQ(sessions.size(), 2u);  // sorted by (tenant, trace id)
  EXPECT_EQ(sessions[0].tenant, "tenant-a");
  EXPECT_EQ(sessions[0].traceId, 1u);
  EXPECT_TRUE(sessions[0].finished);
  EXPECT_GT(sessions[0].violations, 0u);  // landing predicts a violation
  EXPECT_EQ(sessions[1].tenant, "tenant-b");
  EXPECT_EQ(sessions[1].traceId, 2u);
  EXPECT_TRUE(sessions[1].finished);

  // /streams carries both sessions and tags each stream with its tenant.
  const std::string json = daemon.renderStreamsJson();
  EXPECT_NE(json.find("\"tenant\": \"tenant-a\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"tenant\": \"tenant-b\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"sessions_active\": 2"), std::string::npos) << json;
  daemon.stop();
}

TEST(NetFleetE2E, KillRestoreResumesByteIdenticalMidTrace) {
  // The tentpole crash drill: daemon checkpoints at every watermark
  // advance, dies (hard stop, no farewell checkpoint) with frames past the
  // last checkpoint lost, a fresh daemon restores the snapshot on the same
  // port, the emitter reconnects — resending its handshake verbatim and
  // replaying its recent-frame window — and the finished report is
  // byte-identical to an uninterrupted run's.
  const auto c = landingComputation();
  const char* spec = program::corpus::landingProperty();
  const std::vector<std::string> tracked{"landing", "approved", "radio"};
  const std::string ref = referenceReport(c, spec, tracked);
  const auto msgs = messagesInOrder(c.graph);
  const std::string snap =
      ::testing::TempDir() + "mpx_fleet_e2e_kill_restore.snapshot";
  std::remove(snap.c_str());

  DaemonOptions opts = quietDaemon();
  opts.checkpointPath = snap;
  opts.checkpointIntervalLevels = 1;
  auto daemonA = std::make_unique<ObserverDaemon>(opts);
  ASSERT_TRUE(daemonA->start());
  const std::uint16_t port = daemonA->port();

  EmitterOptions eopts = emitterTo(
      port, tenantHandshake(c, spec, tracked, "tenant-kr", 0xC0FFEE));
  eopts.maxBatch = 1;              // one frame per message: fine-grained gap
  eopts.resendWindowFrames = 512;  // window covers the whole trace
  eopts.maxReconnectAttempts = 500;
  eopts.reconnectMax = 50ms;
  SocketEmitter emitter(eopts);

  const std::size_t firstHalf = msgs.size() / 2;
  for (std::size_t i = 0; i < firstHalf; ++i) emitter.onMessage(msgs[i]);
  // Wait until the first half is ingested, then force a mid-trace epoch the
  // way SIGTERM does.  (The interval trigger alone is not guaranteed here: a
  // consistent half-prefix can leave a thread starved so no NEW lattice
  // level completes and the watermark stays put.)
  ASSERT_TRUE(eventually(
      [&] { return daemonA->messagesIngested() >= firstHalf; }));
  ASSERT_TRUE(daemonA->checkpointNow());
  const std::uint64_t epochsWritten = daemonA->checkpointsWritten();
  ASSERT_GE(epochsWritten, 1u);

  daemonA->stop();  // the crash: no final checkpoint, connections cut
  daemonA.reset();

  auto daemonB = std::make_unique<ObserverDaemon>([&] {
    DaemonOptions o = opts;
    o.port = port;  // same endpoint, so the emitter's reconnect finds it
    return o;
  }());
  ASSERT_TRUE(daemonB->start());
  EXPECT_EQ(daemonB->sessionsRestored(), 1u);
  ASSERT_EQ(daemonB->sessionCount(), 1u);
  {
    const auto sessions = daemonB->sessionSnapshots();
    ASSERT_EQ(sessions.size(), 1u);
    EXPECT_EQ(sessions[0].tenant, "tenant-kr");
    EXPECT_EQ(sessions[0].traceId, 0xC0FFEEu);
    EXPECT_EQ(sessions[0].restores, 1u);
    EXPECT_GE(sessions[0].epoch, epochsWritten);
    EXPECT_FALSE(sessions[0].finished);
  }

  // The client never noticed: it keeps emitting, the sender reconnects,
  // replays the window (daemon B dedups the checkpointed prefix) and ends
  // the trace.
  for (std::size_t i = firstHalf; i < msgs.size(); ++i) {
    emitter.onMessage(msgs[i]);
  }
  emitter.close();
  EXPECT_FALSE(emitter.failed());
  EXPECT_EQ(emitter.droppedMessages(), 0u);
  EXPECT_GE(emitter.reconnects(), 1u);

  ASSERT_TRUE(daemonB->waitFinished(10000ms)) << daemonB->streamError();
  EXPECT_EQ(daemonB->renderReport(), ref);
  // At-least-once accounting: everything lost in the gap was replayed, and
  // everything already checkpointed was deduplicated, never re-analyzed.
  const auto sessions = daemonB->sessionSnapshots();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_TRUE(sessions[0].finished);
  daemonB->stop();
  std::remove(snap.c_str());
}

TEST(NetFleetE2E, CheckpointNowAndRestoreAfterFinishServeTheVerdict) {
  // A session that FINISHED before the daemon died: the restore must come
  // back finished with the same report — the fleet keeps serving verdicts
  // across restarts, not just mid-flight state.
  const auto c = xyzComputation();
  const char* spec = program::corpus::xyzProperty();
  const std::vector<std::string> tracked{"x", "y", "z"};
  const std::string ref = referenceReport(c, spec, tracked);
  const std::string snap =
      ::testing::TempDir() + "mpx_fleet_e2e_finished.snapshot";
  std::remove(snap.c_str());

  DaemonOptions opts = quietDaemon();
  opts.checkpointPath = snap;
  {
    ObserverDaemon daemon(opts);
    ASSERT_TRUE(daemon.start());
    SocketEmitter emitter(emitterTo(
        daemon.port(), tenantHandshake(c, spec, tracked, "tenant-v", 9)));
    for (const auto& m : messagesInOrder(c.graph)) emitter.onMessage(m);
    emitter.close();
    ASSERT_TRUE(daemon.waitFinished(10000ms)) << daemon.streamError();
    // Finishing triggers a checkpoint on its own; checkpointNow() must
    // also succeed and bump the counter.
    ASSERT_TRUE(eventually([&] { return daemon.checkpointsWritten() >= 1; }));
    EXPECT_TRUE(daemon.checkpointNow());
    daemon.stop();
  }
  {
    ObserverDaemon restored(opts);
    ASSERT_TRUE(restored.start());
    EXPECT_EQ(restored.sessionsRestored(), 1u);
    EXPECT_TRUE(restored.finished());
    EXPECT_EQ(restored.renderReport(), ref);
    restored.stop();
  }
  std::remove(snap.c_str());
}

TEST(NetFleetE2E, PerTenantCapShedsOnlyTheFloodingTenant) {
  // maxConnsPerTenant = 1: tenant-flood's second concurrent connection is
  // rejected at handshake time, while tenant-calm sails through and
  // finishes normally.
  const auto c = xyzComputation();
  const char* spec = program::corpus::xyzProperty();
  const std::vector<std::string> tracked{"x", "y", "z"};

  DaemonOptions opts = quietDaemon();
  opts.maxConnsPerTenant = 1;
  ObserverDaemon daemon(opts);
  ASSERT_TRUE(daemon.start());

  const auto msgs = messagesInOrder(c.graph);
  // First connection of tenant-flood: handshakes, stays open (no close).
  Handshake flood1 = tenantHandshake(c, spec, tracked, "tenant-flood", 1);
  Socket hold = Socket::connectTo("127.0.0.1", daemon.port());
  ASSERT_TRUE(hold.valid());
  {
    std::vector<std::uint8_t> bytes;
    appendFrame(bytes, FrameType::kHandshake, encodeHandshake(flood1));
    ASSERT_TRUE(hold.sendAll(bytes.data(), bytes.size()));
  }
  ASSERT_TRUE(eventually([&] { return daemon.sessionCount() == 1; }));

  // Second connection of the same tenant (even for a DIFFERENT trace):
  // over the cap, shed.
  {
    Handshake flood2 = tenantHandshake(c, spec, tracked, "tenant-flood", 2);
    Socket s = Socket::connectTo("127.0.0.1", daemon.port());
    ASSERT_TRUE(s.valid());
    std::vector<std::uint8_t> bytes;
    appendFrame(bytes, FrameType::kHandshake, encodeHandshake(flood2));
    ASSERT_TRUE(s.sendAll(bytes.data(), bytes.size()));
    s.shutdownWrite();
  }
  ASSERT_TRUE(eventually([&] { return daemon.connectionsShed() >= 1; }));
  EXPECT_EQ(daemon.sessionCount(), 1u);  // the shed handshake built nothing

  // A different tenant is unaffected by the flood.
  {
    SocketEmitter calm(emitterTo(
        daemon.port(), tenantHandshake(c, spec, tracked, "tenant-calm", 3)));
    for (const auto& m : msgs) calm.onMessage(m);
    calm.close();
    EXPECT_EQ(calm.droppedMessages(), 0u);
  }
  ASSERT_TRUE(eventually([&] {
    for (const auto& s : daemon.sessionSnapshots()) {
      if (s.tenant == "tenant-calm" && s.finished) return true;
    }
    return false;
  }));

  // Once the flood's first connection goes away, the tenant has headroom
  // again and a retry succeeds.
  hold.close();
  ASSERT_TRUE(eventually([&] { return daemon.connectionsAborted() >= 1; }));
  {
    SocketEmitter retry(emitterTo(
        daemon.port(), tenantHandshake(c, spec, tracked, "tenant-flood", 2)));
    for (const auto& m : msgs) retry.onMessage(m);
    retry.close();
    EXPECT_EQ(retry.droppedMessages(), 0u);
  }
  ASSERT_TRUE(eventually([&] {
    for (const auto& s : daemon.sessionSnapshots()) {
      if (s.tenant == "tenant-flood" && s.traceId == 2 && s.finished) {
        return true;
      }
    }
    return false;
  }));
  daemon.stop();
}

TEST(NetFleetE2E, RendezvousRankingIsStablePerTraceAndSpreadsTraces) {
  // The emitter's fleet ranking: deterministic for one trace id (sticky
  // routing), and different trace ids must not all pick the same node
  // (load actually spreads).  Pure ranking check — no sockets involved;
  // the emitters immediately fail their connects and are closed.
  const std::vector<Endpoint> fleet{
      {"127.0.0.1", 50001}, {"127.0.0.1", 50002}, {"127.0.0.1", 50003}};
  trace::VarTable vars;
  vars.intern("x", 0);

  const auto primaryFor = [&](std::uint64_t traceId) {
    EmitterOptions o;
    o.endpoints = fleet;
    o.handshake = makeHandshake(1, "", {"x"}, vars);
    o.handshake.tenant = "t";
    o.handshake.traceId = traceId;
    o.maxReconnectAttempts = 1;
    o.reconnectBase = 1ms;
    o.reconnectMax = 1ms;
    SocketEmitter e(o);
    const std::uint16_t port = e.primaryEndpoint().port;
    e.close();
    return port;
  };

  std::uint16_t first = primaryFor(77);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(primaryFor(77), first) << "routing must be sticky per trace";
  }
  bool spread = false;
  for (std::uint64_t t = 1; t <= 16 && !spread; ++t) {
    spread = primaryFor(t) != first;
  }
  EXPECT_TRUE(spread) << "16 traces all rendezvous-hashed to one node";
}

}  // namespace
}  // namespace mpx::net
