// Loopback end-to-end: the full Fig. 4 deployment on 127.0.0.1.  A socket-
// fed ObserverDaemon must produce exactly the analysis an in-process
// OnlineAnalyzer produces — identical violation sets, lattice statistics
// and rendered reports — and must survive every hostile lifecycle edge:
// clients killed mid-stream, zero-message streams, random bytes, HTTP
// probes, protocol violations.
#include "net/observerd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "../support/fixtures.hpp"
#include "analysis/engine.hpp"
#include "program/scheduler.hpp"
#include "logic/monitor.hpp"
#include "logic/parser.hpp"
#include "logic/spec_analysis.hpp"
#include "observer/analysis.hpp"
#include "net/emitter.hpp"
#include "observer/online.hpp"
#include "program/corpus.hpp"
#include "telemetry/metrics.hpp"
#include "trace/codec.hpp"

namespace mpx::net {
namespace {

using namespace std::chrono_literals;
using mpx::testing::ObservedComputation;
using mpx::testing::landingComputation;
using mpx::testing::xyzComputation;

std::vector<trace::Message> messagesInOrder(
    const observer::CausalityGraph& g) {
  std::vector<trace::Message> out;
  for (const auto& ref : g.observedOrder()) out.push_back(g.message(ref));
  return out;
}

/// The reference result: an in-process OnlineAnalyzer over the same
/// messages, rendered through the same report code as the daemon.
struct Reference {
  std::vector<observer::Violation> violations;
  observer::LatticeStats stats;
  std::string report;
};

Reference inProcess(const ObservedComputation& c, const char* spec,
                    std::size_t jobs = 1) {
  std::unique_ptr<logic::SynthesizedMonitor> mon;
  if (spec != nullptr && *spec != '\0') {
    mon = std::make_unique<logic::SynthesizedMonitor>(
        logic::SpecParser(c.space).parse(spec));
  }
  observer::LatticeOptions opts;
  opts.parallel.jobs = jobs;
  observer::OnlineAnalyzer a(c.space, c.prog.threadCount(), mon.get(), opts);
  for (const auto& m : messagesInOrder(c.graph)) a.onMessage(m);
  a.endOfTrace();
  EXPECT_TRUE(a.finished());
  Reference r;
  r.violations = a.violations();
  r.stats = a.stats();
  r.report = renderViolationReport(c.space, a.violations(), a.stats(),
                                   a.finished());
  return r;
}

Handshake handshakeFor(const ObservedComputation& c, const char* spec,
                       const std::vector<std::string>& tracked) {
  return makeHandshake(static_cast<std::uint32_t>(c.prog.threadCount()),
                       spec != nullptr ? spec : "", tracked, c.prog.vars);
}

DaemonOptions quietDaemon(std::size_t streams = 1, std::size_t jobs = 1) {
  DaemonOptions o;
  o.expectedStreams = streams;
  o.jobs = jobs;
  o.logErrors = false;
  return o;
}

EmitterOptions emitterTo(std::uint16_t port, Handshake h) {
  EmitterOptions o;
  o.port = port;
  o.handshake = std::move(h);
  o.reconnectBase = 1ms;
  o.reconnectMax = 20ms;
  return o;
}

template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds timeout = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(2ms);
  }
  return true;
}

/// Sends raw frames over a fresh connection (the "manual client" used for
/// lifecycle-edge tests); returns the socket for further abuse.
Socket rawClient(std::uint16_t port) {
  Socket s = Socket::connectTo("127.0.0.1", port);
  EXPECT_TRUE(s.valid());
  return s;
}

void sendFrame(Socket& s, FrameType type,
               const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> bytes;
  appendFrame(bytes, type, payload);
  ASSERT_TRUE(s.sendAll(bytes.data(), bytes.size()));
}

std::vector<std::uint8_t> eventsPayload(
    const std::vector<trace::Message>& ms) {
  std::vector<std::uint8_t> payload;
  for (const trace::Message& m : ms) trace::BinaryCodec::encode(m, payload);
  return payload;
}

TEST(NetDaemonE2E, LoopbackEqualsInProcessOnLanding) {
  const auto c = landingComputation();
  const char* spec = program::corpus::landingProperty();
  const Reference ref = inProcess(c, spec);
  ASSERT_FALSE(ref.violations.empty());  // the paper's predicted violation

  ObserverDaemon daemon(quietDaemon());
  ASSERT_TRUE(daemon.start());
  {
    SocketEmitter emitter(emitterTo(
        daemon.port(),
        handshakeFor(c, spec, {"landing", "approved", "radio"})));
    for (const auto& m : messagesInOrder(c.graph)) emitter.onMessage(m);
    emitter.close();
    EXPECT_EQ(emitter.droppedMessages(), 0u);
  }
  ASSERT_TRUE(daemon.waitFinished(10000ms)) << daemon.streamError();

  EXPECT_EQ(daemon.renderReport(), ref.report);
  EXPECT_EQ(daemon.violations().size(), ref.violations.size());
  EXPECT_EQ(daemon.stats().totalNodes, ref.stats.totalNodes);
  EXPECT_EQ(daemon.stats().pathCount, ref.stats.pathCount);
  EXPECT_EQ(daemon.stats().levels, ref.stats.levels);
  EXPECT_EQ(daemon.messagesIngested(), messagesInOrder(c.graph).size());
  daemon.stop();
}

TEST(NetDaemonE2E, TwoInterleavedChannelsWithParallelJobs) {
  const auto c = xyzComputation();
  const char* spec = program::corpus::xyzProperty();
  const Reference ref = inProcess(c, spec);

  ObserverDaemon daemon(quietDaemon(/*streams=*/2, /*jobs=*/4));
  ASSERT_TRUE(daemon.start());
  const Handshake h = handshakeFor(c, spec, {"x", "y", "z"});
  {
    // Split the trace alternately across two connections — Theorem 3 says
    // the daemon must reassemble the causality regardless.
    SocketEmitter a(emitterTo(daemon.port(), h));
    SocketEmitter b(emitterTo(daemon.port(), h));
    const auto msgs = messagesInOrder(c.graph);
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      (i % 2 == 0 ? a : b).onMessage(msgs[i]);
    }
    a.close();
    b.close();
  }
  ASSERT_TRUE(daemon.waitFinished(10000ms)) << daemon.streamError();

  EXPECT_EQ(daemon.renderReport(), ref.report);
  EXPECT_EQ(daemon.violations().size(), ref.violations.size());
  EXPECT_EQ(daemon.stats().totalNodes, ref.stats.totalNodes);
  daemon.stop();
}

TEST(NetDaemonE2E, ClientKilledMidStreamThenAnalysisRecovers) {
  const auto c = landingComputation();
  const char* spec = program::corpus::landingProperty();
  const Reference ref = inProcess(c, spec);
  const auto msgs = messagesInOrder(c.graph);
  const Handshake h = handshakeFor(c, spec, {"landing", "approved", "radio"});

  ObserverDaemon daemon(quietDaemon());
  ASSERT_TRUE(daemon.start());

  // A client that is SIGKILLed mid-stream: handshake, half the messages,
  // then the connection just vanishes — no kEndOfTrace, no goodbye.
  const std::size_t half = msgs.size() / 2;
  {
    Socket victim = rawClient(daemon.port());
    sendFrame(victim, FrameType::kHandshake, encodeHandshake(h));
    sendFrame(victim, FrameType::kEvents,
              eventsPayload({msgs.begin(),
                             msgs.begin() + static_cast<std::ptrdiff_t>(half)}));
    victim.close();  // abrupt death
  }
  ASSERT_TRUE(eventually([&] { return daemon.connectionsAborted() == 1; }));
  EXPECT_FALSE(daemon.finished());
  EXPECT_NE(daemon.renderReport().find("INCOMPLETE"), std::string::npos);

  // The client restarts and (at-least-once) resends the WHOLE trace; the
  // daemon deduplicates the first half and completes the analysis.
  {
    SocketEmitter emitter(emitterTo(daemon.port(), h));
    for (const auto& m : msgs) emitter.onMessage(m);
    emitter.close();
  }
  ASSERT_TRUE(daemon.waitFinished(10000ms)) << daemon.streamError();
  EXPECT_EQ(daemon.duplicatesIgnored(), static_cast<std::uint64_t>(half));
  EXPECT_EQ(daemon.messagesIngested(), msgs.size());
  EXPECT_EQ(daemon.renderReport(), ref.report);
  daemon.stop();
}

TEST(NetDaemonE2E, ZeroMessageStreamFinishesCleanly) {
  trace::VarTable vars;
  vars.intern("x", 0);
  const Handshake h = makeHandshake(2, "", {"x"}, vars);

  ObserverDaemon daemon(quietDaemon());
  ASSERT_TRUE(daemon.start());
  {
    Socket client = rawClient(daemon.port());
    sendFrame(client, FrameType::kHandshake, encodeHandshake(h));
    sendFrame(client, FrameType::kEndOfTrace, {});
    client.shutdownWrite();
  }
  ASSERT_TRUE(daemon.waitFinished(5000ms)) << daemon.streamError();
  EXPECT_TRUE(daemon.violations().empty());
  EXPECT_NE(daemon.renderReport().find("analysis complete"),
            std::string::npos);
  EXPECT_EQ(daemon.connectionsAborted(), 0u);
  daemon.stop();
}

TEST(NetDaemonE2E, RandomBytesNeverTakeTheDaemonDown) {
  const auto c = landingComputation();
  const char* spec = program::corpus::landingProperty();
  const Reference ref = inProcess(c, spec);

  ObserverDaemon daemon(quietDaemon());
  ASSERT_TRUE(daemon.start());

  // Garbage first: 4 KiB of bytes that are neither frames nor HTTP.
  {
    Socket garbage = rawClient(daemon.port());
    std::vector<std::uint8_t> junk(4096);
    std::uint64_t x = 0x9e3779b97f4a7c15ull;  // deterministic splitmix-ish
    for (auto& b : junk) {
      x ^= x >> 12;
      x ^= x << 25;
      x ^= x >> 27;
      b = static_cast<std::uint8_t>(x * 0x2545f4914f6cdd1dull >> 56);
    }
    junk[0] = 0xAB;  // definitely not the magic, not "GET"/"HEAD"
    garbage.sendAll(junk.data(), junk.size());
    garbage.close();
  }
  ASSERT_TRUE(eventually([&] { return daemon.connectionsRejected() >= 1; }));
  EXPECT_FALSE(daemon.handshaken());

  // A mid-frame truncation (valid prefix, then death) must not stick either.
  {
    const Handshake h = handshakeFor(c, spec, {"landing", "approved", "radio"});
    Socket truncated = rawClient(daemon.port());
    std::vector<std::uint8_t> bytes;
    appendFrame(bytes, FrameType::kHandshake, encodeHandshake(h));
    truncated.sendAll(bytes.data(), bytes.size() / 2);
    truncated.close();
  }
  ASSERT_TRUE(eventually([&] { return daemon.connectionsRejected() >= 2; }));

  // ...and a clean client still gets a full, correct analysis.
  {
    SocketEmitter emitter(emitterTo(
        daemon.port(),
        handshakeFor(c, spec, {"landing", "approved", "radio"})));
    for (const auto& m : messagesInOrder(c.graph)) emitter.onMessage(m);
    emitter.close();
  }
  ASSERT_TRUE(daemon.waitFinished(10000ms)) << daemon.streamError();
  EXPECT_EQ(daemon.renderReport(), ref.report);
  daemon.stop();
}

TEST(NetDaemonE2E, HttpProbeGetsStatusPage) {
  ObserverDaemon daemon(quietDaemon());
  ASSERT_TRUE(daemon.start());
  Socket probe = rawClient(daemon.port());
  const std::string req = "GET / HTTP/1.0\r\n\r\n";
  ASSERT_TRUE(probe.sendAll(req.data(), req.size()));
  std::string response;
  char buf[4096];
  std::ptrdiff_t n;
  while ((n = probe.recvSome(buf, sizeof buf)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("mpx_observerd status"), std::string::npos);
  EXPECT_NE(response.find("handshaken: no"), std::string::npos);
  daemon.stop();
}

TEST(NetDaemonE2E, ProtocolViolationsAreRejectedNotFatal) {
  trace::VarTable vars;
  vars.intern("x", 0);
  const Handshake h = makeHandshake(2, "", {"x"}, vars);

  ObserverDaemon daemon(quietDaemon());
  ASSERT_TRUE(daemon.start());

  {
    // Events before handshake.
    trace::Message m;
    m.event.thread = 0;
    m.clock.set(0, 1);
    Socket s = rawClient(daemon.port());
    sendFrame(s, FrameType::kEvents, eventsPayload({m}));
    s.shutdownWrite();
  }
  ASSERT_TRUE(eventually([&] { return daemon.connectionsRejected() >= 1; }));

  {
    // Message from a thread the handshake never declared.
    trace::Message m;
    m.event.thread = 9;
    m.clock.set(9, 1);
    Socket s = rawClient(daemon.port());
    sendFrame(s, FrameType::kHandshake, encodeHandshake(h));
    sendFrame(s, FrameType::kEvents, eventsPayload({m}));
    s.shutdownWrite();
  }
  ASSERT_TRUE(eventually([&] { return daemon.connectionsAborted() >= 1; }));

  // The daemon is still healthy: a clean zero-message stream finishes.
  {
    Socket s = rawClient(daemon.port());
    sendFrame(s, FrameType::kHandshake, encodeHandshake(h));
    sendFrame(s, FrameType::kEndOfTrace, {});
    s.shutdownWrite();
  }
  ASSERT_TRUE(daemon.waitFinished(5000ms)) << daemon.streamError();
  daemon.stop();
}

TEST(NetDaemonE2E, MultiSpecHandshakeRunsKPlugins) {
  // Wire protocol v2: the handshake carries a LIST of specs and the daemon
  // runs one SpecAnalysis plugin per spec on its shared bus.  Reference:
  // the same K plugins driven in-process over the same messages.
  const auto c = landingComputation();
  const std::vector<std::string> specs{
      program::corpus::landingProperty(), "!(landing = 1 && radio = 0)"};

  std::vector<std::string> refTexts;
  {
    std::vector<std::unique_ptr<logic::SpecAnalysis>> plugins;
    std::vector<observer::Analysis*> raw;
    for (const auto& spec : specs) {
      plugins.push_back(std::make_unique<logic::SpecAnalysis>(
          c.space, logic::SpecParser(c.space).parse(spec), spec));
      raw.push_back(plugins.back().get());
    }
    observer::AnalysisBus bus(raw);
    observer::OnlineAnalyzer a(c.space, c.prog.threadCount(), bus,
                               observer::LatticeOptions{});
    for (const auto& m : messagesInOrder(c.graph)) a.onMessage(m);
    a.endOfTrace();
    ASSERT_TRUE(a.finished());
    for (const auto& r : bus.reports()) refTexts.push_back(r.text);
  }

  ObserverDaemon daemon(quietDaemon());
  ASSERT_TRUE(daemon.start());
  {
    SocketEmitter emitter(emitterTo(
        daemon.port(),
        makeHandshake(static_cast<std::uint32_t>(c.prog.threadCount()), specs,
                      {"landing", "approved", "radio"}, c.prog.vars)));
    for (const auto& m : messagesInOrder(c.graph)) emitter.onMessage(m);
    emitter.close();
  }
  ASSERT_TRUE(daemon.waitFinished(10000ms)) << daemon.streamError();

  EXPECT_EQ(daemon.specs(), specs);
  const auto reports = daemon.analysisReports();
  ASSERT_EQ(reports.size(), specs.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(reports[i].name, "ptltl: " + specs[i]);
    EXPECT_EQ(reports[i].text, refTexts[i]) << specs[i];
    EXPECT_GT(reports[i].violationCount, 0u) << specs[i];
  }
  daemon.stop();
}

TEST(NetDaemonE2E, DaemonSidePropertyJoinsHandshakeSpecs) {
  // mpx_observerd --property adds daemon-side specs; duplicates of
  // handshake specs are ignored.
  const auto c = landingComputation();
  const std::string fromClient = program::corpus::landingProperty();
  const std::string fromDaemon = "!(landing = 1 && radio = 0)";

  DaemonOptions opts = quietDaemon();
  opts.extraSpecs = {fromDaemon, fromClient};  // second one is a duplicate
  ObserverDaemon daemon(opts);
  ASSERT_TRUE(daemon.start());
  {
    SocketEmitter emitter(emitterTo(
        daemon.port(),
        makeHandshake(static_cast<std::uint32_t>(c.prog.threadCount()),
                      fromClient, {"landing", "approved", "radio"},
                      c.prog.vars)));
    for (const auto& m : messagesInOrder(c.graph)) emitter.onMessage(m);
    emitter.close();
  }
  ASSERT_TRUE(daemon.waitFinished(10000ms)) << daemon.streamError();

  EXPECT_EQ(daemon.specs(),
            (std::vector<std::string>{fromClient, fromDaemon}));
  const auto reports = daemon.analysisReports();
  ASSERT_EQ(reports.size(), 2u);
  // The daemon never sees observed states — only MVC messages.
  for (const auto& r : reports) {
    EXPECT_NE(r.text.find("observed run: (not monitored)"), std::string::npos)
        << r.name;
  }
  daemon.stop();
}

// --- trace-context propagation (wire v3): lag, watermark, introspection ---

std::vector<std::uint8_t> eventsTsPayload(
    const std::vector<trace::Message>& ms, std::uint64_t sendNs) {
  std::vector<std::uint8_t> payload(kEventsTsPrefixSize);
  for (std::size_t i = 0; i < kEventsTsPrefixSize; ++i) {
    payload[i] = static_cast<std::uint8_t>(sendNs >> (8 * i));
  }
  for (const trace::Message& m : ms) trace::BinaryCodec::encode(m, payload);
  return payload;
}

std::string httpGet(std::uint16_t port, const std::string& path) {
  Socket probe = rawClient(port);
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_TRUE(probe.sendAll(req.data(), req.size()));
  std::string response;
  char buf[4096];
  std::ptrdiff_t n;
  while ((n = probe.recvSome(buf, sizeof buf)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  return response;
}

TEST(NetDaemonE2E, AllWireVersionsMatchInProcess) {
  // The default emitter now speaks v4 (kEventsSparse); v2 (kEvents) and v3
  // (kEventsTs) peers carrying the identical messages must still yield a
  // byte-identical report — timestamps and clock coding are transport
  // concerns, never analysis input.
  const auto c = landingComputation();
  const char* spec = program::corpus::landingProperty();
  const Reference ref = inProcess(c, spec);
  const auto msgs = messagesInOrder(c.graph);

  for (const std::uint16_t version :
       {kListSpecProtocolVersion, kTraceContextProtocolVersion,
        kSparseClockProtocolVersion, kMultiTenantProtocolVersion,
        kRegionProtocolVersion}) {
    ObserverDaemon daemon(quietDaemon());
    ASSERT_TRUE(daemon.start());
    Handshake h = handshakeFor(c, spec, {"landing", "approved", "radio"});
    h.version = version;
    {
      SocketEmitter emitter(emitterTo(daemon.port(), h));
      for (const auto& m : msgs) emitter.onMessage(m);
      emitter.close();
    }
    ASSERT_TRUE(daemon.waitFinished(10000ms)) << daemon.streamError();
    EXPECT_EQ(daemon.renderReport(), ref.report) << "version " << version;

    // v3+ streams register under their stream id with measured lag; v2
    // streams aggregate under the legacy id 0 with no lag samples.
    const auto streams = daemon.streamSnapshots();
    ASSERT_EQ(streams.size(), 1u) << "version " << version;
    const StreamSnapshot& s = streams[0];
    EXPECT_EQ(s.version, version);
    EXPECT_EQ(s.messages, msgs.size());
    EXPECT_TRUE(s.ended);
    EXPECT_EQ(s.framesInFlight, 0u);
    if (version >= kTraceContextProtocolVersion) {
      EXPECT_NE(s.streamId, 0u);
      EXPECT_GE(s.receiveLag.count, 1u);
      EXPECT_GE(s.analyzeLag.count, 1u);
    } else {
      EXPECT_EQ(s.streamId, 0u);
      EXPECT_EQ(s.receiveLag.count, 0u);
      EXPECT_EQ(s.analyzeLag.count, 0u);
    }
    daemon.stop();
  }
}

TEST(NetDaemonE2E, WatermarkAdvancesMonotonicallyToFinalLevelCount) {
  // Feed the trace one kEventsTs frame per message and require the
  // progress watermark to (a) never regress and (b) land exactly on the
  // final level count - 1 (levels are the lattice's 0-based frontier
  // sequence; "fully analyzed" = last level).
  const auto c = xyzComputation();
  const char* spec = program::corpus::xyzProperty();
  const auto msgs = messagesInOrder(c.graph);

  ObserverDaemon daemon(quietDaemon());
  ASSERT_TRUE(daemon.start());
  Handshake h = handshakeFor(c, spec, {"x", "y", "z"});
  h.streamId = 0x51;

  Socket client = rawClient(daemon.port());
  sendFrame(client, FrameType::kHandshake, encodeHandshake(h));
  std::uint64_t lastWatermark = 0;
  std::uint64_t fed = 0;
  for (const auto& m : msgs) {
    sendFrame(client, FrameType::kEventsTs,
              eventsTsPayload({m}, /*sendNs=*/1000 + fed));
    ++fed;
    // Wait until the daemon has ingested this frame, then sample.
    ASSERT_TRUE(eventually([&] { return daemon.messagesIngested() >= fed; }));
    const std::uint64_t w = daemon.watermarkLevel();
    EXPECT_GE(w, lastWatermark) << "watermark regressed at message " << fed;
    lastWatermark = w;
  }
  sendFrame(client, FrameType::kEndOfTrace, {});
  client.shutdownWrite();
  ASSERT_TRUE(daemon.waitFinished(10000ms)) << daemon.streamError();

  EXPECT_EQ(daemon.watermarkLevel(),
            static_cast<std::uint64_t>(daemon.stats().levels) - 1);
  const auto streams = daemon.streamSnapshots();
  ASSERT_EQ(streams.size(), 1u);
  EXPECT_EQ(streams[0].streamId, 0x51u);
  EXPECT_EQ(streams[0].framesInFlight, 0u)
      << "every timestamped frame must settle by end of trace";
  EXPECT_EQ(streams[0].frames, msgs.size());
  EXPECT_EQ(streams[0].receiveLag.count, msgs.size());
  EXPECT_EQ(streams[0].analyzeLag.count, msgs.size());
  daemon.stop();
}

TEST(NetDaemonE2E, StreamsEndpointMatchesDaemonAccessors) {
  const auto c = landingComputation();
  const char* spec = program::corpus::landingProperty();
  ObserverDaemon daemon(quietDaemon());
  ASSERT_TRUE(daemon.start());
  {
    SocketEmitter emitter(emitterTo(
        daemon.port(),
        handshakeFor(c, spec, {"landing", "approved", "radio"})));
    for (const auto& m : messagesInOrder(c.graph)) emitter.onMessage(m);
    emitter.close();
  }
  ASSERT_TRUE(daemon.waitFinished(10000ms)) << daemon.streamError();

  const std::string response = httpGet(daemon.port(), "/streams");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  // The endpoint body is exactly the daemon's own renderer, which must
  // agree with the structured accessors.
  const std::size_t body = response.find("\r\n\r\n");
  ASSERT_NE(body, std::string::npos);
  EXPECT_EQ(response.substr(body + 4), daemon.renderStreamsJson());

  const auto streams = daemon.streamSnapshots();
  ASSERT_EQ(streams.size(), 1u);
  const std::string expectLevels =
      "\"levels\": " + std::to_string(daemon.stats().levels);
  const std::string expectWatermark =
      "\"watermark_level\": " + std::to_string(daemon.watermarkLevel());
  const std::string expectMessages =
      "\"messages\": " + std::to_string(streams[0].messages);
  EXPECT_NE(response.find(expectLevels), std::string::npos) << response;
  EXPECT_NE(response.find(expectWatermark), std::string::npos) << response;
  EXPECT_NE(response.find(expectMessages), std::string::npos) << response;
  daemon.stop();
}

TEST(NetDaemonE2E, IntrospectionEndpointsServeHealthMetricsAndReport) {
  ObserverDaemon daemon(quietDaemon());
  ASSERT_TRUE(daemon.start());

  const std::string health = httpGet(daemon.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  const std::string metrics = httpGet(daemon.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.0 200 OK"), std::string::npos);
  if (telemetry::kEnabled) {
    EXPECT_NE(metrics.find("mpx_pipeline_watermark_level"),
              std::string::npos);
    EXPECT_NE(metrics.find("# TYPE mpx_pipeline_receive_lag_ns histogram"),
              std::string::npos);
  }

  const std::string report = httpGet(daemon.port(), "/report");
  EXPECT_NE(report.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(report.find("INCOMPLETE"), std::string::npos);

  const std::string flight = httpGet(daemon.port(), "/flightrecorder");
  EXPECT_NE(flight.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(flight.find("\"recorded\""), std::string::npos);
  EXPECT_NE(flight.find("conn_accepted"), std::string::npos);

  const std::string missing = httpGet(daemon.port(), "/no-such-endpoint");
  EXPECT_NE(missing.find("HTTP/1.0 404 Not Found"), std::string::npos);
  daemon.stop();
}

// ===================================================================
// Wire v6: region events + daemon-side analyses (ISSUE 10).
// ===================================================================

/// The atomicity demo's messages (region markers included) under the
/// canonical violating interleaving, in delivered order.
std::vector<trace::Message> atomicityDemoMessages(
    const program::Program& prog) {
  program::FixedScheduler sched(
      program::corpus::atomicityDemoViolatingSchedule());
  program::Executor ex(prog, sched);
  analysis::EngineConfig ec;
  ec.extraTrackedVars = {"acct", "audit"};
  const analysis::Engine engine(prog, ec);
  return messagesInOrder(engine.run(ex.run()).causality);
}

TEST(NetDaemonE2E, WireV6RegionStreamFeedsDaemonSideAnalyses) {
  const program::Program prog = program::corpus::atomicityDemo();
  const auto msgs = atomicityDemoMessages(prog);
  ASSERT_TRUE(std::any_of(msgs.begin(), msgs.end(), [](const auto& m) {
    return trace::isRegionMarker(m.event.kind);
  }));

  DaemonOptions opts = quietDaemon();
  opts.analyses = {"atomicity", "mhp"};
  ObserverDaemon daemon(opts);
  ASSERT_TRUE(daemon.start());

  Handshake h = makeHandshake(
      static_cast<std::uint32_t>(prog.threadCount()), "", {"acct", "audit"},
      prog.vars);
  {
    SocketEmitter emitter(emitterTo(daemon.port(), h));
    for (const auto& m : msgs) emitter.onMessage(m);
    emitter.close();
  }
  ASSERT_TRUE(daemon.waitFinished(10000ms)) << daemon.streamError();

  // The daemon-side plugins analyzed the socket-fed regions: the demo's
  // region is reported with its witness cycle.
  const auto reports = daemon.analysisReports();
  std::string atomText;
  std::string mhpText;
  for (const auto& r : reports) {
    if (r.kind == "atomicity") atomText = r.text;
    if (r.kind == "mhp") mhpText = r.text;
  }
  EXPECT_NE(atomText.find("violations=1"), std::string::npos) << atomText;
  EXPECT_NE(atomText.find("region T1#1 r1: cycle"), std::string::npos)
      << atomText;
  EXPECT_NE(mhpText.find("never-concurrent-pairs="), std::string::npos)
      << mhpText;
  daemon.stop();
}

TEST(NetDaemonE2E, PreV6PeerSendingRegionEventsIsDropped) {
  const program::Program prog = program::corpus::atomicityDemo();
  const auto msgs = atomicityDemoMessages(prog);

  DaemonOptions opts = quietDaemon();
  opts.analyses = {"atomicity"};
  ObserverDaemon daemon(opts);
  ASSERT_TRUE(daemon.start());

  Handshake h = makeHandshake(
      static_cast<std::uint32_t>(prog.threadCount()), "", {"acct", "audit"},
      prog.vars);

  {
    // A v5 peer has no business emitting region kinds: the codec decodes
    // them (one shared grammar), but the daemon drops the connection at
    // the capability gate instead of feeding the analyses.
    Handshake old = h;
    old.version = kMultiTenantProtocolVersion;
    Socket s = rawClient(daemon.port());
    sendFrame(s, FrameType::kHandshake, encodeHandshake(old));
    sendFrame(s, FrameType::kEvents, eventsPayload(msgs));
    s.shutdownWrite();
  }
  ASSERT_TRUE(eventually([&] { return daemon.connectionsAborted() >= 1; }));

  // The daemon survived, and a v6 peer replaying the same stream (regions
  // and all) completes the analysis.
  {
    SocketEmitter emitter(emitterTo(daemon.port(), h));
    for (const auto& m : msgs) emitter.onMessage(m);
    emitter.close();
  }
  ASSERT_TRUE(daemon.waitFinished(10000ms)) << daemon.streamError();
  const auto reports = daemon.analysisReports();
  std::string atomText;
  for (const auto& r : reports) {
    if (r.kind == "atomicity") atomText = r.text;
  }
  EXPECT_NE(atomText.find("violations=1"), std::string::npos) << atomText;
  daemon.stop();
}

}  // namespace
}  // namespace mpx::net
