// SocketEmitter transport behavior against a raw in-test server: framing,
// lossless blocking backpressure, drop accounting when no daemon exists,
// reconnect-with-handshake-resend, and close() idempotence.
#include "net/emitter.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "net/socket.hpp"
#include "net/wire.hpp"
#include "trace/codec.hpp"
#include "trace/var_table.hpp"

namespace mpx::net {
namespace {

using namespace std::chrono_literals;

trace::Message sampleMessage(ThreadId t, LocalSeq k) {
  trace::Message m;
  m.event.kind = trace::EventKind::kWrite;
  m.event.thread = t;
  m.event.var = 0;
  m.event.value = static_cast<Value>(k);
  m.event.localSeq = k;
  m.clock.set(t, k);
  return m;
}

Handshake testHandshake() {
  trace::VarTable vars;
  vars.intern("x", 0);
  return makeHandshake(2, "", {"x"}, vars);
}

EmitterOptions fastOptions(std::uint16_t port) {
  EmitterOptions o;
  o.port = port;
  o.handshake = testHandshake();
  o.reconnectBase = 1ms;
  o.reconnectMax = 10ms;
  return o;
}

/// Reads frames from `s` until EOF (or corruption, which fails the test).
std::vector<Frame> readAllFrames(Socket& s) {
  FrameReader reader;
  std::vector<Frame> frames;
  std::uint8_t buf[4096];
  for (;;) {
    const std::ptrdiff_t n = s.recvSome(buf, sizeof buf);
    if (n <= 0) break;
    reader.feed(buf, static_cast<std::size_t>(n));
    Frame f;
    FrameReader::Status st;
    while ((st = reader.next(f)) == FrameReader::Status::kFrame) {
      frames.push_back(f);
    }
    EXPECT_NE(st, FrameReader::Status::kCorrupt) << reader.error();
  }
  return frames;
}

std::vector<trace::Message> messagesIn(const std::vector<Frame>& frames) {
  std::vector<trace::Message> out;
  for (const Frame& f : frames) {
    const char* error = nullptr;
    if (f.type == FrameType::kEvents) {
      EXPECT_TRUE(decodeEventsPayload(f.payload, out, &error)) << error;
    } else if (f.type == FrameType::kEventsTs) {
      // v3 emitters timestamp each batch; the messages are unchanged.
      std::uint64_t sendNs = 0;
      EXPECT_TRUE(decodeEventsTsPayload(f.payload, sendNs, out, &error))
          << error;
      EXPECT_GT(sendNs, 0u);
    } else if (f.type == FrameType::kEventsSparse) {
      // v4 emitters additionally sparse-code the clocks; decode yields the
      // same full-clock messages.
      std::uint64_t sendNs = 0;
      EXPECT_TRUE(decodeEventsSparsePayload(f.payload, sendNs, out, &error))
          << error;
      EXPECT_GT(sendNs, 0u);
    }
  }
  return out;
}

TEST(NetEmitter, StreamsHandshakeEventsAndEndOfTrace) {
  Listener server;
  ASSERT_TRUE(server.open(0));
  std::vector<Frame> frames;
  std::thread srv([&] {
    Socket c = server.accept();
    ASSERT_TRUE(c.valid());
    frames = readAllFrames(c);
  });

  std::vector<trace::Message> sent;
  {
    SocketEmitter emitter(fastOptions(server.port()));
    for (LocalSeq k = 1; k <= 5; ++k) {
      sent.push_back(sampleMessage(0, k));
      emitter.onMessage(sent.back());
    }
    emitter.close();
    EXPECT_EQ(emitter.droppedMessages(), 0u);
    EXPECT_FALSE(emitter.failed());
  }
  srv.join();

  ASSERT_GE(frames.size(), 3u);
  EXPECT_EQ(frames.front().type, FrameType::kHandshake);
  Handshake h;
  const char* error = nullptr;
  ASSERT_TRUE(decodeHandshake(frames.front().payload, h, &error)) << error;
  EXPECT_EQ(h.threads, 2u);
  EXPECT_EQ(h.version, kProtocolVersion);
  EXPECT_NE(h.streamId, 0u) << "v3 emitter must mint a stream id";
  EXPECT_GT(h.handshakeSendNs, 0u);
  EXPECT_EQ(frames.back().type, FrameType::kEndOfTrace);
  EXPECT_EQ(messagesIn(frames), sent);
}

TEST(NetEmitter, BlockingBackpressureIsLossless) {
  Listener server;
  ASSERT_TRUE(server.open(0));
  std::vector<Frame> frames;
  std::thread srv([&] {
    Socket c = server.accept();
    ASSERT_TRUE(c.valid());
    frames = readAllFrames(c);
  });

  EmitterOptions opts = fastOptions(server.port());
  opts.queueCapacity = 2;  // producers must stall, never lose
  opts.maxBatch = 1;
  SocketEmitter emitter(opts);
  constexpr int kMessages = 200;
  for (LocalSeq k = 1; k <= kMessages; ++k) {
    emitter.onMessage(sampleMessage(0, k));
  }
  emitter.close();
  srv.join();

  EXPECT_EQ(emitter.droppedMessages(), 0u);
  EXPECT_EQ(messagesIn(frames).size(), static_cast<std::size_t>(kMessages));
}

TEST(NetEmitter, CountsEveryDropWhenNoDaemonExists) {
  // Grab an ephemeral port nothing listens on.
  std::uint16_t deadPort;
  {
    Listener probe;
    ASSERT_TRUE(probe.open(0));
    deadPort = probe.port();
  }
  EmitterOptions opts = fastOptions(deadPort);
  opts.maxReconnectAttempts = 2;
  SocketEmitter emitter(opts);
  constexpr int kMessages = 32;
  for (LocalSeq k = 1; k <= kMessages; ++k) {
    emitter.onMessage(sampleMessage(0, k));
  }
  emitter.close();

  EXPECT_TRUE(emitter.failed());
  EXPECT_EQ(emitter.droppedMessages(), static_cast<std::uint64_t>(kMessages));
}

TEST(NetEmitter, DoubleCloseIsIdempotent) {
  Listener server;
  ASSERT_TRUE(server.open(0));
  std::thread srv([&] {
    Socket c = server.accept();
    if (c.valid()) readAllFrames(c);
  });
  SocketEmitter emitter(fastOptions(server.port()));
  emitter.onMessage(sampleMessage(0, 1));
  emitter.close();
  emitter.close();  // no-op
  const std::uint64_t framesAfterFirstClose = emitter.framesSent();
  emitter.onMessage(sampleMessage(0, 2));  // dropped, not queued
  emitter.close();
  EXPECT_EQ(emitter.framesSent(), framesAfterFirstClose);
  EXPECT_EQ(emitter.droppedMessages(), 1u);
  srv.join();
}

TEST(NetEmitter, ReconnectResendsHandshake) {
  Listener server;
  ASSERT_TRUE(server.open(0));
  std::atomic<bool> firstConnDone{false};
  std::vector<Frame> secondConnFrames;
  std::thread srv([&] {
    {
      // First connection: read the handshake plus one events frame, then
      // hang up mid-stream.
      Socket c = server.accept();
      ASSERT_TRUE(c.valid());
      FrameReader reader;
      std::uint8_t buf[4096];
      std::size_t got = 0;
      while (got < 2) {
        const std::ptrdiff_t n = c.recvSome(buf, sizeof buf);
        ASSERT_GT(n, 0);
        reader.feed(buf, static_cast<std::size_t>(n));
        Frame f;
        while (reader.next(f) == FrameReader::Status::kFrame) ++got;
      }
    }  // closes the socket
    firstConnDone = true;
    Socket c = server.accept();
    ASSERT_TRUE(c.valid());
    secondConnFrames = readAllFrames(c);
  });

  EmitterOptions opts = fastOptions(server.port());
  opts.maxBatch = 1;
  SocketEmitter emitter(opts);
  emitter.onMessage(sampleMessage(0, 1));
  while (!firstConnDone) std::this_thread::sleep_for(1ms);
  // Keep emitting until a send trips over the dead socket and the emitter
  // re-establishes the stream (handshake first) on a fresh connection.
  LocalSeq k = 2;
  while (emitter.reconnects() == 0 && k < 2000) {
    emitter.onMessage(sampleMessage(0, k++));
    std::this_thread::sleep_for(1ms);
  }
  emitter.close();
  srv.join();

  EXPECT_GE(emitter.reconnects(), 1u);
  ASSERT_FALSE(secondConnFrames.empty());
  EXPECT_EQ(secondConnFrames.front().type, FrameType::kHandshake);
  EXPECT_EQ(secondConnFrames.back().type, FrameType::kEndOfTrace);
}

}  // namespace
}  // namespace mpx::net
