// libFuzzer target: SparseClockCodec::tryDecode + re-encode fixpoint +
// decodeEventsSparsePayload over arbitrary bytes.  Build with
// -DMPX_BUILD_FUZZERS=ON (clang only).
#include "fuzz_harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  mpx::testing::fuzz::driveSparseClock(data, size);
  return 0;
}
