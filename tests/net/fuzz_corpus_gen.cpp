// Writes the seed corpus for the wire-layer fuzz targets:
//
//   fuzz_corpus_gen <dir>
//
// creates <dir>/{frame_reader,codec,handshake,sparse_clock,snapshot}/
// seed-*.bin with valid encodings (a whole frame stream, an events batch,
// v1 + v2 handshakes, a sparse-coded v4 message stream, an epoch snapshot
// file) plus a few deterministic mutations of each.  The checked-in corpus under
// tests/net/corpus/ was produced by this tool; CI regenerates and uploads
// it so fuzz runs always start from live-format seeds.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz_harness.hpp"

namespace {

void writeSeed(const std::filesystem::path& dir, const std::string& name,
               const std::vector<std::uint8_t>& bytes) {
  std::ofstream os(dir / name, std::ios::binary);
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
}

void writeFamily(const std::filesystem::path& root, const std::string& family,
                 const std::vector<std::vector<std::uint8_t>>& seeds) {
  const std::filesystem::path dir = root / family;
  std::filesystem::create_directories(dir);
  std::size_t n = 0;
  for (const auto& s : seeds) {
    writeSeed(dir, "seed-" + std::to_string(n) + ".bin", s);
    // Two deterministic mutations per seed widen initial coverage.
    writeSeed(dir, "seed-" + std::to_string(n + 1) + ".bin",
              mpx::testing::fuzz::mutateSeed(s, 0x5eedu + n + 1));
    writeSeed(dir, "seed-" + std::to_string(n + 2) + ".bin",
              mpx::testing::fuzz::mutateSeed(s, 0xf00du + n + 2));
    n += 3;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir>\n", argv[0]);
    return 2;
  }
  namespace fuzz = mpx::testing::fuzz;
  const std::filesystem::path root = argv[1];
  writeFamily(root, "frame_reader", {fuzz::seedFrameStream()});
  writeFamily(root, "codec",
              {fuzz::seedEventsPayload(), fuzz::seedRegionEventsPayload()});
  // Named regressions (exact bytes pinned forever): hostile region-marker
  // shapes the wire v6 extension introduced.
  writeSeed(root / "codec", "region-begin-without-end.bin",
            fuzz::seedRegionBeginWithoutEnd());
  writeSeed(root / "codec", "region-hostile-id.bin",
            fuzz::seedRegionHostileId());
  writeFamily(root, "handshake",
              {fuzz::seedHandshakePayload(mpx::net::kProtocolVersion),
               fuzz::seedHandshakePayload(mpx::net::kLegacyProtocolVersion)});
  writeFamily(root, "sparse_clock", {fuzz::seedSparseEventsPayload()});
  writeFamily(root, "snapshot", {fuzz::seedSnapshotBytes()});
  std::printf("corpus written to %s\n", root.string().c_str());
  return 0;
}
