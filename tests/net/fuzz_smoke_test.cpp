// Deterministic tier-1 stand-in for the CI fuzz job: replays the seed
// corpus inputs and thousands of seeded mutations of them through the
// exact fuzz drivers the libFuzzer targets use (fuzz_harness.hpp).  The
// container toolchain has no libFuzzer (gcc only), so this smoke keeps the
// drivers and their invariants exercised on every build; the clang fuzz
// targets run the same code open-endedly in CI.
//
// Any crash CI fuzzing finds lands here as a named regression input.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "fuzz_harness.hpp"

namespace mpx::testing::fuzz {
namespace {

using Driver = void (*)(const std::uint8_t*, std::size_t);

void sweep(Driver drive, const std::vector<std::uint8_t>& seed,
           std::uint64_t mutations, std::uint64_t salt) {
  drive(seed.data(), seed.size());
  // Every prefix: incremental parsers must treat truncation as kNeedMore,
  // never as UB.
  for (std::size_t n = 0; n <= seed.size(); ++n) {
    drive(seed.data(), n);
  }
  for (std::uint64_t s = 1; s <= mutations; ++s) {
    const std::vector<std::uint8_t> m = mutateSeed(seed, salt ^ s);
    drive(m.data(), m.size());
  }
  // Pure junk, no valid structure at all.
  std::mt19937_64 rng(salt * 31 + 7);
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> junk(rng() % 300);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    drive(junk.data(), junk.size());
  }
}

TEST(FuzzSmoke, FrameReader) {
  sweep(&driveFrameReader, seedFrameStream(), 3000, 0xA11CE);
}

TEST(FuzzSmoke, Codec) { sweep(&driveCodec, seedEventsPayload(), 3000, 0xB0B); }

TEST(FuzzSmoke, CodecRegionEvents) {
  sweep(&driveCodec, seedRegionEventsPayload(), 3000, 0x4E6104);
}

TEST(FuzzSmoke, HandshakeV2) {
  sweep(&driveHandshake, seedHandshakePayload(net::kProtocolVersion), 3000,
        0xC0FFEE);
}

TEST(FuzzSmoke, HandshakeV1) {
  sweep(&driveHandshake, seedHandshakePayload(net::kLegacyProtocolVersion),
        3000, 0xDECAF);
}

TEST(FuzzSmoke, SparseClock) {
  sweep(&driveSparseClock, seedSparseEventsPayload(), 3000, 0x5BA45E);
}

TEST(FuzzSmoke, Snapshot) {
  sweep(&driveSnapshot, seedSnapshotBytes(), 3000, 0x5EA15);
}

TEST(FuzzSmoke, SnapshotValidSeedIsAcceptedAndCanonical) {
  // The unmutated seed must pass the decoder and satisfy the driver's
  // byte-identical re-encode invariant (the sweep above mostly exercises
  // the reject paths, since any mutation breaks the CRC).
  const auto seed = seedSnapshotBytes();
  std::vector<net::SnapshotEntry> entries;
  const char* error = nullptr;
  ASSERT_TRUE(net::decodeSnapshot(seed.data(), seed.size(), entries, &error))
      << error;
  EXPECT_EQ(entries.size(), 3u);
  driveSnapshot(seed.data(), seed.size());
}

// Regressions: inputs that once violated a driver invariant stay pinned by
// name so the exact bytes are re-checked forever.
TEST(FuzzSmoke, RegressionHugeClockSize) {
  // A hostile clockSize word must be rejected without allocation: header
  // of a valid message with clockSize = 0xffffffff.
  std::vector<std::uint8_t> bytes;
  trace::BinaryCodec::encode(seedMessage(1), bytes);
  // clockSize lives right after kind(1)+thread(4)+var(4)+value(8)+
  // localSeq(8)+globalSeq(8) = offset 33.
  const std::uint32_t huge = 0xffffffffu;
  std::memcpy(bytes.data() + 33, &huge, 4);
  const trace::DecodeResult r =
      trace::BinaryCodec::tryDecode(bytes.data(), bytes.size());
  EXPECT_EQ(r.status, trace::DecodeStatus::kCorrupt);
  driveCodec(bytes.data(), bytes.size());
}

TEST(FuzzSmoke, RegressionTrailingZeroClockComponents) {
  // Found by the mutation sweep: a wire clock with TRAILING ZERO components
  // decodes to a logically equal but shorter clock (zeros beyond the stored
  // size are implicit — vector_clock.hpp), so the canonical re-encode is
  // shorter than the consumed bytes.  The codec accepts the non-canonical
  // form by design; the driver checks the semantic round trip instead of
  // byte identity.  Pin the exact shape: clock (1, 3, 0).
  trace::Message m = seedMessage(1);
  m.clock = vc::VectorClock(3);
  m.clock.set(0, 1);
  m.clock.set(1, 3);
  std::vector<std::uint8_t> bytes;
  trace::BinaryCodec::encode(m, bytes);
  const trace::DecodeResult r =
      trace::BinaryCodec::tryDecode(bytes.data(), bytes.size());
  ASSERT_EQ(r.status, trace::DecodeStatus::kOk);
  EXPECT_EQ(r.consumed, bytes.size());
  EXPECT_EQ(r.message.clock, m.clock);
  driveCodec(bytes.data(), bytes.size());
}

TEST(FuzzSmoke, RegressionPayloadAtReaderCap) {
  // A frame whose declared payload sits exactly at the reader's cap must
  // parse; one past it must be corrupt — the driver asserts both via the
  // buffered-bytes bound.
  std::vector<std::uint8_t> atCap;
  net::appendFrame(atCap, net::FrameType::kEvents,
                   std::vector<std::uint8_t>(4096, 0));
  driveFrameReader(atCap.data(), atCap.size());
  std::vector<std::uint8_t> pastCap;
  net::appendFrame(pastCap, net::FrameType::kEvents,
                   std::vector<std::uint8_t>(4097, 0));
  driveFrameReader(pastCap.data(), pastCap.size());
}

TEST(FuzzSmoke, RegressionEmptyAndHeaderOnlyInputs) {
  driveFrameReader(nullptr, 0);
  driveCodec(nullptr, 0);
  driveHandshake(nullptr, 0);
  driveSparseClock(nullptr, 0);
  driveSnapshot(nullptr, 0);
  const std::vector<std::uint8_t> stream = seedFrameStream();
  driveFrameReader(stream.data(), net::kFrameHeaderSize);
}

TEST(FuzzSmoke, RegressionRegionBeginWithoutEnd) {
  // Pinned as tests/net/corpus/codec/region-begin-without-end.bin: a region
  // opened and never closed.  The codec is segmentation-blind — the stream
  // decodes message by message and round-trips; only the analysis layer
  // interprets open regions.
  const auto bytes = seedRegionBeginWithoutEnd();
  const trace::DecodeResult r =
      trace::BinaryCodec::tryDecode(bytes.data(), bytes.size());
  ASSERT_EQ(r.status, trace::DecodeStatus::kOk);
  EXPECT_EQ(r.message.event.kind, trace::EventKind::kRegionBegin);
  EXPECT_EQ(r.message.event.var, kNoVar);
  EXPECT_EQ(r.message.event.value, 11);
  driveCodec(bytes.data(), bytes.size());
  driveSparseClock(bytes.data(), bytes.size());
}

TEST(FuzzSmoke, RegressionRegionHostileId) {
  // Pinned as tests/net/corpus/codec/region-hostile-id.bin: extreme region
  // ids (INT64_MIN/MAX), an end with no begin, and a marker carrying a var
  // id.  All must decode and survive the round-trip invariants.
  const auto bytes = seedRegionHostileId();
  const trace::DecodeResult r =
      trace::BinaryCodec::tryDecode(bytes.data(), bytes.size());
  ASSERT_EQ(r.status, trace::DecodeStatus::kOk);
  EXPECT_EQ(r.message.event.kind, trace::EventKind::kRegionEnd);
  EXPECT_EQ(r.message.event.value, std::numeric_limits<Value>::min());
  driveCodec(bytes.data(), bytes.size());
  driveSparseClock(bytes.data(), bytes.size());
}

TEST(FuzzSmoke, RegressionKindPastRegionEnd) {
  // The kind-byte bound moved from kAtomicUpdate to kRegionEnd with wire
  // v6; one past it must stay kCorrupt in both codecs.
  std::vector<std::uint8_t> bytes;
  trace::BinaryCodec::encode(seedMessage(1), bytes);
  bytes[0] = static_cast<std::uint8_t>(trace::EventKind::kRegionEnd) + 1;
  EXPECT_EQ(trace::BinaryCodec::tryDecode(bytes.data(), bytes.size()).status,
            trace::DecodeStatus::kCorrupt);
  driveCodec(bytes.data(), bytes.size());
  bytes[0] = static_cast<std::uint8_t>(trace::EventKind::kRegionEnd);
  EXPECT_EQ(trace::BinaryCodec::tryDecode(bytes.data(), bytes.size()).status,
            trace::DecodeStatus::kOk);
}

/// A sparse-coded message header (all-zero event: kind kInternal, thread 0)
/// followed by the given mode byte and tail.
std::vector<std::uint8_t> sparseMessageWithTail(
    std::uint8_t mode, const std::vector<std::uint8_t>& tail) {
  std::vector<std::uint8_t> bytes(33, 0);  // zeroed fixed event header
  bytes.push_back(mode);
  bytes.insert(bytes.end(), tail.begin(), tail.end());
  return bytes;
}

void put32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

TEST(FuzzSmoke, RegressionSparseDeltaWithoutBase) {
  // Mode 2 (delta) as the first message of a frame has no in-frame base for
  // its thread: must be kCorrupt, never a join against stale cross-frame
  // state.  Entry list {idx 0 -> 5} is otherwise well-formed.
  std::vector<std::uint8_t> tail;
  put32(tail, 1);
  put32(tail, 0);
  put64(tail, 5);
  const auto bytes = sparseMessageWithTail(trace::SparseClockCodec::kModeDelta,
                                           tail);
  trace::SparseClockCodec::FrameState st;
  const trace::DecodeResult r =
      trace::SparseClockCodec::tryDecode(bytes.data(), bytes.size(), st);
  EXPECT_EQ(r.status, trace::DecodeStatus::kCorrupt);
  driveSparseClock(bytes.data(), bytes.size());
}

TEST(FuzzSmoke, RegressionSparseAtCapComponentCounts) {
  // Counts at and one past BinaryCodec::kMaxClockComponents: the cap itself
  // is accepted (truncated input -> kNeedMore without a giant allocation
  // up-front is fine; a full valid body would be ~768 KiB so we only probe
  // the header), one past it is rejected immediately.
  std::vector<std::uint8_t> atCap;
  put32(atCap, trace::BinaryCodec::kMaxClockComponents);
  const auto capBytes = sparseMessageWithTail(
      trace::SparseClockCodec::kModeSparse, atCap);
  trace::SparseClockCodec::FrameState st;
  EXPECT_EQ(trace::SparseClockCodec::tryDecode(capBytes.data(),
                                               capBytes.size(), st)
                .status,
            trace::DecodeStatus::kNeedMore);
  driveSparseClock(capBytes.data(), capBytes.size());

  std::vector<std::uint8_t> pastCap;
  put32(pastCap, trace::BinaryCodec::kMaxClockComponents + 1);
  const auto pastBytes = sparseMessageWithTail(
      trace::SparseClockCodec::kModeSparse, pastCap);
  st.reset();
  EXPECT_EQ(trace::SparseClockCodec::tryDecode(pastBytes.data(),
                                               pastBytes.size(), st)
                .status,
            trace::DecodeStatus::kCorrupt);
  driveSparseClock(pastBytes.data(), pastBytes.size());
}

TEST(FuzzSmoke, RegressionSparseHostileIndices) {
  // Duplicate, descending, and out-of-range component indices must all be
  // kCorrupt — the strictly-increasing rule is what makes the encoding
  // canonical and the re-encode fixpoint sound.
  const auto probe = [](std::uint32_t a, std::uint32_t b) {
    std::vector<std::uint8_t> tail;
    put32(tail, 2);
    put32(tail, a);
    put64(tail, 1);
    put32(tail, b);
    put64(tail, 1);
    const auto bytes = sparseMessageWithTail(
        trace::SparseClockCodec::kModeSparse, tail);
    trace::SparseClockCodec::FrameState st;
    const trace::DecodeResult r =
        trace::SparseClockCodec::tryDecode(bytes.data(), bytes.size(), st);
    EXPECT_EQ(r.status, trace::DecodeStatus::kCorrupt)
        << "indices " << a << "," << b;
    driveSparseClock(bytes.data(), bytes.size());
  };
  probe(4, 4);                                         // duplicate
  probe(9, 2);                                         // descending
  probe(1, trace::BinaryCodec::kMaxClockComponents);   // out of range
}

}  // namespace
}  // namespace mpx::testing::fuzz
