// Deterministic tier-1 stand-in for the CI fuzz job: replays the seed
// corpus inputs and thousands of seeded mutations of them through the
// exact fuzz drivers the libFuzzer targets use (fuzz_harness.hpp).  The
// container toolchain has no libFuzzer (gcc only), so this smoke keeps the
// drivers and their invariants exercised on every build; the clang fuzz
// targets run the same code open-endedly in CI.
//
// Any crash CI fuzzing finds lands here as a named regression input.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "fuzz_harness.hpp"

namespace mpx::testing::fuzz {
namespace {

using Driver = void (*)(const std::uint8_t*, std::size_t);

void sweep(Driver drive, const std::vector<std::uint8_t>& seed,
           std::uint64_t mutations, std::uint64_t salt) {
  drive(seed.data(), seed.size());
  // Every prefix: incremental parsers must treat truncation as kNeedMore,
  // never as UB.
  for (std::size_t n = 0; n <= seed.size(); ++n) {
    drive(seed.data(), n);
  }
  for (std::uint64_t s = 1; s <= mutations; ++s) {
    const std::vector<std::uint8_t> m = mutateSeed(seed, salt ^ s);
    drive(m.data(), m.size());
  }
  // Pure junk, no valid structure at all.
  std::mt19937_64 rng(salt * 31 + 7);
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> junk(rng() % 300);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    drive(junk.data(), junk.size());
  }
}

TEST(FuzzSmoke, FrameReader) {
  sweep(&driveFrameReader, seedFrameStream(), 3000, 0xA11CE);
}

TEST(FuzzSmoke, Codec) { sweep(&driveCodec, seedEventsPayload(), 3000, 0xB0B); }

TEST(FuzzSmoke, HandshakeV2) {
  sweep(&driveHandshake, seedHandshakePayload(net::kProtocolVersion), 3000,
        0xC0FFEE);
}

TEST(FuzzSmoke, HandshakeV1) {
  sweep(&driveHandshake, seedHandshakePayload(net::kLegacyProtocolVersion),
        3000, 0xDECAF);
}

// Regressions: inputs that once violated a driver invariant stay pinned by
// name so the exact bytes are re-checked forever.
TEST(FuzzSmoke, RegressionHugeClockSize) {
  // A hostile clockSize word must be rejected without allocation: header
  // of a valid message with clockSize = 0xffffffff.
  std::vector<std::uint8_t> bytes;
  trace::BinaryCodec::encode(seedMessage(1), bytes);
  // clockSize lives right after kind(1)+thread(4)+var(4)+value(8)+
  // localSeq(8)+globalSeq(8) = offset 33.
  const std::uint32_t huge = 0xffffffffu;
  std::memcpy(bytes.data() + 33, &huge, 4);
  const trace::DecodeResult r =
      trace::BinaryCodec::tryDecode(bytes.data(), bytes.size());
  EXPECT_EQ(r.status, trace::DecodeStatus::kCorrupt);
  driveCodec(bytes.data(), bytes.size());
}

TEST(FuzzSmoke, RegressionTrailingZeroClockComponents) {
  // Found by the mutation sweep: a wire clock with TRAILING ZERO components
  // decodes to a logically equal but shorter clock (zeros beyond the stored
  // size are implicit — vector_clock.hpp), so the canonical re-encode is
  // shorter than the consumed bytes.  The codec accepts the non-canonical
  // form by design; the driver checks the semantic round trip instead of
  // byte identity.  Pin the exact shape: clock (1, 3, 0).
  trace::Message m = seedMessage(1);
  m.clock = vc::VectorClock(3);
  m.clock.set(0, 1);
  m.clock.set(1, 3);
  std::vector<std::uint8_t> bytes;
  trace::BinaryCodec::encode(m, bytes);
  const trace::DecodeResult r =
      trace::BinaryCodec::tryDecode(bytes.data(), bytes.size());
  ASSERT_EQ(r.status, trace::DecodeStatus::kOk);
  EXPECT_EQ(r.consumed, bytes.size());
  EXPECT_EQ(r.message.clock, m.clock);
  driveCodec(bytes.data(), bytes.size());
}

TEST(FuzzSmoke, RegressionPayloadAtReaderCap) {
  // A frame whose declared payload sits exactly at the reader's cap must
  // parse; one past it must be corrupt — the driver asserts both via the
  // buffered-bytes bound.
  std::vector<std::uint8_t> atCap;
  net::appendFrame(atCap, net::FrameType::kEvents,
                   std::vector<std::uint8_t>(4096, 0));
  driveFrameReader(atCap.data(), atCap.size());
  std::vector<std::uint8_t> pastCap;
  net::appendFrame(pastCap, net::FrameType::kEvents,
                   std::vector<std::uint8_t>(4097, 0));
  driveFrameReader(pastCap.data(), pastCap.size());
}

TEST(FuzzSmoke, RegressionEmptyAndHeaderOnlyInputs) {
  driveFrameReader(nullptr, 0);
  driveCodec(nullptr, 0);
  driveHandshake(nullptr, 0);
  const std::vector<std::uint8_t> stream = seedFrameStream();
  driveFrameReader(stream.data(), net::kFrameHeaderSize);
}

}  // namespace
}  // namespace mpx::testing::fuzz
