// The framed wire protocol and the hardened decoder underneath it: frame
// round-trips under arbitrary packetization, handshake (de)serialization,
// and the non-throwing BinaryCodec::tryDecode the daemon's parser runs on.
#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "trace/codec.hpp"
#include "trace/var_table.hpp"

namespace mpx::net {
namespace {

trace::Message sampleMessage(ThreadId t, LocalSeq k) {
  trace::Message m;
  m.event.kind = trace::EventKind::kWrite;
  m.event.thread = t;
  m.event.var = 2;
  m.event.value = 40 + static_cast<Value>(k);
  m.event.localSeq = k;
  m.event.globalSeq = 7 + k;
  m.clock.set(t, k);
  m.clock.set(t + 1, 3);
  return m;
}

std::vector<std::uint8_t> eventsPayload(const std::vector<trace::Message>& ms) {
  std::vector<std::uint8_t> payload;
  for (const trace::Message& m : ms) trace::BinaryCodec::encode(m, payload);
  return payload;
}

Handshake sampleHandshake() {
  trace::VarTable vars;
  vars.intern("landing", 0);
  vars.intern("approved", 1);
  vars.intern("$lock:radio", 0, trace::VarRole::kLock);
  return makeHandshake(3, "[](landing -> approved)", {"landing", "approved"},
                       vars);
}

TEST(NetFrame, RoundTripSingleFrame) {
  const std::vector<trace::Message> msgs{sampleMessage(0, 1),
                                         sampleMessage(1, 1)};
  std::vector<std::uint8_t> bytes;
  appendFrame(bytes, FrameType::kEvents, eventsPayload(msgs));

  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  Frame f;
  ASSERT_EQ(reader.next(f), FrameReader::Status::kFrame);
  EXPECT_EQ(f.type, FrameType::kEvents);

  std::vector<trace::Message> decoded;
  const char* error = nullptr;
  ASSERT_TRUE(decodeEventsPayload(f.payload, decoded, &error)) << error;
  EXPECT_EQ(decoded, msgs);
  EXPECT_EQ(reader.next(f), FrameReader::Status::kNeedMore);
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(NetFrame, ByteByByteFeedReassemblesEveryFrame) {
  std::vector<std::uint8_t> bytes;
  appendFrame(bytes, FrameType::kHandshake, encodeHandshake(sampleHandshake()));
  appendFrame(bytes, FrameType::kEvents, eventsPayload({sampleMessage(0, 1)}));
  appendFrame(bytes, FrameType::kEndOfTrace, {});

  FrameReader reader;
  std::vector<FrameType> types;
  for (const std::uint8_t b : bytes) {
    reader.feed(&b, 1);
    Frame f;
    while (reader.next(f) == FrameReader::Status::kFrame) {
      types.push_back(f.type);
    }
  }
  ASSERT_EQ(types.size(), 3u);
  EXPECT_EQ(types[0], FrameType::kHandshake);
  EXPECT_EQ(types[1], FrameType::kEvents);
  EXPECT_EQ(types[2], FrameType::kEndOfTrace);
}

TEST(NetFrame, BadMagicIsStickyCorrupt) {
  FrameReader reader;
  const std::uint8_t junk[16] = {0xde, 0xad, 0xbe, 0xef};
  reader.feed(junk, sizeof junk);
  Frame f;
  EXPECT_EQ(reader.next(f), FrameReader::Status::kCorrupt);
  EXPECT_STREQ(reader.error(), "bad frame magic");

  // Corruption is terminal: even a subsequent valid frame is refused.
  std::vector<std::uint8_t> good;
  appendFrame(good, FrameType::kEndOfTrace, {});
  reader.feed(good.data(), good.size());
  EXPECT_EQ(reader.next(f), FrameReader::Status::kCorrupt);
}

TEST(NetFrame, UnknownTypeAndOversizedPayloadAreCorrupt) {
  {
    std::vector<std::uint8_t> bytes;
    appendFrame(bytes, static_cast<FrameType>(9), {});
    FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    Frame f;
    EXPECT_EQ(reader.next(f), FrameReader::Status::kCorrupt);
    EXPECT_STREQ(reader.error(), "unknown frame type");
  }
  {
    std::vector<std::uint8_t> bytes;
    appendFrame(bytes, FrameType::kEvents, std::vector<std::uint8_t>(64, 0));
    FrameReader reader(/*maxPayload=*/16);  // hostile length words capped
    reader.feed(bytes.data(), bytes.size());
    Frame f;
    EXPECT_EQ(reader.next(f), FrameReader::Status::kCorrupt);
    EXPECT_STREQ(reader.error(), "frame payload exceeds limit");
  }
}

TEST(NetFrame, PartialHeaderAndPayloadNeedMore) {
  std::vector<std::uint8_t> bytes;
  appendFrame(bytes, FrameType::kEvents, eventsPayload({sampleMessage(0, 1)}));
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameReader reader;
    reader.feed(bytes.data(), cut);
    Frame f;
    EXPECT_EQ(reader.next(f), FrameReader::Status::kNeedMore) << "cut " << cut;
  }
}

TEST(NetHandshake, RoundTripPreservesEverything) {
  const Handshake h = sampleHandshake();
  Handshake back;
  const char* error = nullptr;
  ASSERT_TRUE(decodeHandshake(encodeHandshake(h), back, &error)) << error;
  EXPECT_EQ(back.version, kProtocolVersion);
  EXPECT_EQ(back.threads, 3u);
  EXPECT_EQ(back.specs, h.specs);
  EXPECT_EQ(back.tracked, h.tracked);
  ASSERT_EQ(back.vars.size(), h.vars.size());
  for (VarId v = 0; v < h.vars.size(); ++v) {
    EXPECT_EQ(back.vars.name(v), h.vars.name(v));
    EXPECT_EQ(back.vars.initial(v), h.vars.initial(v));
    EXPECT_EQ(back.vars.role(v), h.vars.role(v));
  }
}

TEST(NetHandshake, MultiSpecRoundTrip) {
  trace::VarTable vars;
  vars.intern("x", 0);
  vars.intern("y", 0);
  const std::vector<std::string> specs{"x = 0", "y = 1 -> [.](x = 0)",
                                       "!(x = 1 && y = 1)"};
  const Handshake h = makeHandshake(2, specs, {"x", "y"}, vars);
  Handshake back;
  const char* error = nullptr;
  ASSERT_TRUE(decodeHandshake(encodeHandshake(h), back, &error)) << error;
  EXPECT_EQ(back.version, kProtocolVersion);
  EXPECT_EQ(back.specs, specs);
  EXPECT_EQ(back.primarySpec(), "x = 0");
}

TEST(NetHandshake, V1SingleSpecStillRoundTrips) {
  // Wire-compat: an emitter speaking protocol v1 (single spec string in
  // the spec-list position) must still be understood.
  Handshake h = sampleHandshake();
  h.version = kLegacyProtocolVersion;
  Handshake back;
  const char* error = nullptr;
  ASSERT_TRUE(decodeHandshake(encodeHandshake(h), back, &error)) << error;
  EXPECT_EQ(back.version, kLegacyProtocolVersion);
  EXPECT_EQ(back.threads, h.threads);
  ASSERT_EQ(back.specs.size(), 1u);
  EXPECT_EQ(back.specs[0], "[](landing -> approved)");
  EXPECT_EQ(back.tracked, h.tracked);
  ASSERT_EQ(back.vars.size(), h.vars.size());
}

TEST(NetHandshake, V1EmptySpecDecodesToNoProperties) {
  trace::VarTable vars;
  vars.intern("x", 0);
  Handshake h = makeHandshake(2, std::string(), {"x"}, vars);
  h.version = kLegacyProtocolVersion;
  Handshake back;
  const char* error = nullptr;
  ASSERT_TRUE(decodeHandshake(encodeHandshake(h), back, &error)) << error;
  EXPECT_TRUE(back.specs.empty());
}

TEST(NetHandshake, RejectsFutureAndZeroVersions) {
  // Versions above ours (and the nonsense version 0) are refused with a
  // stable reason; the daemon turns this into a sticky-dropped connection.
  for (const std::uint16_t v :
       {static_cast<std::uint16_t>(kProtocolVersion + 1),
        static_cast<std::uint16_t>(0x7fff), static_cast<std::uint16_t>(0)}) {
    std::vector<std::uint8_t> payload = encodeHandshake(sampleHandshake());
    payload[0] = static_cast<std::uint8_t>(v & 0xff);
    payload[1] = static_cast<std::uint8_t>(v >> 8);
    Handshake back;
    const char* error = nullptr;
    EXPECT_FALSE(decodeHandshake(payload, back, &error)) << v;
    EXPECT_STREQ(error, "unsupported protocol version");
  }
}

TEST(NetHandshake, RejectsWrongVersion) {
  std::vector<std::uint8_t> payload = encodeHandshake(sampleHandshake());
  payload[0] = 0x7f;  // version word
  Handshake back;
  const char* error = nullptr;
  EXPECT_FALSE(decodeHandshake(payload, back, &error));
  EXPECT_STREQ(error, "unsupported protocol version");
}

TEST(NetHandshake, RejectsEveryTruncation) {
  const std::vector<std::uint8_t> payload =
      encodeHandshake(sampleHandshake());
  for (std::size_t cut = 0; cut < payload.size(); ++cut) {
    std::vector<std::uint8_t> prefix(payload.begin(),
                                     payload.begin() +
                                         static_cast<std::ptrdiff_t>(cut));
    Handshake back;
    const char* error = nullptr;
    EXPECT_FALSE(decodeHandshake(prefix, back, &error)) << "cut " << cut;
    EXPECT_NE(error, nullptr);
  }
}

TEST(NetHandshake, RejectsTrailingBytes) {
  std::vector<std::uint8_t> payload = encodeHandshake(sampleHandshake());
  payload.push_back(0);
  Handshake back;
  const char* error = nullptr;
  EXPECT_FALSE(decodeHandshake(payload, back, &error));
  EXPECT_STREQ(error, "handshake has trailing bytes");
}

TEST(NetHandshake, V3CarriesTraceContext) {
  // Protocol v3 = v2 + trace context: a stream id correlating the client's
  // spans with the daemon's, and the handshake's own send timestamp.  (v4
  // keeps the same handshake layout; pin v3 to test that layer itself.)
  Handshake h = sampleHandshake();
  h.version = kTraceContextProtocolVersion;
  h.streamId = 0x0123456789abcdefull;
  h.handshakeSendNs = 42'000'000'017ull;
  Handshake back;
  const char* error = nullptr;
  ASSERT_TRUE(decodeHandshake(encodeHandshake(h), back, &error)) << error;
  EXPECT_EQ(back.version, kTraceContextProtocolVersion);
  EXPECT_EQ(back.streamId, h.streamId);
  EXPECT_EQ(back.handshakeSendNs, h.handshakeSendNs);
}

TEST(NetHandshake, PreV3PeersDecodeWithZeroTraceContext) {
  // v1/v2 payloads carry no trace context; the decoder must leave the new
  // fields zeroed (stream id 0 = "legacy aggregate" on the daemon side),
  // not reject or misparse.
  for (const std::uint16_t v :
       {kLegacyProtocolVersion, kListSpecProtocolVersion}) {
    Handshake h = sampleHandshake();
    h.version = v;
    h.streamId = 0xdeadbeefull;  // must NOT survive a pre-v3 encode
    h.handshakeSendNs = 7;
    Handshake back;
    const char* error = nullptr;
    ASSERT_TRUE(decodeHandshake(encodeHandshake(h), back, &error))
        << "version " << v << ": " << error;
    EXPECT_EQ(back.version, v);
    EXPECT_EQ(back.streamId, 0u);
    EXPECT_EQ(back.handshakeSendNs, 0u);
  }
}

TEST(NetHandshake, V5CarriesTenantRouting) {
  // Protocol v5 = v4 + multi-tenant routing: the tenant name and trace id
  // the daemon keys its analyzer sessions by.
  Handshake h = sampleHandshake();
  h.version = kMultiTenantProtocolVersion;
  h.streamId = 0x1111222233334444ull;
  h.tenant = "team-payments/checkout";
  h.traceId = 0xfeedface00c0ffeeull;
  Handshake back;
  const char* error = nullptr;
  ASSERT_TRUE(decodeHandshake(encodeHandshake(h), back, &error)) << error;
  EXPECT_EQ(back.version, kMultiTenantProtocolVersion);
  EXPECT_EQ(back.tenant, h.tenant);
  EXPECT_EQ(back.traceId, h.traceId);
  EXPECT_EQ(back.streamId, h.streamId);
}

TEST(NetHandshake, PreV5PeersDecodeToDefaultTenant) {
  // v1-v4 payloads carry no routing fields; they must decode to the
  // default tenant ("", trace 0) so legacy emitters land in the default
  // session — not be rejected, not misparse the tail.
  for (const std::uint16_t v :
       {kLegacyProtocolVersion, kListSpecProtocolVersion,
        kTraceContextProtocolVersion, kSparseClockProtocolVersion}) {
    Handshake h = sampleHandshake();
    h.version = v;
    h.tenant = "must-not-survive";  // pre-v5 encode drops these
    h.traceId = 99;
    Handshake back;
    const char* error = nullptr;
    ASSERT_TRUE(decodeHandshake(encodeHandshake(h), back, &error))
        << "version " << v << ": " << error;
    EXPECT_EQ(back.version, v);
    EXPECT_TRUE(back.tenant.empty()) << "version " << v;
    EXPECT_EQ(back.traceId, 0u) << "version " << v;
  }
}

TEST(NetHandshake, V5RejectsTruncatedTenantTail) {
  // Cutting into the v5 tenant/trace tail must be a decode error, never a
  // silent fallback to the default tenant.
  Handshake h = sampleHandshake();
  h.version = kMultiTenantProtocolVersion;
  h.tenant = "tenant-a";
  h.traceId = 7;
  const std::vector<std::uint8_t> full = encodeHandshake(h);
  const std::vector<std::uint8_t> base =
      encodeHandshake([&] {
        Handshake b = h;
        b.version = kSparseClockProtocolVersion;
        return b;
      }());
  // v5 appends its tail after the v4 layout; chop anywhere inside it.
  ASSERT_GT(full.size(), base.size());
  for (std::size_t n = base.size() + 1; n < full.size(); ++n) {
    std::vector<std::uint8_t> cut(full.begin(),
                                  full.begin() + static_cast<std::ptrdiff_t>(n));
    Handshake back;
    const char* error = nullptr;
    EXPECT_FALSE(decodeHandshake(cut, back, &error)) << "length " << n;
    EXPECT_NE(error, nullptr);
  }
}

TEST(NetEvents, EventsTsPayloadRoundTripsTimestampAndMessages) {
  const std::vector<trace::Message> msgs{sampleMessage(0, 1),
                                         sampleMessage(1, 2)};
  const std::uint64_t sendNs = 0xfeedfacecafe1234ull;
  std::vector<std::uint8_t> payload(kEventsTsPrefixSize);
  for (std::size_t i = 0; i < kEventsTsPrefixSize; ++i) {
    payload[i] = static_cast<std::uint8_t>(sendNs >> (8 * i));
  }
  const std::vector<std::uint8_t> body = eventsPayload(msgs);
  payload.insert(payload.end(), body.begin(), body.end());

  std::uint64_t decodedNs = 0;
  std::vector<trace::Message> decoded;
  const char* error = nullptr;
  ASSERT_TRUE(decodeEventsTsPayload(payload, decodedNs, decoded, &error))
      << error;
  EXPECT_EQ(decodedNs, sendNs);
  EXPECT_EQ(decoded, msgs);
}

TEST(NetEvents, EventsTsShorterThanTimestampIsCorrupt) {
  for (std::size_t len = 0; len < kEventsTsPrefixSize; ++len) {
    const std::vector<std::uint8_t> payload(len, 0);
    std::uint64_t ns = 0;
    std::vector<trace::Message> out;
    const char* error = nullptr;
    EXPECT_FALSE(decodeEventsTsPayload(payload, ns, out, &error))
        << "len " << len;
    EXPECT_STREQ(error, "events-ts frame shorter than timestamp");
  }
}

TEST(NetFrame, EventsTsFrameTypeIsAccepted) {
  std::vector<std::uint8_t> payload(kEventsTsPrefixSize, 0);
  std::vector<std::uint8_t> bytes;
  appendFrame(bytes, FrameType::kEventsTs, payload);
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  Frame f;
  ASSERT_EQ(reader.next(f), FrameReader::Status::kFrame);
  EXPECT_EQ(f.type, FrameType::kEventsTs);
}

TEST(NetEvents, PartialMessageInsideFrameIsCorrupt) {
  std::vector<std::uint8_t> payload = eventsPayload({sampleMessage(0, 1)});
  payload.pop_back();  // frames are atomic: a cut message is corruption
  std::vector<trace::Message> out;
  const char* error = nullptr;
  EXPECT_FALSE(decodeEventsPayload(payload, out, &error));
  EXPECT_STREQ(error, "partial message inside events frame");
}

// --- BinaryCodec::tryDecode: the hardened decoder under the daemon ------

TEST(NetTryDecode, EveryPrefixReportsNeedMore) {
  std::vector<std::uint8_t> bytes;
  trace::BinaryCodec::encode(sampleMessage(1, 4), bytes);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const trace::DecodeResult r =
        trace::BinaryCodec::tryDecode(bytes.data(), cut);
    EXPECT_EQ(r.status, trace::DecodeStatus::kNeedMore) << "cut " << cut;
    EXPECT_EQ(r.consumed, 0u);
  }
  const trace::DecodeResult full =
      trace::BinaryCodec::tryDecode(bytes.data(), bytes.size());
  ASSERT_EQ(full.status, trace::DecodeStatus::kOk);
  EXPECT_EQ(full.consumed, bytes.size());
  EXPECT_EQ(full.message, sampleMessage(1, 4));
}

TEST(NetTryDecode, CorruptKindAndOversizedClockAreRejected) {
  std::vector<std::uint8_t> bytes;
  trace::BinaryCodec::encode(sampleMessage(0, 1), bytes);
  {
    std::vector<std::uint8_t> bad = bytes;
    bad[0] = 0xff;  // invalid EventKind
    const trace::DecodeResult r =
        trace::BinaryCodec::tryDecode(bad.data(), bad.size());
    EXPECT_EQ(r.status, trace::DecodeStatus::kCorrupt);
    EXPECT_STREQ(r.error, "corrupt event kind");
  }
  {
    std::vector<std::uint8_t> bad = bytes;
    // clockSize lives after kind(1)+thread(4)+var(4)+value(8)+local(8)+global(8).
    const std::size_t off = 1 + 4 + 4 + 8 + 8 + 8;
    bad[off] = 0xff;
    bad[off + 1] = 0xff;
    bad[off + 2] = 0xff;
    bad[off + 3] = 0xff;
    const trace::DecodeResult r =
        trace::BinaryCodec::tryDecode(bad.data(), bad.size());
    EXPECT_EQ(r.status, trace::DecodeStatus::kCorrupt);
    EXPECT_STREQ(r.error, "oversized vector clock");
  }
}

TEST(NetTryDecode, ThrowingDecodeStillThrowsForTrustedCallers) {
  std::vector<std::uint8_t> bytes;
  trace::BinaryCodec::encode(sampleMessage(0, 1), bytes);
  bytes.pop_back();
  std::size_t offset = 0;
  EXPECT_THROW(trace::BinaryCodec::decode(bytes, offset), std::runtime_error);
  EXPECT_EQ(offset, 0u);
}

}  // namespace
}  // namespace mpx::net
