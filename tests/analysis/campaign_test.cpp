// Testing campaigns: aggregation over seeded runs.
#include "analysis/campaign.hpp"

#include <gtest/gtest.h>

#include "program/corpus.hpp"

namespace mpx::analysis {
namespace {

namespace corpus = program::corpus;

TEST(Campaign, PredictionDominatesObservationOnLanding) {
  CampaignOptions opts;
  opts.trials = 40;
  const CampaignResult r = runCampaign(
      corpus::landingController(4), corpus::landingProperty(), opts);
  ASSERT_EQ(r.trials.size(), 40u);
  EXPECT_GE(r.predictedDetections, r.observedDetections);
  EXPECT_GT(r.predictedDetections, 0u);
  // Per-trial implication: observed detection entails prediction.
  for (const auto& t : r.trials) {
    if (t.observedDetected) {
      EXPECT_TRUE(t.predicted) << "seed " << t.seed;
    }
  }
  EXPECT_EQ(r.deadlocks, 0u);
}

TEST(Campaign, RatesAndSummary) {
  CampaignOptions opts;
  opts.trials = 20;
  const CampaignResult r = runCampaign(
      corpus::landingController(), corpus::landingProperty(), opts);
  EXPECT_GE(r.predictedRate(), r.observedRate());
  EXPECT_LE(r.predictedRate(), 1.0);
  const std::string s = r.summary();
  EXPECT_NE(s.find("20 trials"), std::string::npos);
  EXPECT_NE(s.find("predictive analysis"), std::string::npos);
}

TEST(Campaign, GroundTruthOnRequest) {
  CampaignOptions opts;
  opts.trials = 5;
  opts.withGroundTruth = true;
  const CampaignResult r = runCampaign(
      corpus::landingController(), corpus::landingProperty(), opts);
  ASSERT_TRUE(r.groundTruthComputed);
  EXPECT_GT(r.groundTruth.totalExecutions, 0u);
  EXPECT_GT(r.groundTruth.violatingExecutions, 0u);
  EXPECT_NE(r.summary().find("ground truth"), std::string::npos);
}

TEST(Campaign, SafePropertyNeverDetects) {
  CampaignOptions opts;
  opts.trials = 15;
  const CampaignResult r =
      runCampaign(corpus::peterson(), corpus::mutualExclusionProperty(), opts);
  EXPECT_EQ(r.observedDetections, 0u);
  EXPECT_EQ(r.predictedDetections, 0u);
}

TEST(Campaign, SeedsAreSequentialFromFirstSeed) {
  CampaignOptions opts;
  opts.trials = 3;
  opts.firstSeed = 100;
  const CampaignResult r = runCampaign(
      corpus::landingController(), corpus::landingProperty(), opts);
  ASSERT_EQ(r.trials.size(), 3u);
  EXPECT_EQ(r.trials[0].seed, 100u);
  EXPECT_EQ(r.trials[2].seed, 102u);
}

TEST(Campaign, EmptyCampaign) {
  CampaignOptions opts;
  opts.trials = 0;
  const CampaignResult r = runCampaign(
      corpus::landingController(), corpus::landingProperty(), opts);
  EXPECT_TRUE(r.trials.empty());
  EXPECT_EQ(r.observedRate(), 0.0);
}

}  // namespace
}  // namespace mpx::analysis
