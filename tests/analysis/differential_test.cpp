// Differential testing: the three independent checking engines — the batch
// lattice, the online incremental analyzer, and explicit run enumeration —
// must agree on every verdict, for random programs, random schedules,
// random arrival orders, and both monitor families.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "analysis/predictive_analyzer.hpp"
#include "logic/fsm.hpp"
#include "observer/online.hpp"
#include "observer/run_enumerator.hpp"
#include "program/corpus.hpp"

namespace mpx::analysis {
namespace {

namespace corpus = program::corpus;

struct Engines {
  bool lattice = false;
  bool online = false;
  bool enumeration = false;
  std::uint64_t latticeRuns = 0;
  std::uint64_t onlineRuns = 0;
  std::size_t enumeratedRuns = 0;
};

Engines runAllEngines(const program::Program& prog, const std::string& spec,
                      std::uint64_t scheduleSeed, std::uint64_t shuffleSeed) {
  PredictiveAnalyzer analyzer(prog, specConfig(spec));
  const AnalysisResult r = analyzer.analyzeWithSeed(scheduleSeed);

  Engines out;
  out.lattice = r.predictsViolation();
  out.latticeRuns = r.latticeStats.pathCount;

  // Online, with shuffled arrival.
  std::vector<trace::Message> msgs;
  for (const auto& ref : r.causality.observedOrder()) {
    msgs.push_back(r.causality.message(ref));
  }
  std::mt19937_64 rng(shuffleSeed);
  std::shuffle(msgs.begin(), msgs.end(), rng);
  logic::SynthesizedMonitor onlineMon(analyzer.formula());
  observer::OnlineAnalyzer online(r.space, prog.threadCount(), &onlineMon);
  for (const auto& m : msgs) online.onMessage(m);
  online.endOfTrace();
  out.online = !online.violations().empty();
  out.onlineRuns = online.stats().pathCount;

  // Explicit enumeration.
  observer::RunEnumerator runs(r.causality, r.space);
  logic::SynthesizedMonitor enumMon(analyzer.formula());
  bool anyBad = false;
  out.enumeratedRuns = runs.forEachRun([&](const observer::Run& run) {
    if (enumMon.firstViolation(run.states) >= 0) anyBad = true;
    return true;
  });
  out.enumeration = anyBad;
  return out;
}

struct DiffCase {
  std::uint64_t programSeed;
  std::uint64_t scheduleSeed;
  bool locks;
};

class TripleAgreement : public ::testing::TestWithParam<DiffCase> {};

TEST_P(TripleAgreement, AllEnginesAgree) {
  const DiffCase c = GetParam();
  corpus::RandomProgramOptions opts;
  opts.threads = 3;
  opts.vars = 2;
  opts.opsPerThread = 5;
  opts.locks = c.locks ? 1 : 0;
  const program::Program prog = corpus::randomProgram(c.programSeed, opts);
  const Engines e = runAllEngines(prog, "historically g0 <= g1 + 5",
                                  c.scheduleSeed, c.programSeed * 7 + 3);
  EXPECT_EQ(e.lattice, e.online);
  EXPECT_EQ(e.lattice, e.enumeration);
  EXPECT_EQ(e.latticeRuns, e.onlineRuns);
  EXPECT_EQ(e.latticeRuns, e.enumeratedRuns);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TripleAgreement,
    ::testing::Values(DiffCase{61, 1, false}, DiffCase{62, 2, false},
                      DiffCase{63, 3, true}, DiffCase{64, 4, true},
                      DiffCase{65, 5, false}, DiffCase{66, 6, true},
                      DiffCase{67, 7, false}, DiffCase{68, 8, true}),
    [](const ::testing::TestParamInfo<DiffCase>& info) {
      return "p" + std::to_string(info.param.programSeed) + "s" +
             std::to_string(info.param.scheduleSeed) +
             (info.param.locks ? "L" : "");
    });

TEST(TripleAgreementCanonical, LandingAndXyz) {
  {
    const Engines e = runAllEngines(corpus::landingController(),
                                    corpus::landingProperty(), 12345, 6);
    EXPECT_EQ(e.lattice, e.online);
    EXPECT_EQ(e.lattice, e.enumeration);
  }
  {
    const Engines e =
        runAllEngines(corpus::xyzProgram(), corpus::xyzProperty(), 777, 8);
    EXPECT_EQ(e.lattice, e.online);
    EXPECT_EQ(e.lattice, e.enumeration);
  }
}

TEST(TripleAgreementCanonical, SyncHeavyPrograms) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Engines e = runAllEngines(corpus::producerConsumer(2),
                                    "consumed <= 2", seed, seed + 1);
    EXPECT_FALSE(e.lattice) << "seed " << seed;
    EXPECT_EQ(e.lattice, e.online);
    EXPECT_EQ(e.lattice, e.enumeration);
  }
}

}  // namespace
}  // namespace mpx::analysis
