// Differential testing: the three independent checking engines — the batch
// lattice, the online incremental analyzer, and explicit run enumeration —
// must agree on every verdict, for random programs, random schedules,
// random arrival orders, and both monitor families.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <random>
#include <set>
#include <string>

#include "../support/trace_gen.hpp"
#include "analysis/atomicity_analysis.hpp"
#include "analysis/engine.hpp"
#include "analysis/mhp_prefilter.hpp"
#include "analysis/session.hpp"
#include "analysis/predictive_analyzer.hpp"
#include "analysis/report.hpp"
#include "detect/deadlock_analysis.hpp"
#include "detect/race_analysis.hpp"
#include "logic/fsm.hpp"
#include "logic/parser.hpp"
#include "observer/online.hpp"
#include "observer/run_enumerator.hpp"
#include "program/corpus.hpp"

namespace mpx::analysis {
namespace {

namespace corpus = program::corpus;

struct Engines {
  bool lattice = false;
  bool online = false;
  bool enumeration = false;
  std::uint64_t latticeRuns = 0;
  std::uint64_t onlineRuns = 0;
  std::size_t enumeratedRuns = 0;
};

Engines runAllEngines(const program::Program& prog, const std::string& spec,
                      std::uint64_t scheduleSeed, std::uint64_t shuffleSeed) {
  PredictiveAnalyzer analyzer(prog, specConfig(spec));
  const AnalysisResult r = analyzer.analyzeWithSeed(scheduleSeed);

  Engines out;
  out.lattice = r.predictsViolation();
  out.latticeRuns = r.latticeStats.pathCount;

  // Online, with shuffled arrival.
  std::vector<trace::Message> msgs;
  for (const auto& ref : r.causality.observedOrder()) {
    msgs.push_back(r.causality.message(ref));
  }
  std::mt19937_64 rng(shuffleSeed);
  std::shuffle(msgs.begin(), msgs.end(), rng);
  logic::SynthesizedMonitor onlineMon(analyzer.formula());
  observer::OnlineAnalyzer online(r.space, prog.threadCount(), &onlineMon);
  for (const auto& m : msgs) online.onMessage(m);
  online.endOfTrace();
  out.online = !online.violations().empty();
  out.onlineRuns = online.stats().pathCount;

  // Explicit enumeration.
  observer::RunEnumerator runs(r.causality, r.space);
  logic::SynthesizedMonitor enumMon(analyzer.formula());
  bool anyBad = false;
  out.enumeratedRuns = runs.forEachRun([&](const observer::Run& run) {
    if (enumMon.firstViolation(run.states) >= 0) anyBad = true;
    return true;
  });
  out.enumeration = anyBad;
  return out;
}

struct DiffCase {
  std::uint64_t programSeed;
  std::uint64_t scheduleSeed;
  bool locks;
};

class TripleAgreement : public ::testing::TestWithParam<DiffCase> {};

TEST_P(TripleAgreement, AllEnginesAgree) {
  const DiffCase c = GetParam();
  corpus::RandomProgramOptions opts;
  opts.threads = 3;
  opts.vars = 2;
  opts.opsPerThread = 5;
  opts.locks = c.locks ? 1 : 0;
  const program::Program prog = corpus::randomProgram(c.programSeed, opts);
  const Engines e = runAllEngines(prog, "historically g0 <= g1 + 5",
                                  c.scheduleSeed, c.programSeed * 7 + 3);
  EXPECT_EQ(e.lattice, e.online);
  EXPECT_EQ(e.lattice, e.enumeration);
  EXPECT_EQ(e.latticeRuns, e.onlineRuns);
  EXPECT_EQ(e.latticeRuns, e.enumeratedRuns);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TripleAgreement,
    ::testing::Values(DiffCase{61, 1, false}, DiffCase{62, 2, false},
                      DiffCase{63, 3, true}, DiffCase{64, 4, true},
                      DiffCase{65, 5, false}, DiffCase{66, 6, true},
                      DiffCase{67, 7, false}, DiffCase{68, 8, true}),
    [](const ::testing::TestParamInfo<DiffCase>& info) {
      return "p" + std::to_string(info.param.programSeed) + "s" +
             std::to_string(info.param.scheduleSeed) +
             (info.param.locks ? "L" : "");
    });

TEST(TripleAgreementCanonical, LandingAndXyz) {
  {
    const Engines e = runAllEngines(corpus::landingController(),
                                    corpus::landingProperty(), 12345, 6);
    EXPECT_EQ(e.lattice, e.online);
    EXPECT_EQ(e.lattice, e.enumeration);
  }
  {
    const Engines e =
        runAllEngines(corpus::xyzProgram(), corpus::xyzProperty(), 777, 8);
    EXPECT_EQ(e.lattice, e.online);
    EXPECT_EQ(e.lattice, e.enumeration);
  }
}

TEST(TripleAgreementCanonical, SyncHeavyPrograms) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const Engines e = runAllEngines(corpus::producerConsumer(2),
                                    "consumed <= 2", seed, seed + 1);
    EXPECT_FALSE(e.lattice) << "seed " << seed;
    EXPECT_EQ(e.lattice, e.online);
    EXPECT_EQ(e.lattice, e.enumeration);
  }
}

// ===================================================================
// Oracle differential sweep: the one-pass Engine against the naive
// Definition-level brute-force oracle of tests/support/trace_gen.hpp.
// ===================================================================

/// One engine configuration of the differential matrix.
struct RunCfg {
  std::size_t jobs = 1;
  trace::DeliveryPolicy delivery = trace::DeliveryPolicy::kFifo;
  std::size_t maxFrontier = 0;
  std::size_t memoryBudget = 0;
};

EngineResult runEngineCase(const mpx::testing::GeneratedCase& c,
                           const RunCfg& cfg) {
  EngineConfig ec;
  ec.specs = {c.spec};
  ec.delivery = cfg.delivery;
  ec.deliverySeed = c.shuffleSeed;
  // The sweep compares full violation SETS — never let the witness cap
  // truncate them.
  ec.lattice.maxViolations = std::size_t{1} << 20;
  ec.lattice.parallel.jobs = cfg.jobs;
  // Tiny lattices would otherwise fall below the serial-fallback threshold
  // and never exercise the parallel merge path.
  ec.lattice.parallel.minFrontier = 1;
  ec.lattice.maxFrontier = cfg.maxFrontier;
  ec.lattice.memoryBudgetBytes = cfg.memoryBudget;
  const Engine engine(c.program, ec);
  return engine.runWithSeed(c.scheduleSeed);
}

std::set<std::string> violatingCuts(const EngineResult& r) {
  std::set<std::string> cuts;
  for (const auto& v : r.specs.at(0).violations) cuts.insert(v.cut.toString());
  return cuts;
}

/// Runs the oracle for an already-run base case; nullopt when the seed is
/// infeasible (too many events or runs) and must be skipped.
std::optional<mpx::testing::OracleResult> oracleFor(
    const mpx::testing::GeneratedCase& c, const EngineResult& base) {
  const logic::Formula f = logic::SpecParser(base.space).parse(c.spec);
  const mpx::testing::BruteForceOracle oracle(base.causality, base.space, f);
  if (!oracle.result().feasible) return std::nullopt;
  return oracle.result();
}

/// ≥500 accepted seeds: the engine's violating-cut set, level count, node
/// census, peak width and run count must all equal the oracle's, and the
/// rendered report must be byte-identical across jobs {1,4} and fifo /
/// shuffled delivery.
TEST(OracleDifferential, FiveHundredSeedSweep) {
  std::size_t accepted = 0;
  for (std::uint64_t seed = 1; accepted < 500 && seed < 20000; ++seed) {
    const auto c = mpx::testing::generateCase(seed);
    const EngineResult base = runEngineCase(c, {});
    const auto oracle = oracleFor(c, base);
    if (!oracle) continue;
    ++accepted;

    ASSERT_EQ(violatingCuts(base), oracle->violatingCuts) << "seed " << seed;
    ASSERT_EQ(base.latticeStats.levels, oracle->levels) << "seed " << seed;
    ASSERT_EQ(base.latticeStats.totalNodes, oracle->consistentCuts)
        << "seed " << seed;
    ASSERT_EQ(base.latticeStats.peakLevelWidth, oracle->peakLevelWidth())
        << "seed " << seed;
    ASSERT_FALSE(base.latticeStats.pathCountSaturated) << "seed " << seed;
    ASSERT_EQ(base.latticeStats.pathCount, oracle->runCount)
        << "seed " << seed;
    ASSERT_FALSE(base.latticeStats.bounded()) << "seed " << seed;

    // Cross-config determinism: byte-identical reports and accounting.
    const std::string ref = renderAnalysisReports(base.reports);
    const RunCfg variants[] = {
        {4, trace::DeliveryPolicy::kFifo, 0, 0},
        {1, trace::DeliveryPolicy::kShuffle, 0, 0},
        {4, trace::DeliveryPolicy::kShuffle, 0, 0},
    };
    for (const RunCfg& v : variants) {
      const EngineResult r = runEngineCase(c, v);
      ASSERT_EQ(renderAnalysisReports(r.reports), ref)
          << "seed " << seed << " jobs " << v.jobs;
      ASSERT_EQ(r.latticeStats.accountedBytes, base.latticeStats.accountedBytes)
          << "seed " << seed << " jobs " << v.jobs;
      ASSERT_EQ(r.latticeStats.peakAccountedBytes,
                base.latticeStats.peakAccountedBytes)
          << "seed " << seed << " jobs " << v.jobs;
    }
  }
  ASSERT_GE(accepted, 500u);
}

/// Budget-ladder runs: under ANY finite budget the engine's violations stay
/// a SUBSET of the oracle's (never a superset — shed runs only lose
/// exhaustiveness), the report is stamped BOUNDED exactly when runs were
/// shed, and shedding is deterministic across jobs counts.
TEST(OracleDifferential, BoundedRunsAreSoundSubsets) {
  std::size_t accepted = 0;
  std::size_t degradedRuns = 0;
  for (std::uint64_t seed = 1; accepted < 500 && seed < 20000; ++seed) {
    const auto c = mpx::testing::generateCase(seed);
    const EngineResult base = runEngineCase(c, {});
    const auto oracle = oracleFor(c, base);
    if (!oracle) continue;
    ++accepted;

    const std::size_t ladders[][2] = {
        {1, 0}, {2, 0}, {0, 2048},  // {maxFrontier, memoryBudgetBytes}
    };
    for (const auto& lad : ladders) {
      EngineResult byJobs[2];
      for (std::size_t ji = 0; ji < 2; ++ji) {
        const RunCfg cfg{ji == 0 ? 1u : 4u, trace::DeliveryPolicy::kFifo,
                         lad[0], lad[1]};
        EngineResult r = runEngineCase(c, cfg);
        const std::set<std::string> cuts = violatingCuts(r);

        // Soundness: BOUNDED violations ⊆ oracle, never a superset.
        ASSERT_TRUE(std::includes(oracle->violatingCuts.begin(),
                                  oracle->violatingCuts.end(), cuts.begin(),
                                  cuts.end()))
            << "seed " << seed << " mf " << lad[0] << " mb " << lad[1];

        // The verdict stamp tells the truth about exhaustiveness.
        const std::string report = renderViolationReport(
            r.space, r.violations, r.latticeStats, true);
        if (r.latticeStats.bounded()) {
          ASSERT_NE(report.find("verdict: BOUNDED("), std::string::npos)
              << report;
          ASSERT_NE(r.latticeStats.degradation,
                    observer::DegradationMode::kFull);
          ASSERT_NE(r.latticeStats.boundReason, observer::BoundReason::kNone);
          ASSERT_GT(r.latticeStats.droppedNodes, 0u);
          ASSERT_GE(r.latticeStats.degradedAtLevel, 1u);
          ++degradedRuns;
        } else {
          ASSERT_NE(report.find("verdict: SOUND"), std::string::npos)
              << report;
          ASSERT_EQ(cuts, oracle->violatingCuts) << "seed " << seed;
        }
        byJobs[ji] = std::move(r);
      }

      // Shedding is deterministic across jobs counts: same survivors, same
      // accounting, byte-identical reports.
      ASSERT_EQ(violatingCuts(byJobs[0]), violatingCuts(byJobs[1]))
          << "seed " << seed << " mf " << lad[0] << " mb " << lad[1];
      ASSERT_EQ(byJobs[0].latticeStats.droppedNodes,
                byJobs[1].latticeStats.droppedNodes)
          << "seed " << seed;
      ASSERT_EQ(byJobs[0].latticeStats.degradation,
                byJobs[1].latticeStats.degradation)
          << "seed " << seed;
      ASSERT_EQ(byJobs[0].latticeStats.accountedBytes,
                byJobs[1].latticeStats.accountedBytes)
          << "seed " << seed;
      ASSERT_EQ(renderAnalysisReports(byJobs[0].reports),
                renderAnalysisReports(byJobs[1].reports))
          << "seed " << seed;
    }
  }
  ASSERT_GE(accepted, 500u);
  // The matrix must actually exercise the ladder, not just pass vacuously.
  ASSERT_GT(degradedRuns, 100u);
}

/// Budget-ladder determinism across DELIVERY orders: the sampler's rank is
/// a pure function of (seed, level, cut), so shuffled arrival must shed the
/// exact same nodes as fifo.
TEST(OracleDifferential, BoundedRunsDeterministicAcrossDelivery) {
  std::size_t accepted = 0;
  for (std::uint64_t seed = 1; accepted < 120 && seed < 20000; ++seed) {
    const auto c = mpx::testing::generateCase(seed);
    const EngineResult base = runEngineCase(c, {});
    if (!oracleFor(c, base)) continue;
    ++accepted;

    const RunCfg fifo{1, trace::DeliveryPolicy::kFifo, 2, 0};
    const RunCfg shuf{4, trace::DeliveryPolicy::kShuffle, 2, 0};
    const EngineResult a = runEngineCase(c, fifo);
    const EngineResult b = runEngineCase(c, shuf);
    ASSERT_EQ(violatingCuts(a), violatingCuts(b)) << "seed " << seed;
    ASSERT_EQ(a.latticeStats.droppedNodes, b.latticeStats.droppedNodes)
        << "seed " << seed;
    ASSERT_EQ(a.latticeStats.degradation, b.latticeStats.degradation)
        << "seed " << seed;
    ASSERT_EQ(renderAnalysisReports(a.reports),
              renderAnalysisReports(b.reports))
        << "seed " << seed;
  }
  ASSERT_GE(accepted, 120u);
}

/// Race/deadlock differential: plugin reports are invariant across jobs and
/// delivery orders, lock-free programs never report deadlocks, and every
/// race report satisfies the Definition-level invariants (same variable,
/// different threads, at least one write, MVC-concurrent).
TEST(OracleDifferential, RaceAndDeadlockReportsInvariant) {
  std::size_t accepted = 0;
  for (std::uint64_t seed = 1; accepted < 60 && seed < 2000; ++seed) {
    const auto c = mpx::testing::generateCase(seed);
    std::vector<std::string> varNames;
    for (std::size_t i = 0; i < c.options.vars; ++i) {
      varNames.push_back("g" + std::to_string(i));
    }
    ++accepted;

    EngineConfig ec;
    ec.specs = {c.spec};
    ec.lattice.maxViolations = std::size_t{1} << 20;
    ec.lattice.parallel.minFrontier = 1;

    std::string ref;
    std::size_t refRaces = 0;
    const RunCfg variants[] = {
        {1, trace::DeliveryPolicy::kFifo, 0, 0},
        {4, trace::DeliveryPolicy::kFifo, 0, 0},
        {1, trace::DeliveryPolicy::kShuffle, 0, 0},
        {4, trace::DeliveryPolicy::kShuffle, 0, 0},
    };
    for (std::size_t vi = 0; vi < 4; ++vi) {
      ec.delivery = variants[vi].delivery;
      ec.deliverySeed = c.shuffleSeed;
      ec.lattice.parallel.jobs = variants[vi].jobs;
      const Engine engine(c.program, ec);
      detect::RaceAnalysis race(c.program, varNames, {});
      detect::DeadlockAnalysis deadlock(c.program);
      const EngineResult r =
          engine.runWithSeed(c.scheduleSeed, {&race, &deadlock});
      const std::string rendered = renderAnalysisReports(r.reports);
      if (vi == 0) {
        ref = rendered;
        refRaces = race.races().size();
      } else {
        ASSERT_EQ(rendered, ref) << "seed " << seed << " variant " << vi;
        ASSERT_EQ(race.races().size(), refRaces) << "seed " << seed;
      }

      if (c.options.locks == 0) {
        ASSERT_TRUE(deadlock.deadlocks().empty()) << "seed " << seed;
      }
      for (const detect::RaceReport& rep : race.races()) {
        ASSERT_EQ(rep.first.event.var, rep.second.event.var)
            << "seed " << seed;
        ASSERT_NE(rep.first.event.thread, rep.second.event.thread)
            << "seed " << seed;
        ASSERT_TRUE(trace::isWriteLike(rep.first.event.kind) ||
                    trace::isWriteLike(rep.second.event.kind))
            << "seed " << seed;
        ASSERT_TRUE(rep.first.concurrentWith(rep.second)) << "seed " << seed;
      }
    }
  }
  ASSERT_GE(accepted, 60u);
}

/// Checkpoint rung of the sweep: walking the trace message-by-message and
/// REPLACING the session with checkpoint()+restore() at every watermark
/// advance (plus once mid-level) must leave the final report byte-identical
/// to the uninterrupted session's — across jobs {1,4} and fifo / shuffled
/// arrival.  This is the restore-determinism contract the observer daemon's
/// epoch snapshots rely on, ground down to the sweep's seed set.
TEST(OracleDifferential, CheckpointRestoreRoundTripsMidSweep) {
  std::size_t accepted = 0;
  std::size_t roundTrips = 0;
  for (std::uint64_t seed = 1; accepted < 500 && seed < 20000; ++seed) {
    const auto c = mpx::testing::generateCase(seed);
    const EngineResult base = runEngineCase(c, {});
    if (!oracleFor(c, base)) continue;
    ++accepted;

    std::vector<trace::Message> fifo;
    for (const auto& ref : base.causality.observedOrder()) {
      fifo.push_back(base.causality.message(ref));
    }

    for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
      for (const bool shuffled : {false, true}) {
        std::vector<trace::Message> msgs = fifo;
        if (shuffled) {
          std::mt19937_64 rng(c.shuffleSeed);
          std::shuffle(msgs.begin(), msgs.end(), rng);
        }

        AnalyzerSession::Config cfg;
        cfg.threads =
            static_cast<std::uint32_t>(base.causality.threadCount());
        cfg.specs = {c.spec};
        cfg.handshakeSpecs = cfg.specs;
        for (std::size_t i = 0; i < c.options.vars; ++i) {
          cfg.tracked.push_back("g" + std::to_string(i));
        }
        cfg.vars = c.program.vars;
        cfg.lattice.maxViolations = std::size_t{1} << 20;
        cfg.lattice.parallel.jobs = jobs;
        cfg.lattice.parallel.minFrontier = 1;

        // Uninterrupted reference session.
        AnalyzerSession ref(cfg);
        const char* err = nullptr;
        for (const auto& m : msgs) {
          ASSERT_NE(ref.ingest(m, &err), AnalyzerSession::Ingest::kError)
              << "seed " << seed << ": " << err;
        }
        ref.noteStreamEnd();
        ASSERT_TRUE(ref.finished()) << ref.streamError();
        const std::string want = ref.renderReport();

        // The same walk, but the session object is torn down and rebuilt
        // from its own checkpoint blob mid-flight.
        auto live = std::make_unique<AnalyzerSession>(cfg);
        std::uint64_t lastLevel = live->watermarkLevel();
        std::size_t fed = 0;
        for (const auto& m : msgs) {
          ASSERT_NE(live->ingest(m, &err), AnalyzerSession::Ingest::kError)
              << "seed " << seed << ": " << err;
          ++fed;
          const bool levelAdvanced = live->watermarkLevel() > lastLevel;
          if (levelAdvanced || fed == msgs.size() / 2) {
            lastLevel = live->watermarkLevel();
            observer::ckpt::Writer w;
            live->checkpoint(w);
            const std::vector<std::uint8_t> blob = w.take();
            observer::ckpt::Reader r(blob);
            auto restored = AnalyzerSession::restore(r, jobs);
            ASSERT_NE(restored, nullptr) << "seed " << seed;
            ASSERT_EQ(restored->watermarkLevel(), live->watermarkLevel())
                << "seed " << seed;
            ASSERT_EQ(restored->pendingMessages(), live->pendingMessages())
                << "seed " << seed;
            ASSERT_EQ(restored->violations().size(),
                      live->violations().size())
                << "seed " << seed;
            ASSERT_EQ(restored->restoreCount(), live->restoreCount() + 1)
                << "seed " << seed;
            live = std::move(restored);
            ++roundTrips;
          }
        }
        live->noteStreamEnd();
        ASSERT_TRUE(live->finished()) << live->streamError();
        ASSERT_EQ(live->renderReport(), want)
            << "seed " << seed << " jobs " << jobs
            << (shuffled ? " shuffled" : " fifo");
      }
    }
  }
  ASSERT_GE(accepted, 500u);
  // The rung must actually round-trip, not pass vacuously.
  ASSERT_GT(roundTrips, 1000u);
}

/// Online-vs-batch budget parity: the online analyzer fed SHUFFLED messages
/// must shed the exact same nodes as the batch lattice — the level index
/// passed to the sampler and the byte accounting line up exactly.
TEST(OracleDifferential, OnlineMatchesBatchUnderBudget) {
  std::size_t accepted = 0;
  for (std::uint64_t seed = 1; accepted < 80 && seed < 2000; ++seed) {
    const auto c = mpx::testing::generateCase(seed);
    PredictiveAnalyzer analyzer(c.program, specConfig(c.spec));
    const AnalysisResult base = analyzer.analyzeWithSeed(c.scheduleSeed);
    ++accepted;

    for (const std::size_t maxFrontier : {std::size_t{1}, std::size_t{2}}) {
      observer::LatticeOptions opts;
      opts.maxViolations = std::size_t{1} << 20;
      opts.maxFrontier = maxFrontier;

      // Batch, fifo discovery order.
      observer::ComputationLattice lattice(base.causality, base.space, opts);
      logic::SynthesizedMonitor batchMon(analyzer.formula());
      std::vector<observer::Violation> batchViolations;
      const observer::LatticeStats batchStats =
          lattice.check(batchMon, batchViolations);

      // Online, shuffled arrival.
      std::vector<trace::Message> msgs;
      for (const auto& ref : base.causality.observedOrder()) {
        msgs.push_back(base.causality.message(ref));
      }
      std::mt19937_64 rng(c.shuffleSeed);
      std::shuffle(msgs.begin(), msgs.end(), rng);
      logic::SynthesizedMonitor onlineMon(analyzer.formula());
      // The graph's thread count, not the program's: a thread that emitted
      // no relevant event adds a cut component, which shifts the byte model
      // (the batch lattice only ever sees the graph's threads).
      observer::OnlineAnalyzer online(base.space,
                                      base.causality.threadCount(),
                                      &onlineMon, opts);
      for (const auto& m : msgs) online.onMessage(m);
      online.endOfTrace();

      std::set<std::string> batchCuts;
      for (const auto& v : batchViolations) batchCuts.insert(v.cut.toString());
      std::set<std::string> onlineCuts;
      for (const auto& v : online.violations()) {
        onlineCuts.insert(v.cut.toString());
      }
      ASSERT_EQ(batchCuts, onlineCuts) << "seed " << seed << " mf "
                                       << maxFrontier;
      ASSERT_EQ(batchStats.droppedNodes, online.stats().droppedNodes)
          << "seed " << seed << " mf " << maxFrontier;
      ASSERT_EQ(batchStats.degradation, online.stats().degradation)
          << "seed " << seed << " mf " << maxFrontier;
      ASSERT_EQ(batchStats.degradedAtLevel, online.stats().degradedAtLevel)
          << "seed " << seed << " mf " << maxFrontier;
      ASSERT_EQ(batchStats.accountedBytes, online.stats().accountedBytes)
          << "seed " << seed << " mf " << maxFrontier;
      ASSERT_EQ(batchStats.peakAccountedBytes,
                online.stats().peakAccountedBytes)
          << "seed " << seed << " mf " << maxFrontier;
    }
  }
  ASSERT_GE(accepted, 80u);
}

// ===================================================================
// ISSUE 10 rungs: atomicity against the serialization-census oracle,
// and the MHP prefilter against the exhaustive pair census.
// ===================================================================

/// Violating regions as a canonical (thread, ordinal) set.
std::set<std::pair<ThreadId, std::size_t>> regionSet(
    const AtomicityAnalysis& atom) {
  std::set<std::pair<ThreadId, std::size_t>> out;
  for (const auto& v : atom.violations()) out.emplace(v.thread, v.ordinal);
  return out;
}

/// ≥500 accepted region-annotated seeds: AtomicityAnalysis's violation set
/// must equal the brute-force oracle's (which itself cross-checks the
/// conflict-graph verdict against serialization-existence backtracking on
/// EVERY linearization), MhpPrefilter's never-concurrent pairs must be a
/// subset of the exhaustive census, and both plugins' reports must be
/// byte-identical across jobs {1,4} × fifo/shuffled delivery.
TEST(OracleDifferential, AtomicityFiveHundredSeedSweep) {
  std::size_t accepted = 0;
  std::size_t violatingSeeds = 0;
  std::size_t regionsSeen = 0;
  for (std::uint64_t seed = 1; accepted < 500 && seed < 60000; ++seed) {
    const auto c = mpx::testing::generateAtomicityCase(seed);

    EngineConfig ec;
    ec.specs = {c.spec};
    ec.lattice.maxViolations = std::size_t{1} << 20;
    ec.lattice.parallel.minFrontier = 1;
    ec.deliverySeed = c.shuffleSeed;
    const Engine engine(c.program, ec);
    AtomicityAnalysis atom(&c.program.vars);
    MhpPrefilter mhp(&c.program.vars);
    const EngineResult base = engine.runWithSeed(c.scheduleSeed, {&mhp, &atom});

    mpx::testing::OracleOptions oopts;
    oopts.maxRuns = 4000;
    const mpx::testing::AtomicityOracle oracle(base.causality, oopts);
    if (!oracle.result().feasible) continue;
    ++accepted;

    // The oracle's own sanity invariants: every linearization of the
    // partial order yields the same violation set, and the conflict-graph
    // verdict always agreed with the serialization backtracking.
    ASSERT_TRUE(oracle.result().pathInvariant) << "seed " << seed;
    ASSERT_TRUE(oracle.result().crossCheckOk) << "seed " << seed;

    ASSERT_EQ(regionSet(atom), oracle.result().violations) << "seed " << seed;
    ASSERT_EQ(atom.regionCount(), oracle.result().regions) << "seed " << seed;
    regionsSeen += atom.regionCount();
    if (!atom.violations().empty()) ++violatingSeeds;

    // MHP pair classification ⊆ the exhaustive Definition-level census.
    const auto census =
        mpx::testing::exhaustiveNeverConcurrentPairs(base.causality);
    const std::set<std::pair<VarId, VarId>> censusSet(census.begin(),
                                                      census.end());
    for (const auto& p : mhp.neverConcurrentPairs()) {
      ASSERT_TRUE(censusSet.count(p))
          << "seed " << seed << " pair " << p.first << "," << p.second;
    }

    // Cross-config determinism: byte-identical plugin reports across
    // jobs {1,4} × fifo/shuffled (fresh plugin instances each run — they
    // accumulate message logs).
    const std::string ref = renderAnalysisReports(base.reports);
    const RunCfg variants[] = {
        {4, trace::DeliveryPolicy::kFifo, 0, 0},
        {1, trace::DeliveryPolicy::kShuffle, 0, 0},
        {4, trace::DeliveryPolicy::kShuffle, 0, 0},
    };
    for (const RunCfg& v : variants) {
      EngineConfig vc = ec;
      vc.delivery = v.delivery;
      vc.lattice.parallel.jobs = v.jobs;
      const Engine vEngine(c.program, vc);
      AtomicityAnalysis vAtom(&c.program.vars);
      MhpPrefilter vMhp(&c.program.vars);
      const EngineResult r =
          vEngine.runWithSeed(c.scheduleSeed, {&vMhp, &vAtom});
      ASSERT_EQ(renderAnalysisReports(r.reports), ref)
          << "seed " << seed << " jobs " << v.jobs;
      ASSERT_EQ(regionSet(vAtom), oracle.result().violations)
          << "seed " << seed << " jobs " << v.jobs;
    }
  }
  ASSERT_GE(accepted, 500u);
  // The rung must exercise real regions and real violations, not pass
  // vacuously on region-free traces.
  ASSERT_GT(regionsSeen, 500u);
  ASSERT_GE(violatingSeeds, 10u);
}

/// Prefilter on/off equivalence over the sweep: with the suffix variable
/// g2 tracked beyond the spec (g0/g1), the prefilter-on engine must render
/// byte-identical reports and identical violating cuts, while expanding at
/// most as many union variables — and strictly fewer on at least a few
/// seeds (the speed win the tentpole claims).
TEST(OracleDifferential, MhpPrefilterByteIdenticalReports) {
  std::size_t accepted = 0;
  std::size_t prunedRuns = 0;
  for (std::uint64_t seed = 1; accepted < 500 && seed < 20000; ++seed) {
    auto c = mpx::testing::generateCase(seed);
    c.options.vars = 3;  // g2: tracked below, never referenced by the spec
    c.program = corpus::randomProgram(seed, c.options);

    EngineConfig off;
    off.specs = {c.spec};
    off.extraTrackedVars = {"g2"};
    off.lattice.maxViolations = std::size_t{1} << 20;
    off.lattice.parallel.minFrontier = 1;
    off.deliverySeed = c.shuffleSeed;
    EngineConfig on = off;
    on.mhpPrefilter = true;

    const Engine offEngine(c.program, off);
    const EngineResult offR = offEngine.runWithSeed(c.scheduleSeed);
    const auto oracle = oracleFor(c, offR);
    if (!oracle) continue;
    ++accepted;

    for (const std::size_t jobs : {std::size_t{1}, std::size_t{4}}) {
      EngineConfig onJ = on;
      onJ.lattice.parallel.jobs = jobs;
      const Engine onEngine(c.program, onJ);
      const EngineResult onR = onEngine.runWithSeed(c.scheduleSeed);

      ASSERT_EQ(renderAnalysisReports(onR.reports),
                renderAnalysisReports(offR.reports))
          << "seed " << seed << " jobs " << jobs;
      ASSERT_EQ(violatingCuts(onR), violatingCuts(offR))
          << "seed " << seed << " jobs " << jobs;
      ASSERT_EQ(violatingCuts(onR), oracle->violatingCuts) << "seed " << seed;
      ASSERT_EQ(onR.latticeStats.totalNodes, offR.latticeStats.totalNodes)
          << "seed " << seed;
      ASSERT_LE(onR.unionVarsExpanded, onR.space.size()) << "seed " << seed;
      if (jobs == 1 && onR.unionVarsExpanded < onR.space.size()) {
        ++prunedRuns;
      }
    }
  }
  ASSERT_GE(accepted, 500u);
  // The prefilter must actually prune somewhere, or the rung is vacuous.
  ASSERT_GT(prunedRuns, 0u);
}

/// Deterministic pruning witness (the acceptance criterion's "strictly
/// fewer expanded union variables on ≥1 corpus trace"): every access in
/// lockDisciplined holds one global lock, so the whole aux suffix is
/// never-concurrent with `data` and must be pruned — with the report still
/// byte-identical to the unpruned pass.
TEST(OracleDifferential, MhpPrefilterPrunesLockDisciplinedCorpus) {
  const program::Program prog = corpus::lockDisciplined(3, 2, 4);
  EngineConfig off;
  off.specs = {"data >= 0"};
  off.extraTrackedVars = {"aux0", "aux1", "aux2", "aux3"};
  off.lattice.maxViolations = std::size_t{1} << 20;
  EngineConfig on = off;
  on.mhpPrefilter = true;

  const Engine offEngine(prog, off);
  const Engine onEngine(prog, on);
  const EngineResult offR = offEngine.runWithSeed(1);
  const EngineResult onR = onEngine.runWithSeed(1);

  EXPECT_EQ(offR.unionVarsExpanded, offR.space.size());
  ASSERT_EQ(onR.space.size(), 5u);
  EXPECT_EQ(onR.unionVarsExpanded, 1u);  // data only; aux0..aux3 pruned
  EXPECT_EQ(onR.prunedVars,
            (std::vector<std::string>{"aux0", "aux1", "aux2", "aux3"}));
  EXPECT_EQ(renderAnalysisReports(onR.reports),
            renderAnalysisReports(offR.reports));
  EXPECT_EQ(violatingCuts(onR), violatingCuts(offR));
}

}  // namespace
}  // namespace mpx::analysis
