// Liveness-violation prediction via lattice lassos (paper §4).
#include "analysis/liveness.hpp"

#include <gtest/gtest.h>

#include "../support/fixtures.hpp"

namespace mpx::analysis {
namespace {

using mpx::testing::observe;

logic::StateExpr slotEq(const observer::StateSpace& sp, const std::string& n,
                        Value v) {
  return logic::StateExpr::binary(
      logic::StateOp::kEq, logic::StateExpr::var(sp.slotOfName(n), n),
      logic::StateExpr::constant(v));
}

mpx::testing::ObservedComputation toggler() {
  program::ProgramBuilder b;
  const VarId x = b.var("x", 0);
  auto t = b.thread();
  t.write(x, program::lit(1)).write(x, program::lit(0))
      .write(x, program::lit(1)).write(x, program::lit(0));
  program::GreedyScheduler sched;
  return observe(b.build(), sched, {"x"});
}

TEST(Liveness, TogglerHasLassos) {
  const auto c = toggler();
  LivenessPredictor predictor(c.graph, c.space);
  const auto lassos = predictor.allLassos();
  ASSERT_FALSE(lassos.empty());
  for (const auto& l : lassos) {
    ASSERT_FALSE(l.loopStates.empty());
    // Loop closes: state before the loop equals the loop's last state.
    EXPECT_EQ(l.stemStates.back(), l.loopStates.back());
  }
}

TEST(Liveness, StabilizationPropertyViolatedOnToggler) {
  const auto c = toggler();
  LivenessPredictor predictor(c.graph, c.space);
  const auto fgx0 = logic::LtlFormula::eventually(
      logic::LtlFormula::always(logic::LtlFormula::atom(slotEq(c.space, "x", 0))));
  EXPECT_FALSE(predictor.predict(fgx0).empty());
}

TEST(Liveness, InfinitelyOftenPropertyHoldsOnToggleLoops) {
  // GF(x = 0) holds on every toggler lasso whose loop contains x = 0...
  // but lassos looping only through x = 1 states violate it.  At minimum,
  // the loop 1->0 satisfies it, so violations are strictly fewer than
  // lassos.
  const auto c = toggler();
  LivenessPredictor predictor(c.graph, c.space);
  const auto gfx0 = logic::LtlFormula::always(
      logic::LtlFormula::eventually(logic::LtlFormula::atom(slotEq(c.space, "x", 0))));
  const auto all = predictor.allLassos();
  const auto bad = predictor.predict(gfx0);
  EXPECT_LT(bad.size(), all.size());
}

TEST(Liveness, NoRepeatedStateNoLasso) {
  // Strictly increasing variable: no state repeats, no lassos.
  program::ProgramBuilder b;
  const VarId x = b.var("x", 0);
  auto t = b.thread();
  for (int i = 1; i <= 4; ++i) t.write(x, program::lit(i));
  program::GreedyScheduler sched;
  const auto c = observe(b.build(), sched, {"x"});
  LivenessPredictor predictor(c.graph, c.space);
  EXPECT_TRUE(predictor.allLassos().empty());
}

TEST(Liveness, CrossThreadLassosFound) {
  // Two threads toggling different variables: lassos exist whose loops mix
  // both threads' events (the run revisits a joint state).
  program::ProgramBuilder b;
  const VarId x = b.var("x", 0);
  const VarId y = b.var("y", 0);
  auto t1 = b.thread();
  t1.write(x, program::lit(1)).write(x, program::lit(0));
  auto t2 = b.thread();
  t2.write(y, program::lit(1)).write(y, program::lit(0));
  program::GreedyScheduler sched;
  const auto c = observe(b.build(), sched, {"x", "y"});
  LivenessPredictor predictor(c.graph, c.space);
  const auto lassos = predictor.allLassos();
  ASSERT_FALSE(lassos.empty());
  bool crossThread = false;
  for (const auto& l : lassos) {
    std::set<ThreadId> threads;
    for (const auto& e : l.loopEvents) threads.insert(e.thread);
    if (threads.size() > 1) crossThread = true;
  }
  EXPECT_TRUE(crossThread);
}

TEST(Liveness, MaxViolationsCap) {
  const auto c = toggler();
  LivenessPredictor predictor(c.graph, c.space);
  LivenessOptions opts;
  opts.maxViolations = 2;
  const auto fgx0 = logic::LtlFormula::eventually(
      logic::LtlFormula::always(logic::LtlFormula::atom(slotEq(c.space, "x", 0))));
  EXPECT_LE(predictor.predict(fgx0, opts).size(), 2u);
}

}  // namespace
}  // namespace mpx::analysis
