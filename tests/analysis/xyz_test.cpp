// Paper Example 2 end to end (Fig. 6): the x/y/z program.
#include <gtest/gtest.h>

#include "analysis/predictive_analyzer.hpp"
#include "observer/run_enumerator.hpp"
#include "program/corpus.hpp"

namespace mpx::analysis {
namespace {

namespace corpus = program::corpus;

AnalysisResult analyzeObserved() {
  const program::Program prog = corpus::xyzProgram();
  AnalyzerConfig config;
  config.spec = corpus::xyzProperty();
  PredictiveAnalyzer analyzer(prog, config);
  program::FixedScheduler sched(corpus::xyzObservedSchedule());
  return analyzer.analyze(sched);
}

TEST(Xyz, ObservedStateSequenceMatchesPaper) {
  const AnalysisResult r = analyzeObserved();
  EXPECT_FALSE(r.observedRunViolates());
  ASSERT_EQ(r.observedStates.size(), 5u);
  EXPECT_EQ(r.observedStates[0].values, (std::vector<Value>{-1, 0, 0}));
  EXPECT_EQ(r.observedStates[1].values, (std::vector<Value>{0, 0, 0}));
  EXPECT_EQ(r.observedStates[2].values, (std::vector<Value>{0, 0, 1}));
  EXPECT_EQ(r.observedStates[3].values, (std::vector<Value>{1, 0, 1}));
  EXPECT_EQ(r.observedStates[4].values, (std::vector<Value>{1, 1, 1}));
}

TEST(Xyz, FourMessagesWithPaperClocks) {
  const AnalysisResult r = analyzeObserved();
  EXPECT_EQ(r.messagesEmitted, 4u);
  // Thread streams carry the Fig. 6 clocks.
  EXPECT_EQ(r.causality.message(0, 1).clock, (vc::VectorClock{1}));     // x=0
  EXPECT_EQ(r.causality.message(0, 2).clock, (vc::VectorClock{2}));     // y=1
  EXPECT_EQ(r.causality.message(1, 1).clock, (vc::VectorClock{1, 1}));  // z=1
  EXPECT_EQ(r.causality.message(1, 2).clock, (vc::VectorClock{1, 2}));  // x=1
}

TEST(Xyz, LatticeIsFigure6) {
  const AnalysisResult r = analyzeObserved();
  EXPECT_EQ(r.latticeStats.totalNodes, 7u);
  EXPECT_EQ(r.latticeStats.pathCount, 3u);
  EXPECT_EQ(r.latticeStats.levels, 5u);
}

TEST(Xyz, RightmostRunViolatesOthersDoNot) {
  const AnalysisResult r = analyzeObserved();
  const program::Program prog = corpus::xyzProgram();
  AnalyzerConfig config;
  config.spec = corpus::xyzProperty();
  PredictiveAnalyzer analyzer(prog, config);
  logic::SynthesizedMonitor monitor(analyzer.formula());
  observer::RunEnumerator runs(r.causality, r.space);
  std::size_t violating = 0;
  std::size_t total = 0;
  std::vector<observer::GlobalState> violatingStates;
  runs.forEachRun([&](const observer::Run& run) {
    ++total;
    if (monitor.firstViolation(run.states) >= 0) {
      ++violating;
      violatingStates = run.states;
    }
    return true;
  });
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(violating, 1u);
  // The violating run goes through (0,1,0): y set before z — the paper's
  // rightmost path S00 S10 S20 S21 S22.
  ASSERT_EQ(violatingStates.size(), 5u);
  EXPECT_EQ(violatingStates[2].values, (std::vector<Value>{0, 1, 0}));
}

TEST(Xyz, PredictsTheViolation) {
  const AnalysisResult r = analyzeObserved();
  ASSERT_TRUE(r.predictsViolation());
  // Counterexample: y=1 happens before z=1 and x=1.
  observer::RunEnumerator runs(r.causality, r.space);
  const auto& v = r.predictedViolations.front();
  EXPECT_TRUE(runs.isConsistentRun(v.path));
}

TEST(Xyz, GroundTruthAgrees) {
  const program::Program prog = corpus::xyzProgram();
  const GroundTruthResult truth = groundTruth(prog, corpus::xyzProperty());
  EXPECT_GT(truth.violatingExecutions, 0u);
  EXPECT_LT(truth.violatingExecutions, truth.totalExecutions);
}

TEST(Xyz, OfflineReanalysisMatchesOnline) {
  const program::Program prog = corpus::xyzProgram();
  AnalyzerConfig config;
  config.spec = corpus::xyzProperty();
  PredictiveAnalyzer analyzer(prog, config);
  program::FixedScheduler sched(corpus::xyzObservedSchedule());
  program::Executor ex(prog, sched);
  const program::ExecutionRecord rec = ex.run();

  const AnalysisResult offline = analyzer.analyzeRecord(rec);
  const AnalysisResult online = analyzeObserved();
  EXPECT_EQ(offline.latticeStats.totalNodes, online.latticeStats.totalNodes);
  EXPECT_EQ(offline.predictedViolations.size(),
            online.predictedViolations.size());
  EXPECT_EQ(offline.observedViolationIndex, online.observedViolationIndex);
}

TEST(Xyz, MoreDotsDoNotChangeTheLattice) {
  // Internal events are irrelevant: padding with more dots leaves the
  // computation lattice identical (paper: the dots "do not access x,y,z").
  for (const std::size_t dots : {0u, 1u, 3u, 6u}) {
    const program::Program prog = corpus::xyzProgram(dots);
    AnalyzerConfig config;
    config.spec = corpus::xyzProperty();
    PredictiveAnalyzer analyzer(prog, config);
    program::GreedyScheduler sched;
    const AnalysisResult r = analyzer.analyze(sched);
    EXPECT_EQ(r.messagesEmitted, 4u) << dots;
  }
}

}  // namespace
}  // namespace mpx::analysis
