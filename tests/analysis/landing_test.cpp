// Paper Example 1, end to end (Figs. 1 and 5): from ONE successful
// execution of the landing controller, MPX predicts the two violating
// runs, with counterexamples; the observed-run baseline sees nothing.
#include <gtest/gtest.h>

#include "analysis/predictive_analyzer.hpp"
#include "observer/run_enumerator.hpp"
#include "program/corpus.hpp"

namespace mpx::analysis {
namespace {

namespace corpus = program::corpus;

AnalysisResult analyzeObserved(trace::DeliveryPolicy delivery =
                                   trace::DeliveryPolicy::kFifo) {
  const program::Program prog = corpus::landingController();
  AnalyzerConfig config;
  config.spec = corpus::landingProperty();
  config.delivery = delivery;
  config.deliverySeed = 1234;
  PredictiveAnalyzer analyzer(prog, config);
  program::FixedScheduler sched(corpus::landingObservedSchedule());
  return analyzer.analyze(sched);
}

TEST(Landing, RelevantVariablesExtractedFromSpec) {
  const program::Program prog = corpus::landingController();
  AnalyzerConfig config;
  config.spec = corpus::landingProperty();
  PredictiveAnalyzer analyzer(prog, config);
  EXPECT_EQ(analyzer.relevantVariables(),
            (std::vector<std::string>{"landing", "approved", "radio"}));
}

TEST(Landing, ObservedRunIsSuccessful) {
  const AnalysisResult r = analyzeObserved();
  EXPECT_FALSE(r.observedRunViolates());
  // The observed state sequence is the paper's leftmost path.
  ASSERT_EQ(r.observedStates.size(), 4u);
  EXPECT_EQ(r.observedStates[0].values, (std::vector<Value>{0, 0, 1}));
  EXPECT_EQ(r.observedStates[1].values, (std::vector<Value>{0, 1, 1}));
  EXPECT_EQ(r.observedStates[2].values, (std::vector<Value>{1, 1, 1}));
  EXPECT_EQ(r.observedStates[3].values, (std::vector<Value>{1, 1, 0}));
}

TEST(Landing, ThreeMessagesEmitted) {
  const AnalysisResult r = analyzeObserved();
  EXPECT_EQ(r.messagesEmitted, 3u);
  EXPECT_GT(r.eventsInstrumented, r.messagesEmitted);
}

TEST(Landing, LatticeIsFigure5) {
  const AnalysisResult r = analyzeObserved();
  EXPECT_EQ(r.latticeStats.totalNodes, 6u);
  EXPECT_EQ(r.latticeStats.pathCount, 3u);
}

TEST(Landing, ViolationPredictedFromSuccessfulRun) {
  const AnalysisResult r = analyzeObserved();
  ASSERT_TRUE(r.predictsViolation());
  // The counterexample ends in the all-events cut at state <1,1,0>.
  const observer::Violation& v = r.predictedViolations.front();
  EXPECT_EQ(v.state.values, (std::vector<Value>{1, 1, 0}));
}

TEST(Landing, ExactlyTwoOfThreeRunsViolate) {
  const AnalysisResult r = analyzeObserved();
  observer::RunEnumerator runs(r.causality, r.space);
  const program::Program prog = corpus::landingController();
  AnalyzerConfig config;
  config.spec = corpus::landingProperty();
  PredictiveAnalyzer analyzer(prog, config);
  logic::SynthesizedMonitor monitor(analyzer.formula());
  std::size_t violating = 0;
  std::size_t total = 0;
  runs.forEachRun([&](const observer::Run& run) {
    ++total;
    if (monitor.firstViolation(run.states) >= 0) ++violating;
    return true;
  });
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(violating, 2u);
}

TEST(Landing, CounterexamplesAreRealizableSchedules) {
  const AnalysisResult r = analyzeObserved();
  observer::RunEnumerator runs(r.causality, r.space);
  for (const auto& v : r.predictedViolations) {
    EXPECT_TRUE(runs.isConsistentRun(v.path));
    const auto states = runs.statesAlong(v.path);
    EXPECT_EQ(states.back(), v.state);
  }
}

TEST(Landing, PredictionSurvivesChannelReordering) {
  for (const auto policy :
       {trace::DeliveryPolicy::kShuffle, trace::DeliveryPolicy::kReverse,
        trace::DeliveryPolicy::kBoundedDelay}) {
    const AnalysisResult r = analyzeObserved(policy);
    EXPECT_FALSE(r.observedRunViolates());
    EXPECT_TRUE(r.predictsViolation());
    EXPECT_EQ(r.latticeStats.totalNodes, 6u);
    EXPECT_EQ(r.latticeStats.pathCount, 3u);
  }
}

TEST(Landing, GroundTruthConfirmsThePrediction) {
  const program::Program prog = corpus::landingController();
  const GroundTruthResult truth =
      groundTruth(prog, corpus::landingProperty());
  EXPECT_GT(truth.violatingExecutions, 0u);
  EXPECT_LT(truth.violatingExecutions, truth.totalExecutions);
  EXPECT_EQ(truth.deadlockedExecutions, 0u);
  EXPECT_FALSE(truth.truncated);
}

TEST(Landing, RadioFirstRunPredictsNothing) {
  // If the radio dies before the controller reads it, approval is denied,
  // landing never starts: the computation has ONE run and no violation.
  const program::Program prog = corpus::landingController();
  AnalyzerConfig config;
  config.spec = corpus::landingProperty();
  PredictiveAnalyzer analyzer(prog, config);
  program::FixedScheduler sched({1, 1, 1});  // radio thread first
  const AnalysisResult r = analyzer.analyze(sched);
  EXPECT_FALSE(r.observedRunViolates());
  EXPECT_FALSE(r.predictsViolation());
}

TEST(Landing, DescribeRendersCounterexample) {
  const AnalysisResult r = analyzeObserved();
  ASSERT_TRUE(r.predictsViolation());
  const std::string text = r.describe(r.predictedViolations.front());
  EXPECT_NE(text.find("counterexample run"), std::string::npos);
  EXPECT_NE(text.find("radio=0"), std::string::npos);
  EXPECT_NE(text.find("landing=1"), std::string::npos);
}

}  // namespace
}  // namespace mpx::analysis
