// Prediction soundness on RANDOM programs: everything the lattice predicts
// is a consistent run that genuinely violates; under the sequential memory
// model, every predicted violating run is realizable by some actual
// schedule (checked against the exhaustive explorer on small programs).
#include <gtest/gtest.h>

#include "analysis/predictive_analyzer.hpp"
#include "observer/run_enumerator.hpp"
#include "program/corpus.hpp"
#include "program/explorer.hpp"

namespace mpx::analysis {
namespace {

namespace corpus = program::corpus;

struct SoundnessCase {
  std::uint64_t programSeed;
  std::uint64_t scheduleSeed;
  bool locks;
};

class PredictionSoundness : public ::testing::TestWithParam<SoundnessCase> {
 protected:
  static corpus::RandomProgramOptions programOptions(bool locks) {
    corpus::RandomProgramOptions opts;
    opts.threads = 2;
    opts.vars = 2;
    opts.opsPerThread = 4;
    opts.locks = locks ? 1 : 0;
    return opts;
  }

  // An arbitrary safety property over the two shared variables: "g0 never
  // exceeds g1 + 3 after once being equal to g1".  Contrived, but it has
  // real temporal structure and both variables.
  static const char* spec() { return "once(g0 = g1) -> g0 <= g1 + 3"; }
};

TEST_P(PredictionSoundness, PredictedCounterexamplesVerify) {
  const SoundnessCase c = GetParam();
  const program::Program prog =
      corpus::randomProgram(c.programSeed, programOptions(c.locks));
  AnalyzerConfig config;
  config.spec = spec();
  PredictiveAnalyzer analyzer(prog, config);
  const AnalysisResult r = analyzer.analyzeWithSeed(c.scheduleSeed);

  observer::RunEnumerator runs(r.causality, r.space);
  logic::SynthesizedMonitor monitor(analyzer.formula());
  for (const auto& v : r.predictedViolations) {
    ASSERT_TRUE(runs.isConsistentRun(v.path));
    EXPECT_GE(monitor.firstViolation(runs.statesAlong(v.path)), 0);
  }
}

TEST_P(PredictionSoundness, LatticeAgreesWithRunEnumeration) {
  const SoundnessCase c = GetParam();
  const program::Program prog =
      corpus::randomProgram(c.programSeed, programOptions(c.locks));
  AnalyzerConfig config;
  config.spec = spec();
  PredictiveAnalyzer analyzer(prog, config);
  const AnalysisResult r = analyzer.analyzeWithSeed(c.scheduleSeed);

  observer::RunEnumerator runs(r.causality, r.space);
  logic::SynthesizedMonitor monitor(analyzer.formula());
  bool someRunViolates = false;
  std::size_t runCount = 0;
  runs.forEachRun([&](const observer::Run& run) {
    ++runCount;
    if (monitor.firstViolation(run.states) >= 0) someRunViolates = true;
    return true;
  });
  EXPECT_EQ(r.predictsViolation(), someRunViolates);
  EXPECT_EQ(r.latticeStats.pathCount, runCount);
}

TEST_P(PredictionSoundness, PredictionsAreRealizableBySomeSchedule) {
  // Under sequential consistency, a predicted violating run corresponds to
  // a real schedule of the program — the exhaustive explorer must agree
  // that SOME schedule violates whenever the analyzer predicts from any
  // observed run.  (The converse need not hold for a single observation:
  // a different observed run may fix different values.)
  const SoundnessCase c = GetParam();
  const program::Program prog =
      corpus::randomProgram(c.programSeed, programOptions(c.locks));
  AnalyzerConfig config;
  config.spec = spec();
  PredictiveAnalyzer analyzer(prog, config);
  const AnalysisResult r = analyzer.analyzeWithSeed(c.scheduleSeed);
  if (!r.predictsViolation()) GTEST_SKIP() << "nothing predicted";

  const GroundTruthResult truth = groundTruth(prog, spec());
  EXPECT_GT(truth.violatingExecutions, 0u)
      << "prediction not realizable by any schedule";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PredictionSoundness,
    ::testing::Values(SoundnessCase{11, 1, false}, SoundnessCase{12, 2, false},
                      SoundnessCase{13, 3, false}, SoundnessCase{14, 4, true},
                      SoundnessCase{15, 5, true}, SoundnessCase{16, 6, true},
                      SoundnessCase{17, 7, false}, SoundnessCase{18, 8, true},
                      SoundnessCase{19, 9, false},
                      SoundnessCase{20, 10, true}),
    [](const ::testing::TestParamInfo<SoundnessCase>& info) {
      return "p" + std::to_string(info.param.programSeed) + "s" +
             std::to_string(info.param.scheduleSeed) +
             (info.param.locks ? "L" : "");
    });

TEST(PredictionSoundnessAggregate, SomeRandomProgramPredictsAndIsRealizable) {
  // Hunt across seeds for a (program, schedule) where the analyzer
  // actually predicts a violation of a tighter property, then confirm the
  // exhaustive explorer can realize one.
  corpus::RandomProgramOptions opts;
  opts.threads = 2;
  opts.vars = 2;
  opts.opsPerThread = 4;
  const char* tightSpec = "historically g0 <= g1 + 4";
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 60 && !found; ++seed) {
    const program::Program prog = corpus::randomProgram(seed, opts);
    AnalyzerConfig config;
    config.spec = tightSpec;
    PredictiveAnalyzer analyzer(prog, config);
    const AnalysisResult r = analyzer.analyzeWithSeed(seed * 13 + 5);
    if (!r.predictsViolation()) continue;
    found = true;
    const GroundTruthResult truth = groundTruth(prog, tightSpec);
    EXPECT_GT(truth.violatingExecutions, 0u) << "seed " << seed;
  }
  EXPECT_TRUE(found) << "no random program predicted a violation — the "
                        "sweep lost its teeth";
}

TEST(PredictionPower, PredictiveBeatsObservedOnTheLandingBug) {
  // Claim C1: over many random schedules, the predictive analyzer detects
  // the landing bug far more often than the observed-run baseline.
  const program::Program prog = corpus::landingController(/*padding=*/3);
  const std::string spec = corpus::landingProperty();
  PredictiveAnalyzer analyzer(prog, specConfig(spec));
  ObservedRunChecker baseline(prog, spec);

  std::size_t observedDetects = 0;
  std::size_t predictedDetects = 0;
  const std::size_t kTrials = 60;
  for (std::uint64_t seed = 0; seed < kTrials; ++seed) {
    program::RandomScheduler s(seed);
    program::Executor ex(prog, s);
    const auto rec = ex.run();
    if (baseline.detectsOnRecord(rec)) ++observedDetects;
    if (analyzer.analyzeRecord(rec).predictsViolation()) ++predictedDetects;
  }
  EXPECT_GE(predictedDetects, observedDetects);
  EXPECT_GT(predictedDetects, observedDetects + kTrials / 10)
      << "prediction should be substantially stronger on this workload";
}

}  // namespace
}  // namespace mpx::analysis
