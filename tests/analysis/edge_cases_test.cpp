// Edge cases and robustness across the whole pipeline.
#include <gtest/gtest.h>

#include <random>

#include "analysis/predictive_analyzer.hpp"
#include "logic/parser.hpp"
#include "program/corpus.hpp"
#include "trace/codec.hpp"

namespace mpx::analysis {
namespace {

TEST(EdgeCases, NoRelevantEventsAtAll) {
  // The spec's variable is never written: the lattice is the single
  // initial state and the verdict comes from it alone.
  program::ProgramBuilder b;
  b.var("watched", 5);
  const VarId other = b.var("other", 0);
  auto t = b.thread();
  t.write(other, program::lit(1));
  const program::Program prog = b.build();

  PredictiveAnalyzer holds(prog, specConfig("watched = 5"));
  program::GreedyScheduler s1;
  const AnalysisResult r1 = holds.analyze(s1);
  EXPECT_EQ(r1.messagesEmitted, 0u);
  EXPECT_EQ(r1.latticeStats.totalNodes, 1u);
  EXPECT_EQ(r1.latticeStats.pathCount, 1u);
  EXPECT_FALSE(r1.predictsViolation());

  PredictiveAnalyzer fails(prog, specConfig("watched = 6"));
  program::GreedyScheduler s2;
  const AnalysisResult r2 = fails.analyze(s2);
  EXPECT_TRUE(r2.observedRunViolates());
  EXPECT_TRUE(r2.predictsViolation());
  EXPECT_TRUE(r2.predictedViolations.front().path.empty());
}

TEST(EdgeCases, EmptyThreadsOnlyExitEvents) {
  program::ProgramBuilder b;
  b.var("x", 0);
  b.thread();
  b.thread();
  const program::Program prog = b.build();
  PredictiveAnalyzer analyzer(prog, specConfig("x = 0"));
  program::GreedyScheduler sched;
  const AnalysisResult r = analyzer.analyze(sched);
  EXPECT_EQ(r.messagesEmitted, 0u);
  EXPECT_FALSE(r.predictsViolation());
}

TEST(EdgeCases, SingleWriteSingleThread) {
  program::ProgramBuilder b;
  const VarId x = b.var("x", 0);
  auto t = b.thread();
  t.write(x, program::lit(1));
  const program::Program prog = b.build();
  PredictiveAnalyzer analyzer(prog, specConfig("x <= 1"));
  program::GreedyScheduler sched;
  const AnalysisResult r = analyzer.analyze(sched);
  EXPECT_EQ(r.latticeStats.totalNodes, 2u);
  EXPECT_EQ(r.latticeStats.pathCount, 1u);
  EXPECT_FALSE(r.predictsViolation());
}

TEST(EdgeCases, MaxViolationsOne) {
  const program::Program prog = program::corpus::mutualExclusionNaive();
  AnalyzerConfig config;
  config.spec = program::corpus::mutualExclusionProperty();
  config.lattice.maxViolations = 1;
  PredictiveAnalyzer analyzer(prog, config);
  program::GreedyScheduler sched;
  const AnalysisResult r = analyzer.analyze(sched);
  EXPECT_EQ(r.predictedViolations.size(), 1u);
}

TEST(EdgeCases, CodecSurvivesTruncationAtEveryOffset) {
  // Every truncation point either decodes a prefix or throws — never UB.
  const program::Program prog = program::corpus::xyzProgram();
  program::FixedScheduler sched(program::corpus::xyzObservedSchedule());
  PredictiveAnalyzer analyzer(
      prog, specConfig(program::corpus::xyzProperty()));
  const AnalysisResult r = analyzer.analyze(sched);
  std::vector<trace::Message> msgs;
  for (const auto& ref : r.observedRun) {
    msgs.push_back(r.causality.message(ref));
  }
  const auto bytes = trace::BinaryCodec::encodeAll(msgs);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() +
                                         static_cast<std::ptrdiff_t>(cut));
    try {
      const auto decoded = trace::BinaryCodec::decodeAll(prefix);
      EXPECT_LE(decoded.size(), msgs.size());
    } catch (const std::runtime_error&) {
      // acceptable
    }
  }
}

TEST(EdgeCases, ParserNeverCrashesOnGarbage) {
  trace::VarTable table;
  table.intern("x", 0);
  const auto space = observer::StateSpace::byNames(table, {"x"});
  const logic::SpecParser parser(space);
  std::mt19937_64 rng(99);
  const std::string alphabet = "x01 ()[]<>=!&|+-*/,@S历";
  for (int round = 0; round < 500; ++round) {
    std::string text;
    const std::size_t len = rng() % 20;
    for (std::size_t i = 0; i < len; ++i) {
      text += alphabet[rng() % alphabet.size()];
    }
    try {
      (void)parser.parse(text);
    } catch (const logic::SpecError&) {
      // expected for most inputs
    }
  }
  SUCCEED();
}

TEST(EdgeCases, MonitorOnSingleStateTrace) {
  trace::VarTable table;
  table.intern("x", 0);
  const auto space = observer::StateSpace::byNames(table, {"x"});
  logic::SynthesizedMonitor mon(
      logic::SpecParser(space).parse("once x = 1 -> prev x = 1"));
  EXPECT_EQ(mon.firstViolation({observer::GlobalState({0})}), -1);
}

TEST(EdgeCases, AnalyzeRecordOfDeadlockedExecution) {
  // A deadlocked execution still yields a (partial) trace the analyzer can
  // process: the emitted prefix is a valid computation.
  program::ProgramBuilder b;
  const LockId l1 = b.lock("a");
  const LockId l2 = b.lock("b");
  const VarId x = b.var("x", 0);
  auto t1 = b.thread();
  t1.lockAcquire(l1).write(x, program::lit(1)).lockAcquire(l2)
      .lockRelease(l2).lockRelease(l1);
  auto t2 = b.thread();
  t2.lockAcquire(l2).write(x, program::lit(2)).lockAcquire(l1)
      .lockRelease(l1).lockRelease(l2);
  const program::Program prog = b.build();
  program::FixedScheduler sched({0, 0, 1, 1});  // both grab first lock
  program::Executor ex(prog, sched);
  const auto rec = ex.run();
  ASSERT_TRUE(rec.deadlocked);

  PredictiveAnalyzer analyzer(prog, specConfig("x >= 0"));
  const AnalysisResult r = analyzer.analyzeRecord(rec);
  EXPECT_FALSE(r.predictsViolation());
  EXPECT_GT(r.messagesEmitted, 0u);
}

TEST(EdgeCases, HugeValuesRoundTrip) {
  program::ProgramBuilder b;
  const VarId x = b.var("x", std::numeric_limits<Value>::min());
  auto t = b.thread();
  t.write(x, program::lit(std::numeric_limits<Value>::max()));
  const program::Program prog = b.build();
  PredictiveAnalyzer analyzer(prog, specConfig("x != 0"));
  program::GreedyScheduler sched;
  const AnalysisResult r = analyzer.analyze(sched);
  EXPECT_FALSE(r.predictsViolation());
  EXPECT_EQ(r.observedStates.back().values[0],
            std::numeric_limits<Value>::max());
}

TEST(EdgeCases, ManyThreadsOneEventEach) {
  program::ProgramBuilder b;
  const VarId x = b.var("x", 0);
  for (int i = 0; i < 8; ++i) {
    auto t = b.thread();
    t.write(x, program::lit(i + 1));
  }
  const program::Program prog = b.build();
  PredictiveAnalyzer analyzer(prog, specConfig("x >= 0"));
  program::GreedyScheduler sched;
  const AnalysisResult r = analyzer.analyze(sched);
  // Writes of the same variable are totally ordered: a path lattice.
  EXPECT_EQ(r.latticeStats.pathCount, 1u);
  EXPECT_EQ(r.latticeStats.totalNodes, 9u);
}

}  // namespace
}  // namespace mpx::analysis
