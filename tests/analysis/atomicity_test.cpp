// Unit coverage for the ISSUE 10 analyses: AtomicityAnalysis (annotated
// atomic regions checked for conflict serializability) and MhpPrefilter
// (never-concurrent pair classification + lockset race-free variables),
// including the hostile-input shapes (unmatched ends, regions open at
// trace end / stream death), checkpoint/restore across an open region,
// and budget-degraded runs staying oracle-confirmed.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "../support/trace_gen.hpp"
#include "analysis/atomicity_analysis.hpp"
#include "analysis/engine.hpp"
#include "analysis/mhp_prefilter.hpp"
#include "analysis/report.hpp"
#include "analysis/session.hpp"
#include "detect/race_analysis.hpp"
#include "program/corpus.hpp"
#include "program/program.hpp"
#include "program/scheduler.hpp"

namespace mpx::analysis {
namespace {

namespace corpus = program::corpus;
using program::lit;

/// Runs `prog` under a fixed schedule with the two plugins on the engine
/// bus (no specs: plugin-only pass over the given tracked variables).
struct PluginRun {
  EngineResult result;
  std::unique_ptr<AtomicityAnalysis> atom;
  std::unique_ptr<MhpPrefilter> mhp;
};

PluginRun runWithSchedule(const program::Program& prog,
                          const std::vector<ThreadId>& schedule,
                          const std::vector<std::string>& tracked) {
  program::FixedScheduler sched(schedule);
  program::Executor ex(prog, sched);
  EngineConfig ec;
  ec.extraTrackedVars = tracked;
  const Engine engine(prog, ec);
  PluginRun out;
  out.atom = std::make_unique<AtomicityAnalysis>(&prog.vars);
  out.mhp = std::make_unique<MhpPrefilter>(&prog.vars);
  out.result = engine.run(ex.run(), {out.mhp.get(), out.atom.get()});
  return out;
}

// ===================================================================
// AtomicityAnalysis
// ===================================================================

TEST(Atomicity, DemoViolationWithWitnessCycle) {
  const program::Program prog = corpus::atomicityDemo();
  const PluginRun r = runWithSchedule(
      prog, corpus::atomicityDemoViolatingSchedule(), {"acct", "audit"});

  const auto viol = r.atom->violations();
  ASSERT_EQ(viol.size(), 1u);
  EXPECT_EQ(viol[0].thread, 0u);
  EXPECT_EQ(viol[0].ordinal, 1u);
  EXPECT_EQ(viol[0].regionId, 1);
  // The canonical witness starts and ends at the violating region and
  // passes through the bumper's unannotated pair.
  ASSERT_GE(viol[0].cycle.size(), 3u);
  EXPECT_EQ(viol[0].cycle.front(), "T1#1");
  EXPECT_EQ(viol[0].cycle.back(), "T1#1");
  EXPECT_TRUE(std::any_of(viol[0].cycle.begin(), viol[0].cycle.end(),
                          [](const std::string& n) {
                            return n.rfind("T2@k", 0) == 0;
                          }));

  EXPECT_EQ(r.atom->regionCount(), 1u);
  EXPECT_EQ(r.atom->openRegions(), 0u);
  EXPECT_EQ(r.atom->unmatchedEnds(), 0u);
  const observer::AnalysisReport rep = r.atom->report();
  EXPECT_EQ(rep.violationCount, 1u);
  EXPECT_NE(rep.text.find("violations=1"), std::string::npos) << rep.text;
  EXPECT_NE(rep.text.find("region T1#1 r1: cycle"), std::string::npos)
      << rep.text;
}

TEST(Atomicity, SerialScheduleIsSerializable) {
  const program::Program prog = corpus::atomicityDemo();
  // Checker runs to completion before the bumper starts: trivially serial.
  const PluginRun r = runWithSchedule(prog, {0, 0, 0, 0, 0, 1, 1, 1},
                                      {"acct", "audit"});
  EXPECT_TRUE(r.atom->violations().empty());
  EXPECT_EQ(r.atom->regionCount(), 1u);
  EXPECT_NE(r.atom->report().text.find("violations=0"), std::string::npos);
}

TEST(Atomicity, NestedRegionsMergeIntoOutermost) {
  program::ProgramBuilder b;
  const VarId x = b.var("x", 0);
  const VarId y = b.var("y", 0);
  auto t0 = b.thread("outer");
  t0.regionBegin(1);
  t0.write(x, lit(1));
  t0.regionBegin(2);  // nested: merges into region 1
  t0.write(y, lit(1));
  t0.regionEnd(2);
  t0.regionEnd(1);
  auto t1 = b.thread("other");
  t1.write(x, lit(2));
  t1.write(y, lit(2));
  const program::Program prog = b.build();

  // t1's pair lands between the region's two writes: cycle through the
  // merged (outermost) region.
  const PluginRun r =
      runWithSchedule(prog, {0, 0, 1, 1, 0, 0, 0, 0, 0, 1}, {"x", "y"});
  const auto viol = r.atom->violations();
  ASSERT_EQ(viol.size(), 1u);
  EXPECT_EQ(viol[0].regionId, 1);  // the outermost region's id
  // The nested begin did NOT open a second region.
  EXPECT_EQ(r.atom->regionCount(), 1u);
  EXPECT_EQ(viol[0].ordinal, 1u);
}

TEST(Atomicity, EmptyRegionIsTrivial) {
  program::ProgramBuilder b;
  const VarId x = b.var("x", 0);
  auto t0 = b.thread("annotator");
  t0.regionBegin(5);
  t0.regionEnd(5);
  t0.write(x, lit(1));
  auto t1 = b.thread("writer");
  t1.write(x, lit(2));
  const program::Program prog = b.build();

  const PluginRun r = runWithSchedule(prog, {0, 0, 1, 0, 0, 1}, {"x"});
  EXPECT_EQ(r.atom->regionCount(), 1u);
  EXPECT_TRUE(r.atom->violations().empty());
  EXPECT_EQ(r.atom->openRegions(), 0u);
}

TEST(Atomicity, UnmatchedEndIsCountedNoOp) {
  program::ProgramBuilder b;
  const VarId x = b.var("x", 0);
  auto t0 = b.thread("hostile");
  t0.regionEnd(9);  // end without begin: counted, otherwise a no-op
  t0.write(x, lit(1));
  auto t1 = b.thread("writer");
  t1.write(x, lit(2));
  const program::Program prog = b.build();

  const PluginRun r = runWithSchedule(prog, {0, 0, 1, 0, 1}, {"x"});
  EXPECT_EQ(r.atom->unmatchedEnds(), 1u);
  EXPECT_EQ(r.atom->regionCount(), 0u);
  EXPECT_TRUE(r.atom->violations().empty());
  EXPECT_NE(r.atom->report().text.find("unmatched-ends=1"),
            std::string::npos);
}

TEST(Atomicity, OpenRegionAtTraceEndIsChecked) {
  program::ProgramBuilder b;
  const VarId x = b.var("x", 0);
  const VarId y = b.var("y", 0);
  auto t0 = b.thread("unclosed");
  t0.regionBegin(3);
  t0.write(x, lit(1));
  t0.write(y, lit(1));
  // No regionEnd: the region extends to the end of the trace.
  auto t1 = b.thread("other");
  t1.write(x, lit(2));
  t1.write(y, lit(2));
  const program::Program prog = b.build();

  const PluginRun r =
      runWithSchedule(prog, {0, 0, 1, 1, 0, 0, 1}, {"x", "y"});
  EXPECT_EQ(r.atom->openRegions(), 1u);
  EXPECT_EQ(r.atom->regionCount(), 1u);
  const auto viol = r.atom->violations();
  ASSERT_EQ(viol.size(), 1u);
  EXPECT_EQ(viol[0].regionId, 3);
  EXPECT_NE(r.atom->report().text.find("open-regions=1"), std::string::npos);
}

TEST(Atomicity, PluginCheckpointRoundTrip) {
  const program::Program prog = corpus::atomicityDemo();
  const PluginRun r = runWithSchedule(
      prog, corpus::atomicityDemoViolatingSchedule(), {"acct", "audit"});

  observer::ckpt::Writer w;
  r.atom->checkpoint(w);
  const std::vector<std::uint8_t> blob = w.take();
  observer::ckpt::Reader rd(blob);
  AtomicityAnalysis fresh(&prog.vars);
  ASSERT_TRUE(fresh.restore(rd));
  EXPECT_EQ(fresh.report().text, r.atom->report().text);
  ASSERT_EQ(fresh.violations().size(), 1u);
  EXPECT_EQ(fresh.violations()[0].cycle, r.atom->violations()[0].cycle);
}

// ===================================================================
// AnalyzerSession integration: daemon-side plugins, stream death,
// checkpoint/restore across an open region.
// ===================================================================

/// The demo trace's messages in delivered (fifo) order.
std::vector<trace::Message> demoMessages(const EngineResult& r) {
  std::vector<trace::Message> msgs;
  for (const auto& ref : r.causality.observedOrder()) {
    msgs.push_back(r.causality.message(ref));
  }
  return msgs;
}

AnalyzerSession::Config demoSessionConfig(const program::Program& prog,
                                          std::vector<std::string> analyses) {
  AnalyzerSession::Config cfg;
  cfg.threads = static_cast<std::uint32_t>(prog.threadCount());
  cfg.specs = {"acct <= 100"};
  cfg.handshakeSpecs = cfg.specs;
  cfg.tracked = {"acct", "audit"};
  cfg.vars = prog.vars;
  cfg.analyses = std::move(analyses);
  return cfg;
}

TEST(AtomicitySession, UnknownAnalysisNameThrows) {
  const program::Program prog = corpus::atomicityDemo();
  EXPECT_THROW(AnalyzerSession(demoSessionConfig(prog, {"bogus"})),
               std::runtime_error);
}

TEST(AtomicitySession, ReportRendersAtIncompleteStreamDeath) {
  const program::Program prog = corpus::atomicityDemo();
  const PluginRun base = runWithSchedule(
      prog, corpus::atomicityDemoViolatingSchedule(), {"acct", "audit"});
  const std::vector<trace::Message> msgs = demoMessages(base.result);

  // Feed only a prefix that leaves the checker's region OPEN, then "lose"
  // the client: no end-of-trace ever arrives.  The atomicity report must
  // still render (recomputed from the buffered log) with the open region
  // counted.
  std::size_t cut = 0;
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    if (msgs[i].event.kind == trace::EventKind::kRegionBegin) cut = i + 2;
  }
  ASSERT_GT(cut, 0u);
  ASSERT_LT(cut, msgs.size());

  AnalyzerSession session(demoSessionConfig(prog, {"atomicity"}));
  const char* err = nullptr;
  for (std::size_t i = 0; i < cut; ++i) {
    ASSERT_NE(session.ingest(msgs[i], &err), AnalyzerSession::Ingest::kError)
        << err;
  }
  ASSERT_FALSE(session.finished());
  const auto reports = session.analysisReports();
  ASSERT_EQ(reports.size(), 2u);  // spec plugin + atomicity
  const observer::AnalysisReport& atom = reports.back();
  EXPECT_EQ(atom.kind, "atomicity");
  EXPECT_NE(atom.text.find("open-regions=1"), std::string::npos) << atom.text;
}

TEST(AtomicitySession, CheckpointRestoreSpansOpenRegion) {
  const program::Program prog = corpus::atomicityDemo();
  const PluginRun base = runWithSchedule(
      prog, corpus::atomicityDemoViolatingSchedule(), {"acct", "audit"});
  const std::vector<trace::Message> msgs = demoMessages(base.result);

  // Uninterrupted reference: both daemon-side plugins active.
  AnalyzerSession ref(demoSessionConfig(prog, {"atomicity", "mhp"}));
  const char* err = nullptr;
  for (const auto& m : msgs) {
    ASSERT_NE(ref.ingest(m, &err), AnalyzerSession::Ingest::kError) << err;
  }
  ref.noteStreamEnd();
  ASSERT_TRUE(ref.finished()) << ref.streamError();
  const std::string want = renderAnalysisReports(ref.analysisReports());
  EXPECT_NE(want.find("violations=1"), std::string::npos) << want;

  // Same walk, but the session is torn down and rebuilt from its own
  // checkpoint blob after EVERY message — including the ones landing
  // inside the still-open region.
  auto live = std::make_unique<AnalyzerSession>(
      demoSessionConfig(prog, {"atomicity", "mhp"}));
  for (const auto& m : msgs) {
    ASSERT_NE(live->ingest(m, &err), AnalyzerSession::Ingest::kError) << err;
    observer::ckpt::Writer w;
    live->checkpoint(w);
    const std::vector<std::uint8_t> blob = w.take();
    observer::ckpt::Reader r(blob);
    auto restored = AnalyzerSession::restore(r);
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->config().analyses, live->config().analyses);
    live = std::move(restored);
  }
  live->noteStreamEnd();
  ASSERT_TRUE(live->finished()) << live->streamError();
  EXPECT_EQ(renderAnalysisReports(live->analysisReports()), want);
}

// ===================================================================
// Budget degradation: the lattice may shed runs, but the atomicity
// verdict is message-fed — its violations must stay exactly the
// oracle-confirmed set on every BOUNDED run.
// ===================================================================

TEST(Atomicity, BudgetDegradedRunsStayOracleConfirmed) {
  std::size_t accepted = 0;
  std::size_t boundedRuns = 0;
  for (std::uint64_t seed = 1; accepted < 40 && seed < 4000; ++seed) {
    const auto c = mpx::testing::generateAtomicityCase(seed);
    EngineConfig ec;
    ec.specs = {c.spec};
    ec.deliverySeed = c.shuffleSeed;
    ec.lattice.maxViolations = std::size_t{1} << 20;
    ec.lattice.parallel.minFrontier = 1;
    ec.lattice.maxFrontier = 1;  // harshest frontier budget
    const Engine engine(c.program, ec);
    AtomicityAnalysis atom(&c.program.vars);
    const EngineResult r = engine.runWithSeed(c.scheduleSeed, {&atom});

    const mpx::testing::AtomicityOracle oracle(r.causality);
    if (!oracle.result().feasible) continue;
    ++accepted;
    if (r.latticeStats.bounded()) ++boundedRuns;

    std::set<std::pair<ThreadId, std::size_t>> got;
    for (const auto& v : atom.violations()) got.emplace(v.thread, v.ordinal);
    EXPECT_EQ(got, oracle.result().violations) << "seed " << seed;
  }
  ASSERT_GE(accepted, 40u);
  ASSERT_GT(boundedRuns, 0u);  // the budget must actually have bitten
}

// ===================================================================
// MhpPrefilter
// ===================================================================

TEST(MhpPrefilter, LockDisciplinedPairsAndRaceFreeVars) {
  const program::Program prog = corpus::lockDisciplined(3, 2, 2);
  EngineConfig ec;
  ec.extraTrackedVars = {"data", "aux0", "aux1"};
  const Engine engine(prog, ec);
  MhpPrefilter mhp(&prog.vars);
  const EngineResult r = engine.runWithSeed(7, {&mhp});
  (void)r;

  // Every access holds the one global lock, so every tracked pair is
  // clock-certified never-concurrent...
  const auto pairs = mhp.neverConcurrentPairs();
  EXPECT_EQ(pairs.size(), 3u) << "expected all 3 pairs of 3 variables";
  for (const auto& [lo, hi] : pairs) EXPECT_LT(lo, hi);

  // ...and every variable is lockset-certified race-free.
  const auto raceFree = mhp.raceFreeVars();
  std::set<VarId> rf(raceFree.begin(), raceFree.end());
  EXPECT_TRUE(rf.count(prog.vars.id("data")));
  EXPECT_TRUE(rf.count(prog.vars.id("aux0")));

  const observer::AnalysisReport rep = mhp.report();
  EXPECT_EQ(rep.kind, "mhp");
  EXPECT_NE(rep.text.find("never-concurrent-pairs=3"), std::string::npos)
      << rep.text;
}

TEST(MhpPrefilter, RacyVariableIsNeitherOrderedNorRaceFree) {
  // x is lock-protected in both threads; y is written bare by both.
  program::ProgramBuilder b;
  const VarId x = b.var("x", 0);
  const VarId y = b.var("y", 0);
  const LockId l = b.lock("L");
  for (int i = 0; i < 2; ++i) {
    auto t = b.thread("t" + std::to_string(i));
    t.lockAcquire(l);
    t.write(x, lit(i + 1));
    t.lockRelease(l);
    t.write(y, lit(i + 1));
  }
  const program::Program prog = b.build();
  (void)x;
  (void)y;

  // Interleave the bare y writes so they are genuinely concurrent.
  const PluginRun r =
      runWithSchedule(prog, {0, 0, 0, 1, 1, 1, 0, 1, 0, 1}, {"x", "y"});

  const auto raceFree = r.mhp->raceFreeVars();
  const std::set<VarId> rf(raceFree.begin(), raceFree.end());
  EXPECT_TRUE(rf.count(prog.vars.id("x")));   // common lock
  EXPECT_FALSE(rf.count(prog.vars.id("y")));  // bare cross-thread writes

  // (x, y) must NOT be classified never-concurrent: the bare y writes are
  // unordered against x's critical sections.
  const auto xy = std::minmax(prog.vars.id("x"), prog.vars.id("y"));
  for (const auto& p : r.mhp->neverConcurrentPairs()) {
    EXPECT_NE(p, std::make_pair(xy.first, xy.second));
  }
}

TEST(MhpPrefilter, SuppressesRaceReportsOnCertifiedVars) {
  // The native-mutex integration shape: locks are REPORTED in each raw
  // event's lockset but the lock operations themselves are not
  // instrumented as events.  The race detector's causality then cannot
  // order the two x critical sections (no lock joins), so x becomes an
  // HB race candidate — but the lockset census still certifies x
  // race-free (one common lock over every access), and the suppression
  // hook removes the report.  The bare y race must survive.
  program::ProgramBuilder b;
  const VarId x = b.var("x", 0);
  const VarId y = b.var("y", 0);
  (void)b.lock("L");
  const program::Program prog = b.build();

  MhpPrefilter mhp(&prog.vars);
  detect::RaceAnalysis race(prog, {"x", "y"});
  // The prefilter precedes RaceAnalysis on the bus, so its census is
  // complete when the suppression source is consulted in finish().
  race.setSuppressionSource([&mhp] { return mhp.raceFreeVars(); });

  const auto feed = [&](ThreadId t, VarId var, LocalSeq k, GlobalSeq g,
                        const std::vector<LockId>& locks) {
    trace::Event e;
    e.kind = trace::EventKind::kWrite;
    e.thread = t;
    e.var = var;
    e.value = 1;
    e.localSeq = k;
    e.globalSeq = g;
    mhp.onRawEvent(e, locks);
    race.onRawEvent(e, locks);
  };
  feed(0, x, 1, 1, {0});
  feed(1, x, 1, 2, {0});
  feed(0, y, 2, 3, {});
  feed(1, y, 2, 4, {});

  const observer::LatticeStats stats;
  mhp.finish(stats);
  race.finish(stats);

  // The bare y race survives; the certified x candidate is suppressed.
  ASSERT_EQ(race.races().size(), 1u);
  EXPECT_EQ(race.races()[0].var, y);
  EXPECT_NE(race.report().text.find("mhp-suppressed: 1"), std::string::npos)
      << race.report().text;
}

TEST(MhpPrefilter, ClassifyNeverConcurrentStatic) {
  const auto msg = [](ThreadId t, VarId var, LocalSeq k,
                      std::vector<std::uint64_t> clock) {
    trace::Message m;
    m.event.kind = trace::EventKind::kWrite;
    m.event.thread = t;
    m.event.var = var;
    m.event.localSeq = k;
    m.event.globalSeq = clock[0] + clock[1];
    vc::VectorClock vc(clock.size());
    for (std::size_t i = 0; i < clock.size(); ++i) {
      vc.set(static_cast<ThreadId>(i), clock[i]);
    }
    m.clock = std::move(vc);
    return m;
  };

  // var 0 @ T0 with clock (1,0); var 1 @ T1 with clock (1,1): the second
  // access has seen the first -> ordered -> never-concurrent.
  EXPECT_EQ(MhpPrefilter::classifyNeverConcurrent(
                {msg(0, 0, 1, {1, 0}), msg(1, 1, 1, {1, 1})}),
            (std::vector<std::pair<VarId, VarId>>{{0, 1}}));

  // var 0 @ T0 with clock (1,0); var 1 @ T1 with clock (0,1): neither saw
  // the other -> concurrent -> no pair.
  EXPECT_TRUE(MhpPrefilter::classifyNeverConcurrent(
                  {msg(0, 0, 1, {1, 0}), msg(1, 1, 1, {0, 1})})
                  .empty());

  // Same-thread accesses are ordered by program order regardless of the
  // other components.
  EXPECT_EQ(MhpPrefilter::classifyNeverConcurrent(
                {msg(0, 0, 1, {1, 0}), msg(0, 1, 2, {2, 0})}),
            (std::vector<std::pair<VarId, VarId>>{{0, 1}}));
}

TEST(MhpPrefilter, PluginCheckpointRoundTrip) {
  const program::Program prog = corpus::lockDisciplined(2, 1, 1);
  EngineConfig ec;
  ec.extraTrackedVars = {"data", "aux0"};
  const Engine engine(prog, ec);
  MhpPrefilter mhp(&prog.vars);
  (void)engine.runWithSeed(3, {&mhp});

  observer::ckpt::Writer w;
  mhp.checkpoint(w);
  const std::vector<std::uint8_t> blob = w.take();
  observer::ckpt::Reader rd(blob);
  MhpPrefilter fresh(&prog.vars);
  ASSERT_TRUE(fresh.restore(rd));
  EXPECT_EQ(fresh.neverConcurrentPairs(), mhp.neverConcurrentPairs());
  EXPECT_EQ(fresh.raceFreeVars(), mhp.raceFreeVars());
  EXPECT_EQ(fresh.report().text, mhp.report().text);
}

}  // namespace
}  // namespace mpx::analysis
