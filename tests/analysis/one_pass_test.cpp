// One-pass equivalence (the tentpole guarantee): checking K properties as
// plugins in ONE lattice pass produces byte-identical per-property reports
// to K independent single-property passes — for serial and parallel
// expansion and for shuffled message delivery.
//
// The baselines track the UNION of all specs' variables (ptLTL is
// stutter-sensitive, so the reference semantics is a single-property pass
// over the union space; see engine.hpp).
#include "analysis/engine.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "program/corpus.hpp"
#include "program/scheduler.hpp"

namespace mpx::analysis {
namespace {

namespace corpus = program::corpus;

struct Scenario {
  const char* label;
  program::Program prog;
  std::vector<std::string> specs;
  program::ExecutionRecord rec;
};

program::ExecutionRecord record(const program::Program& prog,
                                const std::vector<ThreadId>& schedule) {
  program::FixedScheduler sched(schedule);
  return program::runProgram(prog, sched);
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  {
    Scenario s;
    s.label = "landing";
    s.prog = corpus::landingController();
    s.specs = {corpus::landingProperty(), "!(landing = 1 && radio = 0)",
               "landing = 1 -> approved = 1"};
    s.rec = record(s.prog, corpus::landingObservedSchedule());
    out.push_back(std::move(s));
  }
  {
    Scenario s;
    s.label = "xyz";
    s.prog = corpus::xyzProgram();
    s.specs = {corpus::xyzProperty(), "!(x > 0 && y = 0)"};
    s.rec = record(s.prog, corpus::xyzObservedSchedule());
    out.push_back(std::move(s));
  }
  return out;
}

EngineConfig multiConfig(const Scenario& s, trace::DeliveryPolicy delivery,
                         std::size_t jobs) {
  EngineConfig c;
  c.specs = s.specs;
  c.delivery = delivery;
  c.deliverySeed = 7;
  // A shared violation cap hits sooner with K monitors riding one pass;
  // keep it out of the way so reports compare on content, not truncation.
  c.lattice.maxViolations = 1u << 12;
  c.lattice.parallel.jobs = jobs;
  c.lattice.parallel.minFrontier = 1;  // parallel path even on tiny levels
  return c;
}

void expectOnePassEquivalence(const Scenario& s,
                              trace::DeliveryPolicy delivery,
                              std::size_t jobs) {
  SCOPED_TRACE(std::string(s.label) + " jobs=" + std::to_string(jobs) +
               " delivery=" + std::to_string(static_cast<int>(delivery)));

  const Engine multiEngine(s.prog, multiConfig(s, delivery, jobs));
  const EngineResult multi = multiEngine.run(s.rec);
  ASSERT_EQ(multi.specs.size(), s.specs.size());
  ASSERT_GE(multi.reports.size(), s.specs.size());

  for (std::size_t i = 0; i < s.specs.size(); ++i) {
    EngineConfig single = multiConfig(s, delivery, jobs);
    single.specs = {s.specs[i]};
    single.extraTrackedVars = multiEngine.trackedVariables();
    const Engine singleEngine(s.prog, single);

    // Same union space => same messages, same lattice.
    ASSERT_EQ(singleEngine.trackedVariables().size(),
              multiEngine.trackedVariables().size());
    const EngineResult one = singleEngine.run(s.rec);

    EXPECT_EQ(one.latticeStats.totalNodes, multi.latticeStats.totalNodes);
    ASSERT_FALSE(one.reports.empty());
    EXPECT_EQ(multi.reports[i].name, one.reports[0].name);
    EXPECT_EQ(multi.reports[i].violationCount, one.reports[0].violationCount);
    EXPECT_EQ(multi.reports[i].text, one.reports[0].text)
        << "spec " << i << " (" << s.specs[i] << ")";
    EXPECT_EQ(multi.specs[i].spec, s.specs[i]);
    EXPECT_EQ(multi.specs[i].violations.size(),
              one.specs[0].violations.size());
    EXPECT_EQ(multi.specs[i].observedViolationIndex,
              one.specs[0].observedViolationIndex);
  }
}

TEST(OnePassEquivalence, FifoSerial) {
  for (const auto& s : scenarios()) {
    expectOnePassEquivalence(s, trace::DeliveryPolicy::kFifo, 1);
  }
}

TEST(OnePassEquivalence, FifoParallelJobs4) {
  for (const auto& s : scenarios()) {
    expectOnePassEquivalence(s, trace::DeliveryPolicy::kFifo, 4);
  }
}

TEST(OnePassEquivalence, ShuffledDeliverySerial) {
  // Theorem 3: the lattice (and hence every report) is delivery-invariant.
  for (const auto& s : scenarios()) {
    expectOnePassEquivalence(s, trace::DeliveryPolicy::kShuffle, 1);
  }
}

TEST(OnePassEquivalence, ShuffledDeliveryParallelJobs4) {
  for (const auto& s : scenarios()) {
    expectOnePassEquivalence(s, trace::DeliveryPolicy::kShuffle, 4);
  }
}

TEST(OnePassEquivalence, ShuffleAgreesWithFifo) {
  // Stronger than pairwise: the one-pass report itself is identical across
  // delivery orders, so equivalence is not vacuous per-delivery.
  for (const auto& s : scenarios()) {
    const Engine fifoEngine(
        s.prog, multiConfig(s, trace::DeliveryPolicy::kFifo, 1));
    const Engine shufEngine(
        s.prog, multiConfig(s, trace::DeliveryPolicy::kShuffle, 1));
    const EngineResult a = fifoEngine.run(s.rec);
    const EngineResult b = shufEngine.run(s.rec);
    ASSERT_EQ(a.reports.size(), b.reports.size());
    for (std::size_t i = 0; i < a.reports.size(); ++i) {
      EXPECT_EQ(a.reports[i].text, b.reports[i].text) << s.label;
    }
  }
}

TEST(OnePassEquivalence, AtLeastOneSpecPredictsAViolation) {
  // Guards against the whole suite passing on empty reports.
  for (const auto& s : scenarios()) {
    const Engine engine(s.prog, multiConfig(s, trace::DeliveryPolicy::kFifo, 1));
    const EngineResult r = engine.run(s.rec);
    EXPECT_TRUE(r.predictsViolation()) << s.label;
    EXPECT_GT(r.latticeStats.internHits, 0u) << s.label;
  }
}

}  // namespace
}  // namespace mpx::analysis
