// The analyzer pipeline: configuration knobs, the JPAX-style baseline, and
// the relationship between observed-run and predictive verdicts.
#include <gtest/gtest.h>

#include "analysis/predictive_analyzer.hpp"
#include "program/corpus.hpp"

namespace mpx::analysis {
namespace {

namespace corpus = program::corpus;

TEST(Pipeline, UnknownSpecVariableThrows) {
  const program::Program prog = corpus::landingController();
  AnalyzerConfig config;
  config.spec = "altitude > 0";  // not a program variable
  EXPECT_THROW(PredictiveAnalyzer(prog, config), std::out_of_range);
}

TEST(Pipeline, ExtraTrackedVarsAppearInTheStateSpace) {
  const program::Program prog = corpus::landingController();
  AnalyzerConfig config;
  config.spec = "landing = 1 -> approved = 1";
  config.extraTrackedVars = {"radio"};
  PredictiveAnalyzer analyzer(prog, config);
  EXPECT_EQ(analyzer.space().size(), 3u);
  EXPECT_NO_THROW((void)analyzer.space().slotOfName("radio"));
}

TEST(Pipeline, ObservedChecker_MatchesAnalyzerObservedVerdict) {
  const program::Program prog = corpus::landingController();
  const std::string spec = corpus::landingProperty();
  AnalyzerConfig config;
  config.spec = spec;
  PredictiveAnalyzer analyzer(prog, config);
  ObservedRunChecker baseline(prog, spec);
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    program::RandomScheduler s1(seed);
    program::Executor ex(prog, s1);
    const program::ExecutionRecord rec = ex.run();
    const AnalysisResult r = analyzer.analyzeRecord(rec);
    EXPECT_EQ(baseline.detectsOnRecord(rec), r.observedRunViolates())
        << "seed " << seed;
  }
}

TEST(Pipeline, PredictionIsAtLeastAsStrongAsObservation) {
  // Whatever the observed run detects, the lattice detects too (the
  // observed linearization is one of its paths).
  const program::Program prog = corpus::landingController();
  PredictiveAnalyzer analyzer(
      prog, specConfig(corpus::landingProperty()));
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const AnalysisResult r = analyzer.analyzeWithSeed(seed);
    if (r.observedRunViolates()) {
      EXPECT_TRUE(r.predictsViolation()) << "seed " << seed;
    }
  }
}

TEST(Pipeline, PredictionStrictlyStrongerSomewhere) {
  // And on some successful runs it predicts what observation missed.
  const program::Program prog = corpus::landingController();
  PredictiveAnalyzer analyzer(
      prog, specConfig(corpus::landingProperty()));
  bool strictly = false;
  for (std::uint64_t seed = 0; seed < 40 && !strictly; ++seed) {
    const AnalysisResult r = analyzer.analyzeWithSeed(seed);
    strictly = !r.observedRunViolates() && r.predictsViolation();
  }
  EXPECT_TRUE(strictly);
}

TEST(Pipeline, EveryPredictionIsSoundWithRespectToTheLattice) {
  // Each predicted violation's counterexample is a consistent run whose
  // state trace actually violates the property.
  const program::Program prog = corpus::landingController();
  AnalyzerConfig config;
  config.spec = corpus::landingProperty();
  PredictiveAnalyzer analyzer(prog, config);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const AnalysisResult r = analyzer.analyzeWithSeed(seed);
    observer::RunEnumerator runs(r.causality, r.space);
    logic::SynthesizedMonitor monitor(analyzer.formula());
    for (const auto& v : r.predictedViolations) {
      ASSERT_TRUE(runs.isConsistentRun(v.path)) << "seed " << seed;
      const auto states = runs.statesAlong(v.path);
      EXPECT_GE(monitor.firstViolation(states), 0) << "seed " << seed;
    }
  }
}

TEST(Pipeline, LatticeDetectsIffSomeRunViolates) {
  // Completeness w.r.t. the computation: the lattice predicts a violation
  // exactly when some enumerated run violates.
  const program::Program prog = corpus::landingController();
  AnalyzerConfig config;
  config.spec = corpus::landingProperty();
  PredictiveAnalyzer analyzer(prog, config);
  logic::SynthesizedMonitor monitor(analyzer.formula());
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const AnalysisResult r = analyzer.analyzeWithSeed(seed);
    observer::RunEnumerator runs(r.causality, r.space);
    bool someRunViolates = false;
    runs.forEachRun([&](const observer::Run& run) {
      someRunViolates = monitor.firstViolation(run.states) >= 0;
      return !someRunViolates;
    });
    EXPECT_EQ(r.predictsViolation(), someRunViolates) << "seed " << seed;
  }
}

TEST(Pipeline, SlidingWindowAndFullRetentionAgreeOnVerdicts) {
  const program::Program prog = corpus::xyzProgram();
  AnalyzerConfig slide;
  slide.spec = corpus::xyzProperty();
  AnalyzerConfig full = slide;
  full.lattice.retention = observer::Retention::kFull;
  PredictiveAnalyzer a1(prog, slide);
  PredictiveAnalyzer a2(prog, full);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    program::RandomScheduler s(seed);
    program::Executor ex(prog, s);
    const auto rec = ex.run();
    const AnalysisResult r1 = a1.analyzeRecord(rec);
    const AnalysisResult r2 = a2.analyzeRecord(rec);
    EXPECT_EQ(r1.predictsViolation(), r2.predictsViolation());
    EXPECT_EQ(r1.latticeStats.totalNodes, r2.latticeStats.totalNodes);
  }
}

TEST(Pipeline, PathRecordingCanBeDisabled) {
  const program::Program prog = corpus::landingController();
  AnalyzerConfig config;
  config.spec = corpus::landingProperty();
  config.lattice.recordPaths = false;
  PredictiveAnalyzer analyzer(prog, config);
  program::FixedScheduler sched(corpus::landingObservedSchedule());
  const AnalysisResult r = analyzer.analyze(sched);
  ASSERT_TRUE(r.predictsViolation());
  EXPECT_TRUE(r.predictedViolations.front().path.empty());
}

TEST(Pipeline, DeliverySeedVariationsDoNotChangeVerdicts) {
  const program::Program prog = corpus::xyzProgram();
  AnalyzerConfig config;
  config.spec = corpus::xyzProperty();
  config.delivery = trace::DeliveryPolicy::kShuffle;
  program::FixedScheduler makeSched(corpus::xyzObservedSchedule());
  program::Executor ex(prog, makeSched);
  const auto rec = ex.run();
  std::optional<std::size_t> nodes;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    config.deliverySeed = seed;
    PredictiveAnalyzer analyzer(prog, config);
    const AnalysisResult r = analyzer.analyzeRecord(rec);
    EXPECT_TRUE(r.predictsViolation()) << "seed " << seed;
    if (!nodes) nodes = r.latticeStats.totalNodes;
    EXPECT_EQ(r.latticeStats.totalNodes, *nodes);
  }
}

TEST(Pipeline, GroundTruthCountsDeadlocks) {
  const program::Program prog = corpus::diningPhilosophers(2);
  // Any property over the meals variables; the interesting part is the
  // deadlock counting.
  const GroundTruthResult truth = groundTruth(prog, "meals0 >= 0");
  EXPECT_GT(truth.totalExecutions, 0u);
  EXPECT_GT(truth.deadlockedExecutions, 0u);
  EXPECT_EQ(truth.violatingExecutions, 0u);
}

}  // namespace
}  // namespace mpx::analysis
