// JSON/text report rendering.
#include "analysis/report.hpp"

#include <gtest/gtest.h>

#include "detect/deadlock_analysis.hpp"
#include "detect/race_analysis.hpp"
#include "program/corpus.hpp"

namespace mpx::analysis {
namespace {

namespace corpus = program::corpus;

AnalysisResult landingResult() {
  const program::Program prog = corpus::landingController();
  PredictiveAnalyzer analyzer(
      prog, specConfig(corpus::landingProperty()));
  program::FixedScheduler sched(corpus::landingObservedSchedule());
  return analyzer.analyze(sched);
}

/// Structural well-formedness: balanced braces/brackets outside strings.
void expectBalancedJson(const std::string& json) {
  int depth = 0;
  bool inString = false;
  bool escaped = false;
  for (const char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
      continue;
    }
    if (c == '"') {
      inString = !inString;
      continue;
    }
    if (inString) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(inString);
}

TEST(Report, JsonIsBalancedAndContainsVerdicts) {
  const AnalysisResult r = landingResult();
  const std::string json = toJson(r);
  expectBalancedJson(json);
  EXPECT_NE(json.find("\"observedRunViolates\": false"), std::string::npos);
  EXPECT_NE(json.find("\"predictsViolation\": true"), std::string::npos);
  EXPECT_NE(json.find("\"runs\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"nodes\": 6"), std::string::npos);
}

TEST(Report, JsonCounterexampleCarriesStates) {
  const AnalysisResult r = landingResult();
  const std::string json = toJson(r);
  EXPECT_NE(json.find("\"counterexample\""), std::string::npos);
  EXPECT_NE(json.find("\"radio\""), std::string::npos);
  EXPECT_NE(json.find("\"stateAfter\""), std::string::npos);
}

TEST(Report, CounterexamplesCanBeSuppressed) {
  const AnalysisResult r = landingResult();
  ReportOptions opts;
  opts.includeCounterexamples = false;
  const std::string json = toJson(r, opts);
  EXPECT_EQ(json.find("\"counterexample\""), std::string::npos);
  expectBalancedJson(json);
}

TEST(Report, CompactModeHasNoNewlines) {
  const AnalysisResult r = landingResult();
  ReportOptions opts;
  opts.indent = 0;
  const std::string json = toJson(r, opts);
  EXPECT_EQ(json.find('\n'), std::string::npos);
  expectBalancedJson(json);
}

TEST(Report, TextReportMentionsEverything) {
  const AnalysisResult r = landingResult();
  const std::string text = toText(r);
  EXPECT_NE(text.find("observed run violates: no"), std::string::npos);
  EXPECT_NE(text.find("predicted violations: 1"), std::string::npos);
  EXPECT_NE(text.find("counterexample run"), std::string::npos);
}

TEST(Report, JsonEscaping) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
}

TEST(Report, RacesToJson) {
  const program::Program p = corpus::bankAccountRacy();
  program::GreedyScheduler sched;
  const auto rec = program::runProgram(p, sched);
  detect::RaceOptions opts;
  opts.happensBefore = true;
  detect::RaceAnalysis plugin(p, {"balance"}, opts);
  for (std::size_t i = 0; i < rec.events.size(); ++i) {
    plugin.onRawEvent(rec.events[i], i < rec.locksHeld.size()
                                         ? rec.locksHeld[i]
                                         : std::vector<LockId>{});
  }
  plugin.finish({});
  const auto& races = plugin.races();
  const std::string json = racesToJson(races, p.vars);
  expectBalancedJson(json);
  EXPECT_NE(json.find("\"balance\""), std::string::npos);
  EXPECT_NE(json.find("happens-before"), std::string::npos);
}

TEST(Report, DeadlocksToJson) {
  const program::Program p = corpus::diningPhilosophers(3);
  program::GreedyScheduler sched;
  const auto rec = program::runProgram(p, sched);
  detect::DeadlockAnalysis plugin(p);
  for (std::size_t i = 0; i < rec.events.size(); ++i) {
    plugin.onRawEvent(rec.events[i], i < rec.locksHeld.size()
                                         ? rec.locksHeld[i]
                                         : std::vector<LockId>{});
  }
  plugin.finish({});
  const auto& reports = plugin.deadlocks();
  const std::string json = deadlocksToJson(reports, p.lockNames);
  expectBalancedJson(json);
  EXPECT_NE(json.find("fork0"), std::string::npos);
}

TEST(Report, EmptyCollections) {
  expectBalancedJson(racesToJson({}, trace::VarTable{}));
  expectBalancedJson(deadlocksToJson({}, {}));
}

}  // namespace
}  // namespace mpx::analysis
