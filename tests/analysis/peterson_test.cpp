// Mutual exclusion: Peterson's algorithm (correct under the paper's
// sequential-consistency assumption) versus the unsynchronized contrast.
// Exercises busy-wait loops in the VM, the reachable-state oracle, and the
// predictive analyzer on a real synchronization protocol.
#include <gtest/gtest.h>

#include "analysis/predictive_analyzer.hpp"
#include "program/corpus.hpp"
#include "program/explorer.hpp"

namespace mpx::analysis {
namespace {

namespace corpus = program::corpus;

bool bothInCritical(const program::Interpreter& in) {
  const auto& vars = in.program().vars;
  return in.sharedValue(vars.id("c0")) == 1 &&
         in.sharedValue(vars.id("c1")) == 1;
}

TEST(Peterson, NoReachableStateViolatesMutualExclusion) {
  const program::Program p = corpus::peterson();
  program::ExhaustiveExplorer ex;
  EXPECT_FALSE(ex.existsReachableState(p, bothInCritical));
}

TEST(Peterson, NaiveVariantReachesTheBadState) {
  const program::Program p = corpus::mutualExclusionNaive();
  program::ExhaustiveExplorer ex;
  EXPECT_TRUE(ex.existsReachableState(p, bothInCritical));
}

TEST(Peterson, TerminatesUnderRandomSchedules) {
  const program::Program p = corpus::peterson(2);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto rec = program::runProgramRandom(p, seed);
    EXPECT_FALSE(rec.deadlocked) << "seed " << seed;
    EXPECT_EQ(rec.finalShared[p.vars.id("c0")], 0);
    EXPECT_EQ(rec.finalShared[p.vars.id("c1")], 0);
  }
}

TEST(Peterson, PredictiveAnalysisFindsNoViolation) {
  // The flag/turn reads causally tie the critical markers together, so no
  // run in the lattice overlaps them — across many observed schedules.
  const program::Program p = corpus::peterson();
  PredictiveAnalyzer analyzer(
      p, specConfig(corpus::mutualExclusionProperty()));
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    const AnalysisResult r = analyzer.analyzeWithSeed(seed);
    EXPECT_FALSE(r.observedRunViolates()) << "seed " << seed;
    EXPECT_FALSE(r.predictsViolation()) << "seed " << seed;
  }
}

TEST(Peterson, NaiveVariantViolationPredictedFromSuccessfulRun) {
  // The greedy run never overlaps the critical sections (observed monitor
  // is silent), but the markers are causally unrelated: the lattice
  // contains an overlapping run.
  const program::Program p = corpus::mutualExclusionNaive();
  PredictiveAnalyzer analyzer(
      p, specConfig(corpus::mutualExclusionProperty()));
  program::GreedyScheduler sched;
  const AnalysisResult r = analyzer.analyze(sched);
  EXPECT_FALSE(r.observedRunViolates());
  EXPECT_TRUE(r.predictsViolation());

  // And the counterexample really overlaps.
  const auto& v = r.predictedViolations.front();
  EXPECT_EQ(v.state.values, (std::vector<Value>{1, 1}));
}

TEST(Peterson, MultipleRoundsStaySafe) {
  const program::Program p = corpus::peterson(2);
  program::ExhaustiveExplorer ex;
  EXPECT_FALSE(ex.existsReachableState(p, bothInCritical));
}

TEST(ReadersWriter, InvariantHoldsInEveryReachableState) {
  const program::Program p = corpus::readersWriter(2);
  program::ExhaustiveExplorer ex;
  const auto bad = [](const program::Interpreter& in) {
    const auto& vars = in.program().vars;
    return in.sharedValue(vars.id("writing")) == 1 &&
           in.sharedValue(vars.id("readers")) >= 1;
  };
  EXPECT_FALSE(ex.existsReachableState(p, bad));
}

TEST(ReadersWriter, TerminatesAndNothingPredicted) {
  const program::Program p = corpus::readersWriter(2);
  PredictiveAnalyzer analyzer(p,
                              specConfig(corpus::readersWriterProperty()));
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const AnalysisResult r = analyzer.analyzeWithSeed(seed);
    EXPECT_FALSE(r.record.deadlocked) << "seed " << seed;
    EXPECT_FALSE(r.observedRunViolates()) << "seed " << seed;
    EXPECT_FALSE(r.predictsViolation()) << "seed " << seed;
  }
}

TEST(ReadersWriter, ReaderSawConsistentData) {
  // Each reader reads data either before (0) or after (42) the write —
  // never a torn value (trivially true here, but pins the protocol).
  const program::Program p = corpus::readersWriter(1);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto rec = program::runProgramRandom(p, seed);
    for (const auto& e : rec.events) {
      if (e.kind == trace::EventKind::kRead && e.var == p.vars.id("data")) {
        EXPECT_TRUE(e.value == 0 || e.value == 42) << "seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace mpx::analysis
