// The library-function instrumentation path with REAL std::thread code.
//
// These tests avoid asserting any particular interleaving; they assert the
// invariants that must hold for EVERY interleaving (Theorem 3 consistency
// with the global order, lock-induced causality, message well-formedness).
#include "runtime/runtime.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "logic/monitor.hpp"
#include "logic/parser.hpp"
#include "observer/causality.hpp"
#include "observer/lattice.hpp"

namespace mpx::runtime {
namespace {

TEST(Runtime, SingleThreadReadWrite) {
  trace::CollectingSink sink;
  Runtime rt(sink);
  SharedVar x = rt.declare("x", 7);
  rt.markRelevant("x");
  EXPECT_EQ(x.load(), 7);
  x.store(9);
  EXPECT_EQ(x.load(), 9);
  EXPECT_EQ(x.fetchAdd(1), 9);
  EXPECT_EQ(x.load(), 10);
  // Writes of x are relevant: store, fetchAdd's store = 2 messages.
  EXPECT_EQ(rt.messagesEmitted(), 2u);
  EXPECT_EQ(rt.eventsProcessed(), 6u);  // 4 reads + 2 writes
  EXPECT_EQ(rt.threadsSeen(), 1u);
}

TEST(Runtime, DeclareIsIdempotentAndMarkRelevantByName) {
  trace::CollectingSink sink;
  Runtime rt(sink);
  SharedVar a = rt.declare("a", 1);
  SharedVar b = rt.declare("a", 1);
  EXPECT_EQ(a.id(), b.id());
  EXPECT_THROW(rt.markRelevant("ghost"), std::out_of_range);
}

TEST(Runtime, IrrelevantVariablesEmitNothing) {
  trace::CollectingSink sink;
  Runtime rt(sink);
  SharedVar x = rt.declare("x", 0);
  x.store(1);
  x.store(2);
  EXPECT_EQ(rt.messagesEmitted(), 0u);
  EXPECT_EQ(rt.eventsProcessed(), 2u);
}

TEST(Runtime, TwoRealThreadsMessagesAreWellFormed) {
  trace::CollectingSink sink;
  Runtime rt(sink);
  SharedVar x = rt.declare("x", 0);
  SharedVar y = rt.declare("y", 0);
  rt.markRelevant("x");
  rt.markRelevant("y");

  std::thread t1([&] {
    for (int i = 1; i <= 20; ++i) x.store(i);
  });
  std::thread t2([&] {
    for (int i = 1; i <= 20; ++i) y.store(i);
  });
  t1.join();
  t2.join();

  EXPECT_EQ(rt.threadsSeen(), 2u);
  const auto& ms = sink.messages();
  ASSERT_EQ(ms.size(), 40u);

  // Theorem 3 consistency with the serialization order: if message a
  // causally precedes message b then a was emitted earlier in M.
  for (std::size_t i = 0; i < ms.size(); ++i) {
    for (std::size_t j = 0; j < ms.size(); ++j) {
      if (i == j) continue;
      if (ms[i].causallyPrecedes(ms[j])) {
        EXPECT_LT(ms[i].event.globalSeq, ms[j].event.globalSeq);
      }
    }
  }

  // Per-thread streams are gapless (the observer can finalize).
  observer::CausalityGraph graph;
  for (const auto& m : ms) graph.ingest(m);
  EXPECT_NO_THROW(graph.finalize());
}

TEST(Runtime, LockPublishingCreatesCausalOrder) {
  // Publish-then-consume through an InstrumentedMutex: the consumer's
  // write is always causally after the producer's, in every interleaving,
  // so the lattice has exactly one run and no violation of the
  // publication property.
  trace::CollectingSink sink;
  Runtime rt(sink);
  SharedVar ready = rt.declare("ready", 0);
  SharedVar data = rt.declare("data", 0);
  auto m = rt.declareMutex("m");
  rt.markRelevant("ready");
  rt.markRelevant("data");

  std::thread producer([&] {
    InstrumentedMutex::Guard g(*m);
    data.store(42);
    ready.store(1);
  });
  std::thread consumer([&] {
    while (true) {
      Value seen = 0;
      {
        InstrumentedMutex::Guard g(*m);
        seen = ready.load();
      }
      if (seen == 1) break;
      std::this_thread::yield();
    }
    InstrumentedMutex::Guard g(*m);
    data.store(data.load() + 1);
  });
  producer.join();
  consumer.join();

  observer::CausalityGraph graph;
  for (const auto& msg : sink.messages()) graph.ingest(msg);
  graph.finalize();

  const observer::StateSpace space =
      observer::StateSpace::byNames(rt.vars(), {"ready", "data"});
  observer::ComputationLattice lattice(graph, space);
  logic::SynthesizedMonitor monitor(
      logic::SpecParser(space).parse("data = 43 -> once ready = 1"));
  std::vector<observer::Violation> violations;
  lattice.check(monitor, violations);
  EXPECT_TRUE(violations.empty());
  EXPECT_EQ(lattice.stats().pathCount, 1u);
}

TEST(Runtime, UnsynchronizedWritersGiveConcurrentMessages) {
  // Two threads writing DIFFERENT variables with no locks: at least some
  // pair of cross-thread messages must be concurrent (nothing orders
  // them); the lattice then has more than one run.
  trace::CollectingSink sink;
  Runtime rt(sink);
  SharedVar x = rt.declare("x", 0);
  SharedVar y = rt.declare("y", 0);
  rt.markRelevant("x");
  rt.markRelevant("y");

  std::thread t1([&] { x.store(1); });
  std::thread t2([&] { y.store(1); });
  t1.join();
  t2.join();

  const auto& ms = sink.messages();
  ASSERT_EQ(ms.size(), 2u);
  EXPECT_TRUE(ms[0].concurrentWith(ms[1]));
}

TEST(Runtime, ConditionVariableEmitsSectionThreeOneEvents) {
  trace::CollectingSink sink;
  Runtime rt(sink);
  SharedVar flag = rt.declare("flag", 0);
  auto m = rt.declareMutex("m");
  auto cv = rt.declareCondition("cv");

  std::thread waiter([&] {
    InstrumentedMutex::Guard g(*m);
    cv->wait(*m, [&] { return flag.load() == 1; });
  });
  std::thread notifier([&] {
    {
      InstrumentedMutex::Guard g(*m);
      flag.store(1);
    }
    cv->notifyAll();
  });
  waiter.join();
  notifier.join();

  // Relevance is empty, but the EVENTS must include notify and (if the
  // waiter actually slept) wait-resume; at minimum the lock events and
  // the notify are processed.
  EXPECT_GE(rt.eventsProcessed(), 5u);
}

TEST(Runtime, ManyThreadsRegisterDynamically) {
  trace::CollectingSink sink;
  Runtime rt(sink);
  SharedVar x = rt.declare("x", 0);
  rt.markRelevant("x");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&x] { x.fetchAdd(1); });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(rt.threadsSeen(), 8u);
  // fetchAdd is a read event then a write event, NOT atomic: updates can be
  // lost — that is the data race this library exists to detect.
  const Value final = x.load();
  EXPECT_GE(final, 1);
  EXPECT_LE(final, 8);
  EXPECT_EQ(rt.messagesEmitted(), 8u);

  // All 8 write messages are totally ordered?  NO — only each thread's own
  // stream is; cross-thread order comes from the read/write causality on
  // x, which in this case totally orders the writes (same variable).
  const auto& ms = sink.messages();
  for (std::size_t i = 0; i < ms.size(); ++i) {
    for (std::size_t j = i + 1; j < ms.size(); ++j) {
      EXPECT_FALSE(ms[i].concurrentWith(ms[j]));
    }
  }
}

TEST(Runtime, RaceDetectionOnRealThreads_Racy) {
  // Two genuine threads mutate `counter` with no lock: the projected
  // happens-before finds the conflicting accesses concurrent regardless of
  // how the OS interleaved them.
  trace::CollectingSink sink;
  Runtime rt(sink);
  SharedVar counter = rt.declare("counter", 0);
  rt.enableRecording();

  std::thread t1([&] {
    for (int i = 0; i < 5; ++i) counter.store(counter.load() + 1);
  });
  std::thread t2([&] {
    for (int i = 0; i < 5; ++i) counter.store(counter.load() + 1);
  });
  t1.join();
  t2.join();

  const auto recording = rt.takeRecording();
  ASSERT_FALSE(recording.empty());
  detect::RaceOptions opts;
  opts.happensBefore = true;
  const auto races = rt.analyzeRaces(recording, {"counter"}, opts);
  ASSERT_FALSE(races.empty());
  EXPECT_EQ(races[0].evidence, detect::RaceEvidence::kHappensBefore);
}

TEST(Runtime, RaceDetectionOnRealThreads_Locked) {
  trace::CollectingSink sink;
  Runtime rt(sink);
  SharedVar counter = rt.declare("counter", 0);
  auto mu = rt.declareMutex("m");
  rt.enableRecording();

  std::thread t1([&] {
    for (int i = 0; i < 5; ++i) {
      InstrumentedMutex::Guard g(*mu);
      counter.store(counter.load() + 1);
    }
  });
  std::thread t2([&] {
    for (int i = 0; i < 5; ++i) {
      InstrumentedMutex::Guard g(*mu);
      counter.store(counter.load() + 1);
    }
  });
  t1.join();
  t2.join();
  // Drain the recording BEFORE the verification read below: std::thread
  // join is not an instrumented operation, so a post-join unguarded access
  // by the main thread is causally concurrent with the workers' accesses
  // and would be (correctly!) reported as a race.
  const auto recording = rt.takeRecording();
  EXPECT_EQ(counter.load(), 10);

  detect::RaceOptions opts;
  opts.happensBefore = true;
  opts.lockset = true;
  const auto races = rt.analyzeRaces(recording, {"counter"}, opts);
  EXPECT_TRUE(races.empty());
}

TEST(Runtime, PostJoinUnguardedReadIsReportedAsRace) {
  // The flip side of the previous test, pinned as intended behaviour:
  // without an instrumented join edge, the main thread's read is
  // concurrent with the worker's write.
  trace::CollectingSink sink;
  Runtime rt(sink);
  SharedVar x = rt.declare("x", 0);
  rt.enableRecording();
  std::thread t([&] { x.store(1); });
  t.join();
  const Value v = x.load();  // unguarded main-thread read
  EXPECT_EQ(v, 1);
  detect::RaceOptions opts;
  opts.happensBefore = true;
  const auto races = rt.analyzeRaces(rt.takeRecording(), {"x"}, opts);
  EXPECT_FALSE(races.empty());
}

TEST(Runtime, RecordingCapturesLocksets) {
  trace::CollectingSink sink;
  Runtime rt(sink);
  SharedVar x = rt.declare("x", 0);
  auto mu = rt.declareMutex("m");
  rt.enableRecording();
  {
    InstrumentedMutex::Guard g(*mu);
    x.store(1);
  }
  x.store(2);
  const auto recording = rt.takeRecording();
  // acquire, write(1), release, write(2)
  ASSERT_EQ(recording.size(), 4u);
  EXPECT_EQ(recording[1].event.kind, trace::EventKind::kWrite);
  EXPECT_EQ(recording[1].locksHeld.size(), 1u);   // under the lock
  EXPECT_EQ(recording[2].event.kind, trace::EventKind::kLockRelease);
  EXPECT_TRUE(recording[2].locksHeld.empty());    // dropped at release
  EXPECT_TRUE(recording[3].locksHeld.empty());
}

TEST(Runtime, TakeRecordingDrains) {
  trace::CollectingSink sink;
  Runtime rt(sink);
  SharedVar x = rt.declare("x", 0);
  rt.enableRecording();
  x.store(1);
  EXPECT_EQ(rt.takeRecording().size(), 1u);
  EXPECT_TRUE(rt.takeRecording().empty());
}

}  // namespace
}  // namespace mpx::runtime
