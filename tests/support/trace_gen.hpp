// Differential-testing harness: seeded workload generator + a
// Definition-level brute-force oracle.
//
// The oracle re-implements the paper's definitions with NO shared code
// with the engine under test:
//
//   * consistent cuts  — direct tuple enumeration over
//     (0..N_1) x ... x (0..N_n) with the MVC consistency check (every
//     included event's causal predecessors are included: the last included
//     event of each thread has clock[o] <= k_o for every other thread o);
//   * multithreaded runs — DFS over one-event extensions of consistent
//     cuts, from the empty cut to the complete cut;
//   * ptLTL — the recursive Havelund-Roşu semantics documented in
//     logic/ptltl.hpp, evaluated per run prefix with plain recursion
//     equations (no synthesized monitor, no packing, no lattice).
//
// It is deliberately naive (exponential in trace size); the generator caps
// workloads at a handful of threads and events so a single oracle run is
// microseconds, and seeds whose lattice is too wide are reported
// infeasible and skipped by the caller.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "logic/ptltl.hpp"
#include "observer/causality.hpp"
#include "observer/global_state.hpp"
#include "program/corpus.hpp"

namespace mpx::testing {

// --- seeded workload generator ------------------------------------------

struct GeneratedCase {
  program::corpus::RandomProgramOptions options;
  program::Program program;
  std::string spec;
  std::uint64_t scheduleSeed = 0;
  std::uint64_t shuffleSeed = 0;
};

/// A small rotating pool of ptLTL specs over g0/g1 (always present:
/// generated programs have >= 2 variables), exercising every operator
/// family: plain state, historically, interval, once, prev/start, since.
inline const char* specForSeed(std::uint64_t seed) {
  static const char* const kSpecs[] = {
      "historically g0 <= g1 + 5",
      "g0 <= g1 + 5",
      "g0 = 2 -> [g1 >= 1, g0 = 0)",
      "g0 >= 3 -> once g1 > 0",
      "start(g0 > 2) -> prev g1 <= 3",
      "g1 <= 4 S g0 <= 4",
  };
  return kSpecs[seed % (sizeof kSpecs / sizeof kSpecs[0])];
}

/// Deterministic case for one seed: threads 2..4, vars 2..3, a few ops per
/// thread, occasionally a lock — small enough that the brute-force oracle
/// stays trivial, varied enough to hit every operator and lattice shape.
inline GeneratedCase generateCase(std::uint64_t seed) {
  GeneratedCase c;
  c.options.threads = 2 + seed % 3;          // 2..4
  c.options.vars = 2 + (seed / 3) % 2;       // 2..3
  c.options.opsPerThread = 3 + (seed / 7) % 2;
  c.options.locks = (seed % 5 == 0) ? 1 : 0;
  c.program = program::corpus::randomProgram(seed, c.options);
  c.spec = specForSeed(seed);
  c.scheduleSeed = seed * 31 + 7;
  c.shuffleSeed = seed * 131 + 13;
  return c;
}

// --- ptLTL recursive evaluator ------------------------------------------

/// Evaluates a Formula over a growing run prefix via the textbook
/// recursion equations (ptltl.hpp header comment).  State: one truth value
/// per distinct subformula node, carried from the previous position.
class PtEval {
 public:
  explicit PtEval(const logic::Formula& f) { index(f.root()); }

  [[nodiscard]] std::size_t width() const noexcept { return nodes_.size(); }

  /// Truth values at the run's first position (s_1).
  [[nodiscard]] std::vector<char> initial(
      const observer::GlobalState& s) const {
    return step({}, true, s);
  }

  /// Truth values at the next position given the previous position's.
  [[nodiscard]] std::vector<char> step(const std::vector<char>& prev,
                                       bool first,
                                       const observer::GlobalState& s) const {
    std::vector<char> cur(nodes_.size(), 0);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const logic::Formula::Node* n = nodes_[i];
      const int L = lhs_[i];
      const int R = rhs_[i];
      bool v = false;
      switch (n->op) {
        case logic::PtOp::kAtom: v = n->atom.evalBool(s); break;
        case logic::PtOp::kTrue: v = true; break;
        case logic::PtOp::kFalse: v = false; break;
        case logic::PtOp::kNot: v = cur[L] == 0; break;
        case logic::PtOp::kAnd: v = cur[L] != 0 && cur[R] != 0; break;
        case logic::PtOp::kOr: v = cur[L] != 0 || cur[R] != 0; break;
        case logic::PtOp::kImplies: v = cur[L] == 0 || cur[R] != 0; break;
        case logic::PtOp::kPrev:
          // At the first state, "previously F" = F (paper convention).
          v = first ? cur[L] != 0 : prev[L] != 0;
          break;
        case logic::PtOp::kOnce:
          v = cur[L] != 0 || (!first && prev[i] != 0);
          break;
        case logic::PtOp::kHistorically:
          v = cur[L] != 0 && (first || prev[i] != 0);
          break;
        case logic::PtOp::kSince:  // lhs S rhs
          v = cur[R] != 0 || (cur[L] != 0 && !first && prev[i] != 0);
          break;
        case logic::PtOp::kStart:
          v = !first && cur[L] != 0 && prev[L] == 0;
          break;
        case logic::PtOp::kEnd:
          v = !first && cur[L] == 0 && prev[L] != 0;
          break;
        case logic::PtOp::kInterval:  // [lhs, rhs)
          v = cur[R] == 0 && (cur[L] != 0 || (!first && prev[i] != 0));
          break;
      }
      cur[i] = v ? 1 : 0;
    }
    return cur;
  }

  /// The whole formula's truth — the root is last in the postorder.
  [[nodiscard]] static bool rootValue(const std::vector<char>& truth) {
    return !truth.empty() && truth.back() != 0;
  }

 private:
  /// Postorder indexing with pointer dedup (children before parents, so
  /// step() can evaluate in one left-to-right sweep).
  int index(const logic::Formula::Node* n) {
    const auto it = idx_.find(n);
    if (it != idx_.end()) return it->second;
    const int l = n->lhs != nullptr ? index(n->lhs.get()) : -1;
    const int r = n->rhs != nullptr ? index(n->rhs.get()) : -1;
    const int me = static_cast<int>(nodes_.size());
    nodes_.push_back(n);
    lhs_.push_back(l);
    rhs_.push_back(r);
    idx_.emplace(n, me);
    return me;
  }

  std::vector<const logic::Formula::Node*> nodes_;
  std::vector<int> lhs_;
  std::vector<int> rhs_;
  std::unordered_map<const logic::Formula::Node*, int> idx_;
};

// --- brute-force oracle -------------------------------------------------

struct OracleOptions {
  /// Skip seeds whose causality graph has more relevant events than this
  /// (the oracle is exponential; the differential sweep wants many cheap
  /// seeds, not a few slow ones).
  std::size_t maxEvents = 12;
  /// Skip seeds with more multithreaded runs than this.
  std::uint64_t maxRuns = 20000;
};

struct OracleResult {
  /// False: the case blew an OracleOptions cap and must be skipped.
  bool feasible = true;
  /// Cut names ("S" + per-thread indices, Cut::toString notation) at which
  /// SOME multithreaded run violates the formula.
  std::set<std::string> violatingCuts;
  /// Number of complete multithreaded runs (lattice pathCount).
  std::uint64_t runCount = 0;
  /// Lattice level count = total relevant events + 1 (LatticeStats.levels).
  std::uint64_t levels = 0;
  /// Consistent cuts per level, from the tuple census (level L holds the
  /// cuts with sum k_j == L); max entry is LatticeStats.peakLevelWidth.
  std::vector<std::uint64_t> levelWidths;
  /// Total consistent cuts (LatticeStats.totalNodes).
  std::uint64_t consistentCuts = 0;

  [[nodiscard]] std::uint64_t peakLevelWidth() const {
    std::uint64_t best = 0;
    for (const std::uint64_t w : levelWidths) best = std::max(best, w);
    return best;
  }
};

class BruteForceOracle {
 public:
  /// `graph` must be finalized; `space` and `formula` as the engine used
  /// them (same tracked variables, same parsed spec).
  BruteForceOracle(const observer::CausalityGraph& graph,
                   const observer::StateSpace& space,
                   const logic::Formula& formula, OracleOptions opts = {})
      : graph_(&graph), space_(&space), eval_(formula), opts_(opts) {
    n_ = graph.threadCount();
    std::size_t total = 0;
    for (ThreadId j = 0; j < n_; ++j) total += graph.eventsOfThread(j);
    result_.levels = total + 1;
    if (total > opts_.maxEvents) {
      result_.feasible = false;
      return;
    }
    census();
    observer::GlobalState init(space.initialValues());
    const std::vector<char> truth = eval_.initial(init);
    std::vector<LocalSeq> k(n_, 0);
    if (!PtEval::rootValue(truth)) {
      result_.violatingCuts.insert(cutName(k));
    }
    dfs(k, init, truth);
  }

  [[nodiscard]] const OracleResult& result() const noexcept {
    return result_;
  }

 private:
  [[nodiscard]] static std::string cutName(const std::vector<LocalSeq>& k) {
    std::string s = "S";
    for (const LocalSeq v : k) s += std::to_string(v);
    return s;
  }

  /// Cut (k_1..k_n) is consistent iff each thread's last included event has
  /// every causal predecessor included — clock[o] <= k_o for all o.
  [[nodiscard]] bool consistent(const std::vector<LocalSeq>& k) const {
    for (ThreadId j = 0; j < n_; ++j) {
      if (k[j] == 0) continue;
      const trace::Message& m = graph_->message(j, k[j]);
      for (ThreadId o = 0; o < n_; ++o) {
        if (o == j) continue;
        if (m.clock[o] > k[o]) return false;
      }
    }
    return true;
  }

  /// Event (j, k_j + 1) extends cut `k` iff all its causal predecessors
  /// are already in the cut.
  [[nodiscard]] bool enabled(const std::vector<LocalSeq>& k,
                             ThreadId j) const {
    if (k[j] >= graph_->eventsOfThread(j)) return false;
    const trace::Message& m = graph_->message(j, k[j] + 1);
    for (ThreadId o = 0; o < n_; ++o) {
      if (o == j) continue;
      if (m.clock[o] > k[o]) return false;
    }
    return true;
  }

  /// Full odometer sweep over (0..N_1) x ... x (0..N_n): count consistent
  /// cuts per level.
  void census() {
    result_.levelWidths.assign(result_.levels, 0);
    std::vector<LocalSeq> k(n_, 0);
    while (true) {
      if (consistent(k)) {
        std::size_t level = 0;
        for (const LocalSeq v : k) level += v;
        ++result_.levelWidths[level];
        ++result_.consistentCuts;
      }
      ThreadId j = 0;
      while (j < n_ && k[j] == graph_->eventsOfThread(j)) {
        k[j] = 0;
        ++j;
      }
      if (j == n_) break;
      ++k[j];
    }
  }

  void dfs(std::vector<LocalSeq>& k, const observer::GlobalState& s,
           const std::vector<char>& truth) {
    if (!result_.feasible) return;
    bool complete = true;
    for (ThreadId j = 0; j < n_; ++j) {
      if (k[j] < graph_->eventsOfThread(j)) complete = false;
      if (!enabled(k, j)) continue;
      const trace::Message& m = graph_->message(j, k[j] + 1);
      observer::GlobalState ns = s;
      if (const auto slot = space_->slotOf(m.event.var)) {
        ns.values[*slot] = m.event.value;
      }
      const std::vector<char> nt = eval_.step(truth, false, ns);
      ++k[j];
      if (!PtEval::rootValue(nt)) {
        result_.violatingCuts.insert(cutName(k));
      }
      dfs(k, ns, nt);
      --k[j];
    }
    if (complete && ++result_.runCount > opts_.maxRuns) {
      result_.feasible = false;
    }
  }

  const observer::CausalityGraph* graph_;
  const observer::StateSpace* space_;
  PtEval eval_;
  OracleOptions opts_;
  std::size_t n_ = 0;
  OracleResult result_;
};

}  // namespace mpx::testing
