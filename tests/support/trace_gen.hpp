// Differential-testing harness: seeded workload generator + a
// Definition-level brute-force oracle.
//
// The oracle re-implements the paper's definitions with NO shared code
// with the engine under test:
//
//   * consistent cuts  — direct tuple enumeration over
//     (0..N_1) x ... x (0..N_n) with the MVC consistency check (every
//     included event's causal predecessors are included: the last included
//     event of each thread has clock[o] <= k_o for every other thread o);
//   * multithreaded runs — DFS over one-event extensions of consistent
//     cuts, from the empty cut to the complete cut;
//   * ptLTL — the recursive Havelund-Roşu semantics documented in
//     logic/ptltl.hpp, evaluated per run prefix with plain recursion
//     equations (no synthesized monitor, no packing, no lattice).
//
// It is deliberately naive (exponential in trace size); the generator caps
// workloads at a handful of threads and events so a single oracle run is
// microseconds, and seeds whose lattice is too wide are reported
// infeasible and skipped by the caller.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "logic/ptltl.hpp"
#include "observer/causality.hpp"
#include "observer/global_state.hpp"
#include "program/corpus.hpp"

namespace mpx::testing {

// --- seeded workload generator ------------------------------------------

struct GeneratedCase {
  program::corpus::RandomProgramOptions options;
  program::Program program;
  std::string spec;
  std::uint64_t scheduleSeed = 0;
  std::uint64_t shuffleSeed = 0;
};

/// A small rotating pool of ptLTL specs over g0/g1 (always present:
/// generated programs have >= 2 variables), exercising every operator
/// family: plain state, historically, interval, once, prev/start, since.
inline const char* specForSeed(std::uint64_t seed) {
  static const char* const kSpecs[] = {
      "historically g0 <= g1 + 5",
      "g0 <= g1 + 5",
      "g0 = 2 -> [g1 >= 1, g0 = 0)",
      "g0 >= 3 -> once g1 > 0",
      "start(g0 > 2) -> prev g1 <= 3",
      "g1 <= 4 S g0 <= 4",
  };
  return kSpecs[seed % (sizeof kSpecs / sizeof kSpecs[0])];
}

/// Region-annotated variant for the atomicity differential rung: the same
/// small shapes as generateCase plus a high region rate (open-at-end
/// regions and unmatched ends included via the generator's own policy).
inline GeneratedCase generateAtomicityCase(std::uint64_t seed) {
  GeneratedCase c;
  c.options.threads = 2 + seed % 2;        // 2..3
  c.options.vars = 2;
  c.options.opsPerThread = 3 + (seed / 5) % 2;
  c.options.locks = (seed % 7 == 0) ? 1 : 0;
  c.options.regionPercent = 45;
  c.program = program::corpus::randomProgram(seed, c.options);
  c.spec = specForSeed(seed);
  c.scheduleSeed = seed * 37 + 11;
  c.shuffleSeed = seed * 151 + 17;
  return c;
}

/// Deterministic case for one seed: threads 2..4, vars 2..3, a few ops per
/// thread, occasionally a lock — small enough that the brute-force oracle
/// stays trivial, varied enough to hit every operator and lattice shape.
inline GeneratedCase generateCase(std::uint64_t seed) {
  GeneratedCase c;
  c.options.threads = 2 + seed % 3;          // 2..4
  c.options.vars = 2 + (seed / 3) % 2;       // 2..3
  c.options.opsPerThread = 3 + (seed / 7) % 2;
  c.options.locks = (seed % 5 == 0) ? 1 : 0;
  c.program = program::corpus::randomProgram(seed, c.options);
  c.spec = specForSeed(seed);
  c.scheduleSeed = seed * 31 + 7;
  c.shuffleSeed = seed * 131 + 13;
  return c;
}

// --- ptLTL recursive evaluator ------------------------------------------

/// Evaluates a Formula over a growing run prefix via the textbook
/// recursion equations (ptltl.hpp header comment).  State: one truth value
/// per distinct subformula node, carried from the previous position.
class PtEval {
 public:
  explicit PtEval(const logic::Formula& f) { index(f.root()); }

  [[nodiscard]] std::size_t width() const noexcept { return nodes_.size(); }

  /// Truth values at the run's first position (s_1).
  [[nodiscard]] std::vector<char> initial(
      const observer::GlobalState& s) const {
    return step({}, true, s);
  }

  /// Truth values at the next position given the previous position's.
  [[nodiscard]] std::vector<char> step(const std::vector<char>& prev,
                                       bool first,
                                       const observer::GlobalState& s) const {
    std::vector<char> cur(nodes_.size(), 0);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      const logic::Formula::Node* n = nodes_[i];
      const int L = lhs_[i];
      const int R = rhs_[i];
      bool v = false;
      switch (n->op) {
        case logic::PtOp::kAtom: v = n->atom.evalBool(s); break;
        case logic::PtOp::kTrue: v = true; break;
        case logic::PtOp::kFalse: v = false; break;
        case logic::PtOp::kNot: v = cur[L] == 0; break;
        case logic::PtOp::kAnd: v = cur[L] != 0 && cur[R] != 0; break;
        case logic::PtOp::kOr: v = cur[L] != 0 || cur[R] != 0; break;
        case logic::PtOp::kImplies: v = cur[L] == 0 || cur[R] != 0; break;
        case logic::PtOp::kPrev:
          // At the first state, "previously F" = F (paper convention).
          v = first ? cur[L] != 0 : prev[L] != 0;
          break;
        case logic::PtOp::kOnce:
          v = cur[L] != 0 || (!first && prev[i] != 0);
          break;
        case logic::PtOp::kHistorically:
          v = cur[L] != 0 && (first || prev[i] != 0);
          break;
        case logic::PtOp::kSince:  // lhs S rhs
          v = cur[R] != 0 || (cur[L] != 0 && !first && prev[i] != 0);
          break;
        case logic::PtOp::kStart:
          v = !first && cur[L] != 0 && prev[L] == 0;
          break;
        case logic::PtOp::kEnd:
          v = !first && cur[L] == 0 && prev[L] != 0;
          break;
        case logic::PtOp::kInterval:  // [lhs, rhs)
          v = cur[R] == 0 && (cur[L] != 0 || (!first && prev[i] != 0));
          break;
      }
      cur[i] = v ? 1 : 0;
    }
    return cur;
  }

  /// The whole formula's truth — the root is last in the postorder.
  [[nodiscard]] static bool rootValue(const std::vector<char>& truth) {
    return !truth.empty() && truth.back() != 0;
  }

 private:
  /// Postorder indexing with pointer dedup (children before parents, so
  /// step() can evaluate in one left-to-right sweep).
  int index(const logic::Formula::Node* n) {
    const auto it = idx_.find(n);
    if (it != idx_.end()) return it->second;
    const int l = n->lhs != nullptr ? index(n->lhs.get()) : -1;
    const int r = n->rhs != nullptr ? index(n->rhs.get()) : -1;
    const int me = static_cast<int>(nodes_.size());
    nodes_.push_back(n);
    lhs_.push_back(l);
    rhs_.push_back(r);
    idx_.emplace(n, me);
    return me;
  }

  std::vector<const logic::Formula::Node*> nodes_;
  std::vector<int> lhs_;
  std::vector<int> rhs_;
  std::unordered_map<const logic::Formula::Node*, int> idx_;
};

// --- brute-force oracle -------------------------------------------------

struct OracleOptions {
  /// Skip seeds whose causality graph has more relevant events than this
  /// (the oracle is exponential; the differential sweep wants many cheap
  /// seeds, not a few slow ones).
  std::size_t maxEvents = 12;
  /// Skip seeds with more multithreaded runs than this.
  std::uint64_t maxRuns = 20000;
};

struct OracleResult {
  /// False: the case blew an OracleOptions cap and must be skipped.
  bool feasible = true;
  /// Cut names ("S" + per-thread indices, Cut::toString notation) at which
  /// SOME multithreaded run violates the formula.
  std::set<std::string> violatingCuts;
  /// Number of complete multithreaded runs (lattice pathCount).
  std::uint64_t runCount = 0;
  /// Lattice level count = total relevant events + 1 (LatticeStats.levels).
  std::uint64_t levels = 0;
  /// Consistent cuts per level, from the tuple census (level L holds the
  /// cuts with sum k_j == L); max entry is LatticeStats.peakLevelWidth.
  std::vector<std::uint64_t> levelWidths;
  /// Total consistent cuts (LatticeStats.totalNodes).
  std::uint64_t consistentCuts = 0;

  [[nodiscard]] std::uint64_t peakLevelWidth() const {
    std::uint64_t best = 0;
    for (const std::uint64_t w : levelWidths) best = std::max(best, w);
    return best;
  }
};

class BruteForceOracle {
 public:
  /// `graph` must be finalized; `space` and `formula` as the engine used
  /// them (same tracked variables, same parsed spec).
  BruteForceOracle(const observer::CausalityGraph& graph,
                   const observer::StateSpace& space,
                   const logic::Formula& formula, OracleOptions opts = {})
      : graph_(&graph), space_(&space), eval_(formula), opts_(opts) {
    n_ = graph.threadCount();
    std::size_t total = 0;
    for (ThreadId j = 0; j < n_; ++j) total += graph.eventsOfThread(j);
    result_.levels = total + 1;
    if (total > opts_.maxEvents) {
      result_.feasible = false;
      return;
    }
    census();
    observer::GlobalState init(space.initialValues());
    const std::vector<char> truth = eval_.initial(init);
    std::vector<LocalSeq> k(n_, 0);
    if (!PtEval::rootValue(truth)) {
      result_.violatingCuts.insert(cutName(k));
    }
    dfs(k, init, truth);
  }

  [[nodiscard]] const OracleResult& result() const noexcept {
    return result_;
  }

 private:
  [[nodiscard]] static std::string cutName(const std::vector<LocalSeq>& k) {
    std::string s = "S";
    for (const LocalSeq v : k) s += std::to_string(v);
    return s;
  }

  /// Cut (k_1..k_n) is consistent iff each thread's last included event has
  /// every causal predecessor included — clock[o] <= k_o for all o.
  [[nodiscard]] bool consistent(const std::vector<LocalSeq>& k) const {
    for (ThreadId j = 0; j < n_; ++j) {
      if (k[j] == 0) continue;
      const trace::Message& m = graph_->message(j, k[j]);
      for (ThreadId o = 0; o < n_; ++o) {
        if (o == j) continue;
        if (m.clock[o] > k[o]) return false;
      }
    }
    return true;
  }

  /// Event (j, k_j + 1) extends cut `k` iff all its causal predecessors
  /// are already in the cut.
  [[nodiscard]] bool enabled(const std::vector<LocalSeq>& k,
                             ThreadId j) const {
    if (k[j] >= graph_->eventsOfThread(j)) return false;
    const trace::Message& m = graph_->message(j, k[j] + 1);
    for (ThreadId o = 0; o < n_; ++o) {
      if (o == j) continue;
      if (m.clock[o] > k[o]) return false;
    }
    return true;
  }

  /// Full odometer sweep over (0..N_1) x ... x (0..N_n): count consistent
  /// cuts per level.
  void census() {
    result_.levelWidths.assign(result_.levels, 0);
    std::vector<LocalSeq> k(n_, 0);
    while (true) {
      if (consistent(k)) {
        std::size_t level = 0;
        for (const LocalSeq v : k) level += v;
        ++result_.levelWidths[level];
        ++result_.consistentCuts;
      }
      ThreadId j = 0;
      while (j < n_ && k[j] == graph_->eventsOfThread(j)) {
        k[j] = 0;
        ++j;
      }
      if (j == n_) break;
      ++k[j];
    }
  }

  void dfs(std::vector<LocalSeq>& k, const observer::GlobalState& s,
           const std::vector<char>& truth) {
    if (!result_.feasible) return;
    bool complete = true;
    for (ThreadId j = 0; j < n_; ++j) {
      if (k[j] < graph_->eventsOfThread(j)) complete = false;
      if (!enabled(k, j)) continue;
      const trace::Message& m = graph_->message(j, k[j] + 1);
      observer::GlobalState ns = s;
      if (const auto slot = space_->slotOf(m.event.var)) {
        ns.values[*slot] = m.event.value;
      }
      const std::vector<char> nt = eval_.step(truth, false, ns);
      ++k[j];
      if (!PtEval::rootValue(nt)) {
        result_.violatingCuts.insert(cutName(k));
      }
      dfs(k, ns, nt);
      --k[j];
    }
    if (complete && ++result_.runCount > opts_.maxRuns) {
      result_.feasible = false;
    }
  }

  const observer::CausalityGraph* graph_;
  const observer::StateSpace* space_;
  PtEval eval_;
  OracleOptions opts_;
  std::size_t n_ = 0;
  OracleResult result_;
};

// --- brute-force atomicity oracle ---------------------------------------

struct AtomicityOracleResult {
  /// False: the case blew an OracleOptions cap and must be skipped.
  bool feasible = true;
  /// (thread, 1-based ordinal) of every violating annotated region.
  std::set<std::pair<ThreadId, std::size_t>> violations;
  /// Annotated regions found (matched or open-at-end).
  std::size_t regions = 0;
  /// Linearizations (complete multithreaded runs) enumerated.
  std::uint64_t paths = 0;
  /// Every enumerated linearization produced the same violation set (the
  /// linearization-independence claim the analysis relies on).
  bool pathInvariant = true;
  /// On every path, the conflict-graph verdict agreed with the independent
  /// serialization-existence backtracking (serializable <=> no violation).
  bool crossCheckOk = true;
};

/// Definition-level atomicity oracle, sharing NO code with
/// analysis::AtomicityAnalysis: enumerates every linearization of the
/// causal partial order (DFS over one-event extensions, as
/// BruteForceOracle does for cuts), derives the transaction conflict graph
/// of EACH linearization from pairwise event positions, takes violating
/// regions from a Floyd-Warshall transitive closure, and cross-checks the
/// verdict with a brute-force search for a conflict-preserving serial
/// order of the transactions.
class AtomicityOracle {
 public:
  explicit AtomicityOracle(const observer::CausalityGraph& graph,
                           OracleOptions opts = {})
      : graph_(&graph), opts_(opts) {
    n_ = graph.threadCount();
    std::size_t total = 0;
    for (ThreadId j = 0; j < n_; ++j) total += graph.eventsOfThread(j);
    if (total > opts_.maxEvents) {
      result_.feasible = false;
      return;
    }
    segment();
    std::vector<LocalSeq> k(n_, 0);
    std::vector<std::pair<ThreadId, LocalSeq>> lin;
    lin.reserve(total);
    dfs(k, lin, total);
  }

  [[nodiscard]] const AtomicityOracleResult& result() const noexcept {
    return result_;
  }

 private:
  struct Txn {
    ThreadId thread = 0;
    bool annotated = false;
    std::size_t ordinal = 0;  ///< 1-based among the thread's regions
  };

  /// Per-thread transaction segmentation (linearization-independent: a
  /// thread's events keep program order in every linearization).  Nested
  /// regions merge into the outermost; an end without a begin is a no-op;
  /// a region open at trace end runs to trace end.
  void segment() {
    txnOf_.assign(n_, {});
    for (ThreadId j = 0; j < n_; ++j) {
      txnOf_[j].assign(graph_->eventsOfThread(j) + 1, -1);
      std::size_t depth = 0;
      int current = -1;
      std::size_t ordinals = 0;
      for (LocalSeq k = 1; k <= graph_->eventsOfThread(j); ++k) {
        const trace::Event& e = graph_->message(j, k).event;
        if (e.kind == trace::EventKind::kRegionBegin) {
          if (depth++ == 0) {
            current = static_cast<int>(txns_.size());
            txns_.push_back(Txn{j, true, ++ordinals});
          }
          txnOf_[j][k] = current;
        } else if (e.kind == trace::EventKind::kRegionEnd) {
          if (depth > 0) {
            txnOf_[j][k] = current;
            if (--depth == 0) current = -1;
          } else {
            txnOf_[j][k] = -1;  // hostile unmatched end: no-op
          }
        } else if (depth > 0) {
          txnOf_[j][k] = current;
        } else {
          txnOf_[j][k] = static_cast<int>(txns_.size());
          txns_.push_back(Txn{j, false, 0});
        }
      }
      // Program-order edges between the thread's consecutive transactions:
      // a serialization must respect each thread's own order (Velodrome's
      // transactional happens-before), independent of conflicts.
      int lastSeen = -1;
      for (LocalSeq k = 1; k <= graph_->eventsOfThread(j); ++k) {
        const int tx = txnOf_[j][k];
        if (tx < 0 || tx == lastSeen) continue;
        if (lastSeen >= 0) po_.emplace_back(lastSeen, tx);
        lastSeen = tx;
      }
    }
    for (const Txn& t : txns_) result_.regions += t.annotated ? 1 : 0;
  }

  [[nodiscard]] bool enabled(const std::vector<LocalSeq>& k,
                             ThreadId j) const {
    if (k[j] >= graph_->eventsOfThread(j)) return false;
    const trace::Message& m = graph_->message(j, k[j] + 1);
    for (ThreadId o = 0; o < n_; ++o) {
      if (o != j && m.clock[o] > k[o]) return false;
    }
    return true;
  }

  void dfs(std::vector<LocalSeq>& k,
           std::vector<std::pair<ThreadId, LocalSeq>>& lin,
           std::size_t total) {
    if (!result_.feasible) return;
    if (lin.size() == total) {
      if (++result_.paths > opts_.maxRuns) {
        result_.feasible = false;
        return;
      }
      checkLinearization(lin);
      return;
    }
    for (ThreadId j = 0; j < n_; ++j) {
      if (!enabled(k, j)) continue;
      ++k[j];
      lin.emplace_back(j, k[j]);
      dfs(k, lin, total);
      lin.pop_back();
      --k[j];
    }
  }

  void checkLinearization(
      const std::vector<std::pair<ThreadId, LocalSeq>>& lin) {
    // Conflict edges from pairwise linearization positions: same variable,
    // at least one write-like access, different transactions.
    const std::size_t t = txns_.size();
    std::vector<std::vector<bool>> edge(t, std::vector<bool>(t, false));
    for (std::size_t a = 0; a < lin.size(); ++a) {
      const trace::Event& ea =
          graph_->message(lin[a].first, lin[a].second).event;
      if (!ea.accessesVariable()) continue;
      for (std::size_t b = a + 1; b < lin.size(); ++b) {
        const trace::Event& eb =
            graph_->message(lin[b].first, lin[b].second).event;
        if (!eb.accessesVariable() || ea.var != eb.var) continue;
        if (!trace::isWriteLike(ea.kind) && !trace::isWriteLike(eb.kind)) {
          continue;
        }
        const int ta = txnOf_[lin[a].first][lin[a].second];
        const int tb = txnOf_[lin[b].first][lin[b].second];
        if (ta >= 0 && tb >= 0 && ta != tb) {
          edge[static_cast<std::size_t>(ta)][static_cast<std::size_t>(tb)] =
              true;
        }
      }
    }
    // Same-thread transactions are ordered regardless of conflicts.
    for (const auto& [a, b] : po_) {
      edge[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] = true;
    }
    // Violating regions: annotated transactions on some cycle
    // (Floyd-Warshall transitive closure).
    std::vector<std::vector<bool>> reach = edge;
    for (std::size_t m = 0; m < t; ++m) {
      for (std::size_t i = 0; i < t; ++i) {
        if (!reach[i][m]) continue;
        for (std::size_t j = 0; j < t; ++j) {
          if (reach[m][j]) reach[i][j] = true;
        }
      }
    }
    std::set<std::pair<ThreadId, std::size_t>> violating;
    bool anyCycle = false;
    for (std::size_t i = 0; i < t; ++i) {
      bool onCycle = reach[i][i];
      for (std::size_t j = 0; !onCycle && j < t; ++j) {
        onCycle = i != j && reach[i][j] && reach[j][i];
      }
      if (!onCycle) continue;
      anyCycle = true;
      if (txns_[i].annotated) {
        violating.emplace(txns_[i].thread, txns_[i].ordinal);
      }
    }
    // Independent serializability verdict: does ANY conflict-preserving
    // serial order of the transactions exist?  Backtracking over "next
    // transaction all of whose conflicting predecessors are done".
    std::vector<bool> done(t, false);
    const bool serializable = serialize(edge, done, 0);
    if (serializable != !anyCycle) result_.crossCheckOk = false;
    if (result_.paths == 1) {
      result_.violations = std::move(violating);
    } else if (violating != result_.violations) {
      result_.pathInvariant = false;
    }
  }

  bool serialize(const std::vector<std::vector<bool>>& edge,
                 std::vector<bool>& done, std::size_t placed) {
    const std::size_t t = txns_.size();
    if (placed == t) return true;
    for (std::size_t i = 0; i < t; ++i) {
      if (done[i]) continue;
      bool ready = true;
      for (std::size_t j = 0; ready && j < t; ++j) {
        if (!done[j] && j != i && edge[j][i]) ready = false;
      }
      if (!ready) continue;
      done[i] = true;
      if (serialize(edge, done, placed + 1)) return true;
      done[i] = false;
    }
    return false;
  }

  const observer::CausalityGraph* graph_;
  OracleOptions opts_;
  std::size_t n_ = 0;
  std::vector<Txn> txns_;
  /// txnOf_[j][k] = transaction of thread j's k-th event (1-based); -1 for
  /// hostile unmatched region ends.
  std::vector<std::vector<int>> txnOf_;
  /// Program-order edges (prev txn, next txn) per thread.
  std::vector<std::pair<int, int>> po_;
  AtomicityOracleResult result_;
};

// --- exhaustive MHP pair census -----------------------------------------

/// Definition-level never-concurrent variable pairs: (x, y) qualifies iff
/// EVERY relevant access of x is causally ordered against EVERY relevant
/// access of y, with the ordering read off the clocks directly (same
/// thread: local order; across threads: b after a iff b's clock already
/// covers a's own-thread component).  Independent of
/// analysis::MhpPrefilter::classifyNeverConcurrent.
inline std::vector<std::pair<VarId, VarId>> exhaustiveNeverConcurrentPairs(
    const observer::CausalityGraph& graph) {
  struct Access {
    ThreadId thread;
    LocalSeq index;
  };
  std::map<VarId, std::vector<Access>> byVar;
  for (ThreadId j = 0; j < graph.threadCount(); ++j) {
    for (LocalSeq k = 1; k <= graph.eventsOfThread(j); ++k) {
      const trace::Event& e = graph.message(j, k).event;
      if (e.accessesVariable()) byVar[e.var].push_back(Access{j, k});
    }
  }
  const auto ordered = [&](const Access& a, const Access& b) {
    if (a.thread == b.thread) return true;  // program order
    const trace::Message& ma = graph.message(a.thread, a.index);
    const trace::Message& mb = graph.message(b.thread, b.index);
    return mb.clock[a.thread] >= ma.clock[a.thread] ||
           ma.clock[b.thread] >= mb.clock[b.thread];
  };
  std::vector<std::pair<VarId, VarId>> pairs;
  for (auto x = byVar.begin(); x != byVar.end(); ++x) {
    for (auto y = std::next(x); y != byVar.end(); ++y) {
      bool allOrdered = true;
      for (const Access& a : x->second) {
        for (const Access& b : y->second) {
          if (!ordered(a, b)) {
            allOrdered = false;
            break;
          }
        }
        if (!allOrdered) break;
      }
      if (allOrdered) pairs.emplace_back(x->first, y->first);
    }
  }
  return pairs;
}

}  // namespace mpx::testing
