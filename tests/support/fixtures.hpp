// Shared test fixtures: canonical causality graphs for the paper's two
// examples and generic program-to-observer plumbing.
#pragma once

#include <unordered_set>
#include <vector>

#include "core/instrumentor.hpp"
#include "observer/causality.hpp"
#include "observer/global_state.hpp"
#include "program/corpus.hpp"
#include "program/scheduler.hpp"
#include "trace/channel.hpp"

namespace mpx::testing {

struct ObservedComputation {
  program::Program prog;
  program::ExecutionRecord rec;
  observer::CausalityGraph graph;
  observer::StateSpace space;
};

/// Runs `prog` under `sched`, instruments writes of `tracked`, and returns
/// the finalized causality graph plus state space.
inline ObservedComputation observe(program::Program prog,
                                   program::Scheduler& sched,
                                   const std::vector<std::string>& tracked) {
  ObservedComputation out;
  out.prog = std::move(prog);
  program::Executor ex(out.prog, sched);
  out.rec = ex.run();

  std::unordered_set<VarId> ids;
  for (const auto& name : tracked) ids.insert(out.prog.vars.id(name));
  core::Instrumentor instr(core::RelevancePolicy::writesOf(ids), out.graph);
  for (const auto& e : out.rec.events) instr.onEvent(e);
  out.graph.finalize();
  out.space = observer::StateSpace::byNames(out.prog.vars, tracked);
  return out;
}

/// The paper's Example 1 (Fig. 5) computation, from the observed schedule.
inline ObservedComputation landingComputation() {
  program::FixedScheduler sched(program::corpus::landingObservedSchedule());
  return observe(program::corpus::landingController(), sched,
                 {"landing", "approved", "radio"});
}

/// The paper's Example 2 (Fig. 6) computation.
inline ObservedComputation xyzComputation() {
  program::FixedScheduler sched(program::corpus::xyzObservedSchedule());
  return observe(program::corpus::xyzProgram(), sched, {"x", "y", "z"});
}

}  // namespace mpx::testing
