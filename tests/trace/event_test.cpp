// Event kinds, write-likeness (§3.1 mapping), and Theorem-3 message
// comparisons.
#include "trace/event.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mpx::trace {
namespace {

TEST(EventKind, WriteLikeCoversSynchronizationEvents) {
  // Paper §3.1: lock operations, notify/wait-resume and thread start/exit
  // are writes of shared (dummy) variables.
  EXPECT_TRUE(isWriteLike(EventKind::kWrite));
  EXPECT_TRUE(isWriteLike(EventKind::kLockAcquire));
  EXPECT_TRUE(isWriteLike(EventKind::kLockRelease));
  EXPECT_TRUE(isWriteLike(EventKind::kNotify));
  EXPECT_TRUE(isWriteLike(EventKind::kWaitResume));
  EXPECT_TRUE(isWriteLike(EventKind::kThreadStart));
  EXPECT_TRUE(isWriteLike(EventKind::kThreadExit));
  EXPECT_FALSE(isWriteLike(EventKind::kRead));
  EXPECT_FALSE(isWriteLike(EventKind::kInternal));
}

TEST(EventKind, SharedAccessIsReadOrWriteLike) {
  EXPECT_TRUE(isSharedAccess(EventKind::kRead));
  EXPECT_TRUE(isSharedAccess(EventKind::kWrite));
  EXPECT_FALSE(isSharedAccess(EventKind::kInternal));
}

TEST(EventKind, ToStringIsTotal) {
  EXPECT_STREQ(toString(EventKind::kInternal), "internal");
  EXPECT_STREQ(toString(EventKind::kRead), "read");
  EXPECT_STREQ(toString(EventKind::kWrite), "write");
  EXPECT_STREQ(toString(EventKind::kLockAcquire), "lock");
  EXPECT_STREQ(toString(EventKind::kWaitResume), "wait-resume");
}

Message msg(ThreadId t, std::initializer_list<std::uint64_t> clock) {
  Message m;
  m.event.kind = EventKind::kWrite;
  m.event.thread = t;
  m.clock = vc::VectorClock(clock);
  return m;
}

TEST(Message, CausallyPrecedesAcrossThreads) {
  // Theorem 3: e ⊳ e' iff V[i] <= V'[i], i the thread of e.
  const Message a = msg(0, {1, 0});
  const Message b = msg(1, {1, 1});  // saw a
  EXPECT_TRUE(a.causallyPrecedes(b));
  EXPECT_FALSE(b.causallyPrecedes(a));
  EXPECT_FALSE(a.concurrentWith(b));
}

TEST(Message, ConcurrentMessages) {
  const Message a = msg(0, {1, 0});
  const Message b = msg(1, {0, 1});
  EXPECT_FALSE(a.causallyPrecedes(b));
  EXPECT_FALSE(b.causallyPrecedes(a));
  EXPECT_TRUE(a.concurrentWith(b));
}

TEST(Message, SameThreadOrderedByOwnComponent) {
  const Message a = msg(0, {1, 0});
  const Message b = msg(0, {2, 3});
  EXPECT_TRUE(a.causallyPrecedes(b));
  EXPECT_FALSE(b.causallyPrecedes(a));
}

TEST(Message, NotSelfPreceding) {
  const Message a = msg(0, {1, 0});
  EXPECT_FALSE(a.causallyPrecedes(a));
}

TEST(Message, TheoremThreeSecondForm) {
  // e ⊳ e' also iff V < V' for emitted messages.
  const Message a = msg(0, {1, 0});
  const Message b = msg(1, {1, 1});
  EXPECT_TRUE(a.clock.less(b.clock));
  const Message c = msg(1, {0, 1});
  EXPECT_FALSE(a.clock.less(c.clock));
  EXPECT_FALSE(c.clock.less(a.clock));
}

TEST(Event, StreamRendering) {
  Event e;
  e.kind = EventKind::kWrite;
  e.thread = 1;
  e.var = 2;
  e.value = 7;
  e.localSeq = 3;
  std::ostringstream os;
  os << e;
  EXPECT_EQ(os.str(), "write[T1, v2=7, k=3]");
}

TEST(Event, EqualityIsStructural) {
  Event a;
  a.kind = EventKind::kRead;
  a.thread = 0;
  a.var = 1;
  Event b = a;
  EXPECT_EQ(a, b);
  b.value = 9;
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace mpx::trace
