// Wire codec round-trips and corruption handling.
#include "trace/codec.hpp"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

namespace mpx::trace {
namespace {

Message randomMessage(std::mt19937_64& rng) {
  Message m;
  m.event.kind = static_cast<EventKind>(rng() % 9);
  m.event.thread = static_cast<ThreadId>(rng() % 8);
  m.event.var = static_cast<VarId>(rng() % 16);
  m.event.value = static_cast<Value>(rng()) - static_cast<Value>(rng());
  m.event.localSeq = rng() % 1000;
  m.event.globalSeq = rng() % 100000;
  const std::size_t n = rng() % 6;
  for (std::size_t j = 0; j < n; ++j) {
    m.clock.set(static_cast<ThreadId>(j), rng() % 50);
  }
  return m;
}

class BinaryCodecRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BinaryCodecRoundTrip, EncodeDecodeIsIdentity) {
  std::mt19937_64 rng(GetParam());
  std::vector<Message> sent;
  for (int i = 0; i < 50; ++i) sent.push_back(randomMessage(rng));
  const auto bytes = BinaryCodec::encodeAll(sent);
  const auto got = BinaryCodec::decodeAll(bytes);
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i].event, sent[i].event);
    EXPECT_EQ(got[i].clock, sent[i].clock);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryCodecRoundTrip,
                         ::testing::Values(11, 22, 33));

TEST(BinaryCodec, TruncatedInputThrows) {
  std::mt19937_64 rng(5);
  std::vector<std::uint8_t> bytes;
  BinaryCodec::encode(randomMessage(rng), bytes);
  bytes.pop_back();
  EXPECT_THROW(BinaryCodec::decodeAll(bytes), std::runtime_error);
}

TEST(BinaryCodec, CorruptKindThrows) {
  std::mt19937_64 rng(6);
  std::vector<std::uint8_t> bytes;
  BinaryCodec::encode(randomMessage(rng), bytes);
  bytes[0] = 0xff;
  std::size_t offset = 0;
  EXPECT_THROW(BinaryCodec::decode(bytes, offset), std::runtime_error);
}

TEST(BinaryCodec, EmptyInputDecodesToNothing) {
  EXPECT_TRUE(BinaryCodec::decodeAll({}).empty());
}

/// Encodes a stream with per-frame state, mirroring one kEventsSparse frame.
std::vector<std::uint8_t> sparseEncodeAll(const std::vector<Message>& ms) {
  SparseClockCodec::FrameState st;
  std::vector<std::uint8_t> out;
  for (const Message& m : ms) SparseClockCodec::encode(m, st, out);
  return out;
}

std::vector<Message> sparseDecodeAll(const std::vector<std::uint8_t>& in) {
  SparseClockCodec::FrameState st;
  std::vector<Message> out;
  std::size_t off = 0;
  while (off < in.size()) {
    const DecodeResult r =
        SparseClockCodec::tryDecode(in.data() + off, in.size() - off, st);
    EXPECT_EQ(r.status, DecodeStatus::kOk) << r.error;
    if (r.status != DecodeStatus::kOk) break;
    out.push_back(r.message);
    off += r.consumed;
  }
  return out;
}

class SparseClockCodecRoundTrip
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SparseClockCodecRoundTrip, EncodeDecodeIsIdentity) {
  std::mt19937_64 rng(GetParam());
  std::vector<Message> sent;
  for (int i = 0; i < 50; ++i) sent.push_back(randomMessage(rng));
  const auto got = sparseDecodeAll(sparseEncodeAll(sent));
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i].event, sent[i].event);
    EXPECT_EQ(got[i].clock, sent[i].clock);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SparseClockCodecRoundTrip,
                         ::testing::Values(44, 55, 66));

TEST(SparseClockCodec, WideSlowlyChangingClocksBeatDenseEncoding) {
  // The motivating case: 64 threads, one component advancing per message —
  // an Algorithm A thread ticking itself between syncs.  The sparse stream
  // must be well under the dense (BinaryCodec) stream.
  constexpr ThreadId kThreads = 64;
  vc::VectorClock clock;
  for (ThreadId t = 0; t < kThreads; ++t) clock.set(t, 1);
  std::vector<Message> ms;
  for (int i = 0; i < 100; ++i) {
    Message m;
    m.event.kind = EventKind::kWrite;
    m.event.thread = 3;
    m.event.localSeq = clock.increment(3);
    m.clock = clock;
    ms.push_back(m);
  }
  const std::size_t dense = BinaryCodec::encodeAll(ms).size();
  const std::size_t sparse = sparseEncodeAll(ms).size();
  EXPECT_LT(sparse * 4, dense)
      << "delta coding should collapse unchanged components";
  const auto got = sparseDecodeAll(sparseEncodeAll(ms));
  ASSERT_EQ(got.size(), ms.size());
  for (std::size_t i = 0; i < ms.size(); ++i) {
    EXPECT_EQ(got[i].clock, ms[i].clock);
  }
}

TEST(SparseClockCodec, EncodingIsDeterministicAcrossFrameStates) {
  // Two independent encoders fed the same messages must agree byte-for-byte
  // (the at-least-once resend path re-encodes a batch from scratch).
  std::mt19937_64 rng(99);
  std::vector<Message> ms;
  for (int i = 0; i < 30; ++i) ms.push_back(randomMessage(rng));
  EXPECT_EQ(sparseEncodeAll(ms), sparseEncodeAll(ms));
}

TEST(SparseClockCodec, DeltaWithoutInFrameBaseIsCorrupt) {
  // A mode-2 tail referencing a thread with no earlier message in the
  // frame can only come from mis-framing; the decoder must refuse, not
  // guess a base.
  Message a;
  a.event.thread = 7;
  for (ThreadId t = 0; t < 32; ++t) a.clock.set(t, 1000 + t);
  Message b = a;
  b.clock.increment(7);
  SparseClockCodec::FrameState enc;
  std::vector<std::uint8_t> first;
  SparseClockCodec::encode(a, enc, first);
  std::vector<std::uint8_t> second;
  SparseClockCodec::encode(b, enc, second);  // 1-component delta vs `a`
  ASSERT_LT(second.size(), first.size());

  SparseClockCodec::FrameState dec;  // fresh frame: no base for thread 7
  const DecodeResult r =
      SparseClockCodec::tryDecode(second.data(), second.size(), dec);
  EXPECT_EQ(r.status, DecodeStatus::kCorrupt);
  EXPECT_STREQ(r.error, "delta clock without in-frame base");
}

TEST(SparseClockCodec, RejectsUnknownModeAndHostileCounts) {
  Message m;
  m.clock.set(0, 1);
  SparseClockCodec::FrameState st;
  std::vector<std::uint8_t> bytes;
  SparseClockCodec::encode(m, st, bytes);
  const std::size_t modeOff = 33;  // fixed header is 33 bytes, then u8 mode

  auto corruptAt = [&](std::size_t off, std::initializer_list<std::uint8_t> v,
                       const char* expect) {
    std::vector<std::uint8_t> bad = bytes;
    std::size_t i = off;
    for (const std::uint8_t b : v) bad[i++] = b;
    SparseClockCodec::FrameState fresh;
    const DecodeResult r =
        SparseClockCodec::tryDecode(bad.data(), bad.size(), fresh);
    EXPECT_EQ(r.status, DecodeStatus::kCorrupt);
    EXPECT_STREQ(r.error, expect);
  };
  corruptAt(modeOff, {3}, "unknown clock coding mode");
  // Count word 0xffffffff: must be rejected before any allocation.
  corruptAt(modeOff + 1, {0xff, 0xff, 0xff, 0xff}, "oversized vector clock");
}

TEST(SparseClockCodec, RejectsUnorderedAndOutOfRangeIndices) {
  // Hand-build a sparse (mode 1) tail with hostile index sequences.
  auto makeSparse = [](std::initializer_list<std::pair<std::uint32_t,
                                                       std::uint64_t>> comps) {
    std::vector<std::uint8_t> out(33, 0);  // zeroed fixed header: kRead etc.
    out.push_back(SparseClockCodec::kModeSparse);
    const std::uint32_t n = static_cast<std::uint32_t>(comps.size());
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(n >> (8 * i)));
    }
    for (const auto& [idx, val] : comps) {
      for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::uint8_t>(idx >> (8 * i)));
      }
      for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(val >> (8 * i)));
      }
    }
    return out;
  };

  SparseClockCodec::FrameState st;
  const auto dup = makeSparse({{4, 1}, {4, 2}});
  DecodeResult r = SparseClockCodec::tryDecode(dup.data(), dup.size(), st);
  EXPECT_EQ(r.status, DecodeStatus::kCorrupt);
  EXPECT_STREQ(r.error, "unordered clock component indices");

  const auto desc = makeSparse({{9, 1}, {2, 2}});
  r = SparseClockCodec::tryDecode(desc.data(), desc.size(), st);
  EXPECT_EQ(r.status, DecodeStatus::kCorrupt);
  EXPECT_STREQ(r.error, "unordered clock component indices");

  const auto far = makeSparse({{BinaryCodec::kMaxClockComponents, 1}});
  r = SparseClockCodec::tryDecode(far.data(), far.size(), st);
  EXPECT_EQ(r.status, DecodeStatus::kCorrupt);
  EXPECT_STREQ(r.error, "clock component index out of range");

  // In-range strictly-increasing indices decode fine.
  const auto ok = makeSparse({{2, 7}, {5, 9}});
  r = SparseClockCodec::tryDecode(ok.data(), ok.size(), st);
  ASSERT_EQ(r.status, DecodeStatus::kOk);
  EXPECT_EQ(r.message.clock.get(2), 7u);
  EXPECT_EQ(r.message.clock.get(5), 9u);
  EXPECT_EQ(r.message.clock.get(0), 0u);
}

TEST(SparseClockCodec, TruncationAtEveryOffsetNeverDecodesGarbage) {
  std::mt19937_64 rng(123);
  std::vector<Message> ms;
  for (int i = 0; i < 5; ++i) ms.push_back(randomMessage(rng));
  const auto bytes = sparseEncodeAll(ms);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    SparseClockCodec::FrameState st;
    std::size_t off = 0;
    // Decode as far as possible; the final partial message must report
    // kNeedMore (prefixes of valid messages are never corrupt).
    for (;;) {
      const DecodeResult r =
          SparseClockCodec::tryDecode(bytes.data() + off, cut - off, st);
      if (r.status != DecodeStatus::kOk) {
        EXPECT_EQ(r.status, DecodeStatus::kNeedMore) << "cut " << cut;
        break;
      }
      off += r.consumed;
      if (off == cut) break;
    }
  }
}

class TextCodecTest : public ::testing::Test {
 protected:
  TextCodecTest() {
    x_ = vars_.intern("x", -1);
    landing_ = vars_.intern("landing", 0);
  }
  VarTable vars_;
  VarId x_ = 0;
  VarId landing_ = 0;
};

TEST_F(TextCodecTest, FormatsPaperNotation) {
  Message m;
  m.event.kind = EventKind::kWrite;
  m.event.thread = 1;  // T2 in 1-based paper notation
  m.event.var = x_;
  m.event.value = 1;
  m.clock = vc::VectorClock{1, 2};
  const TextCodec codec(vars_);
  EXPECT_EQ(codec.format(m), "<x=1, T2, (1,2)>");
}

TEST_F(TextCodecTest, ParsesItsOwnOutput) {
  Message m;
  m.event.kind = EventKind::kWrite;
  m.event.thread = 0;
  m.event.var = landing_;
  m.event.value = 1;
  m.event.localSeq = 2;
  m.clock = vc::VectorClock{2, 0};
  const TextCodec codec(vars_);
  const Message back = codec.parse(codec.format(m));
  EXPECT_EQ(back.event.kind, EventKind::kWrite);
  EXPECT_EQ(back.event.thread, m.event.thread);
  EXPECT_EQ(back.event.var, m.event.var);
  EXPECT_EQ(back.event.value, m.event.value);
  EXPECT_EQ(back.clock, m.clock);
}

TEST_F(TextCodecTest, ParseRejectsGarbage) {
  const TextCodec codec(vars_);
  EXPECT_THROW(codec.parse("not a message"), std::runtime_error);
  EXPECT_THROW(codec.parse("<x=1>"), std::runtime_error);
}

TEST(TraceLog, SaveLoadRoundTrip) {
  std::mt19937_64 rng(77);
  TraceLog log;
  for (int i = 0; i < 20; ++i) log.append(randomMessage(rng));
  std::stringstream ss;
  log.saveBinary(ss);
  const TraceLog back = TraceLog::loadBinary(ss);
  ASSERT_EQ(back.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(back.messages()[i].event, log.messages()[i].event);
    EXPECT_EQ(back.messages()[i].clock, log.messages()[i].clock);
  }
}

TEST(TraceLog, LoadTruncatedThrows) {
  std::stringstream ss;
  ss << "abc";
  EXPECT_THROW(TraceLog::loadBinary(ss), std::runtime_error);
}

}  // namespace
}  // namespace mpx::trace
