// Wire codec round-trips and corruption handling.
#include "trace/codec.hpp"

#include <gtest/gtest.h>

#include <random>
#include <sstream>

namespace mpx::trace {
namespace {

Message randomMessage(std::mt19937_64& rng) {
  Message m;
  m.event.kind = static_cast<EventKind>(rng() % 9);
  m.event.thread = static_cast<ThreadId>(rng() % 8);
  m.event.var = static_cast<VarId>(rng() % 16);
  m.event.value = static_cast<Value>(rng()) - static_cast<Value>(rng());
  m.event.localSeq = rng() % 1000;
  m.event.globalSeq = rng() % 100000;
  const std::size_t n = rng() % 6;
  for (std::size_t j = 0; j < n; ++j) {
    m.clock.set(static_cast<ThreadId>(j), rng() % 50);
  }
  return m;
}

class BinaryCodecRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BinaryCodecRoundTrip, EncodeDecodeIsIdentity) {
  std::mt19937_64 rng(GetParam());
  std::vector<Message> sent;
  for (int i = 0; i < 50; ++i) sent.push_back(randomMessage(rng));
  const auto bytes = BinaryCodec::encodeAll(sent);
  const auto got = BinaryCodec::decodeAll(bytes);
  ASSERT_EQ(got.size(), sent.size());
  for (std::size_t i = 0; i < sent.size(); ++i) {
    EXPECT_EQ(got[i].event, sent[i].event);
    EXPECT_EQ(got[i].clock, sent[i].clock);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BinaryCodecRoundTrip,
                         ::testing::Values(11, 22, 33));

TEST(BinaryCodec, TruncatedInputThrows) {
  std::mt19937_64 rng(5);
  std::vector<std::uint8_t> bytes;
  BinaryCodec::encode(randomMessage(rng), bytes);
  bytes.pop_back();
  EXPECT_THROW(BinaryCodec::decodeAll(bytes), std::runtime_error);
}

TEST(BinaryCodec, CorruptKindThrows) {
  std::mt19937_64 rng(6);
  std::vector<std::uint8_t> bytes;
  BinaryCodec::encode(randomMessage(rng), bytes);
  bytes[0] = 0xff;
  std::size_t offset = 0;
  EXPECT_THROW(BinaryCodec::decode(bytes, offset), std::runtime_error);
}

TEST(BinaryCodec, EmptyInputDecodesToNothing) {
  EXPECT_TRUE(BinaryCodec::decodeAll({}).empty());
}

class TextCodecTest : public ::testing::Test {
 protected:
  TextCodecTest() {
    x_ = vars_.intern("x", -1);
    landing_ = vars_.intern("landing", 0);
  }
  VarTable vars_;
  VarId x_ = 0;
  VarId landing_ = 0;
};

TEST_F(TextCodecTest, FormatsPaperNotation) {
  Message m;
  m.event.kind = EventKind::kWrite;
  m.event.thread = 1;  // T2 in 1-based paper notation
  m.event.var = x_;
  m.event.value = 1;
  m.clock = vc::VectorClock{1, 2};
  const TextCodec codec(vars_);
  EXPECT_EQ(codec.format(m), "<x=1, T2, (1,2)>");
}

TEST_F(TextCodecTest, ParsesItsOwnOutput) {
  Message m;
  m.event.kind = EventKind::kWrite;
  m.event.thread = 0;
  m.event.var = landing_;
  m.event.value = 1;
  m.event.localSeq = 2;
  m.clock = vc::VectorClock{2, 0};
  const TextCodec codec(vars_);
  const Message back = codec.parse(codec.format(m));
  EXPECT_EQ(back.event.kind, EventKind::kWrite);
  EXPECT_EQ(back.event.thread, m.event.thread);
  EXPECT_EQ(back.event.var, m.event.var);
  EXPECT_EQ(back.event.value, m.event.value);
  EXPECT_EQ(back.clock, m.clock);
}

TEST_F(TextCodecTest, ParseRejectsGarbage) {
  const TextCodec codec(vars_);
  EXPECT_THROW(codec.parse("not a message"), std::runtime_error);
  EXPECT_THROW(codec.parse("<x=1>"), std::runtime_error);
}

TEST(TraceLog, SaveLoadRoundTrip) {
  std::mt19937_64 rng(77);
  TraceLog log;
  for (int i = 0; i < 20; ++i) log.append(randomMessage(rng));
  std::stringstream ss;
  log.saveBinary(ss);
  const TraceLog back = TraceLog::loadBinary(ss);
  ASSERT_EQ(back.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(back.messages()[i].event, log.messages()[i].event);
    EXPECT_EQ(back.messages()[i].clock, log.messages()[i].clock);
  }
}

TEST(TraceLog, LoadTruncatedThrows) {
  std::stringstream ss;
  ss << "abc";
  EXPECT_THROW(TraceLog::loadBinary(ss), std::runtime_error);
}

}  // namespace
}  // namespace mpx::trace
