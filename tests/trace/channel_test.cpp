// Channels: delivery policies between the instrumented program and the
// observer.  The key contract: every policy delivers exactly the pushed
// multiset of messages (reordering only — Theorem 3 handles the rest).
#include "trace/channel.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace mpx::trace {
namespace {

Message mk(ThreadId t, std::uint64_t k) {
  Message m;
  m.event.kind = EventKind::kWrite;
  m.event.thread = t;
  m.event.globalSeq = k;
  m.clock.set(t, k);
  return m;
}

std::vector<Message> pushAll(Channel& ch, std::size_t n) {
  std::vector<Message> sent;
  for (std::size_t i = 1; i <= n; ++i) {
    sent.push_back(mk(0, i));
    ch.onMessage(sent.back());
  }
  ch.close();
  return sent;
}

std::vector<GlobalSeq> seqs(const std::vector<Message>& ms) {
  std::vector<GlobalSeq> out;
  for (const auto& m : ms) out.push_back(m.event.globalSeq);
  return out;
}

TEST(FifoChannel, DeliversInOrderImmediately) {
  CollectingSink sink;
  FifoChannel ch(sink);
  ch.onMessage(mk(0, 1));
  EXPECT_EQ(sink.messages().size(), 1u);  // no buffering
  ch.onMessage(mk(0, 2));
  ch.close();
  EXPECT_EQ(seqs(sink.messages()), (std::vector<GlobalSeq>{1, 2}));
}

TEST(ReverseChannel, DeliversReversedOnClose) {
  CollectingSink sink;
  ReverseChannel ch(sink);
  pushAll(ch, 3);
  EXPECT_EQ(seqs(sink.messages()), (std::vector<GlobalSeq>{3, 2, 1}));
}

TEST(ReverseChannel, NothingDeliveredBeforeClose) {
  CollectingSink sink;
  ReverseChannel ch(sink);
  ch.onMessage(mk(0, 1));
  EXPECT_TRUE(sink.messages().empty());
}

TEST(ShuffleChannel, DeliversPermutationOfInput) {
  CollectingSink sink;
  ShuffleChannel ch(sink, /*seed=*/7);
  const std::vector<Message> sent = pushAll(ch, 20);
  auto got = seqs(sink.messages());
  auto want = seqs(sent);
  ASSERT_EQ(got.size(), want.size());
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  EXPECT_EQ(got, want);
}

TEST(ShuffleChannel, SameSeedSamePermutation) {
  CollectingSink s1, s2;
  ShuffleChannel c1(s1, 42), c2(s2, 42);
  pushAll(c1, 10);
  pushAll(c2, 10);
  EXPECT_EQ(seqs(s1.messages()), seqs(s2.messages()));
}

TEST(ShuffleChannel, DifferentSeedsUsuallyDiffer) {
  CollectingSink s1, s2;
  ShuffleChannel c1(s1, 1), c2(s2, 2);
  pushAll(c1, 20);
  pushAll(c2, 20);
  EXPECT_NE(seqs(s1.messages()), seqs(s2.messages()));
}

TEST(ShuffleChannel, CloseIsIdempotent) {
  CollectingSink sink;
  ShuffleChannel ch(sink, 3);
  pushAll(ch, 5);
  ch.close();
  EXPECT_EQ(sink.messages().size(), 5u);
}

TEST(DelayChannel, DeliversEverything) {
  CollectingSink sink;
  DelayChannel ch(sink, 9, /*maxDelay=*/3);
  const std::vector<Message> sent = pushAll(ch, 50);
  auto got = seqs(sink.messages());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, seqs(sent));
}

TEST(DelayChannel, EarlyDeliveryIsBounded) {
  // With maxDelay = d the channel holds at most d messages, so a message
  // can overtake at most d predecessors: delivered position >= original - d.
  const std::size_t d = 4;
  CollectingSink sink;
  DelayChannel ch(sink, 123, d);
  pushAll(ch, 100);
  const auto got = seqs(sink.messages());
  bool anyReordering = false;
  for (std::size_t pos = 0; pos < got.size(); ++pos) {
    const std::size_t original = static_cast<std::size_t>(got[pos]) - 1;
    EXPECT_GE(pos + d, original)
        << "message " << got[pos] << " delivered too early";
    if (pos != original) anyReordering = true;
  }
  EXPECT_TRUE(anyReordering) << "delay channel never reordered anything";
}

TEST(FunctionSink, ForwardsToLambda) {
  std::size_t count = 0;
  FunctionSink sink([&count](const Message&) { ++count; });
  sink.onMessage(mk(0, 1));
  sink.onMessage(mk(0, 2));
  EXPECT_EQ(count, 2u);
}

TEST(CollectingSink, TakeMovesOut) {
  CollectingSink sink;
  sink.onMessage(mk(0, 1));
  const auto taken = sink.take();
  EXPECT_EQ(taken.size(), 1u);
  EXPECT_TRUE(sink.messages().empty());
}

TEST(MakeChannel, FactoryProducesEachPolicy) {
  CollectingSink sink;
  for (const DeliveryPolicy p :
       {DeliveryPolicy::kFifo, DeliveryPolicy::kShuffle,
        DeliveryPolicy::kBoundedDelay, DeliveryPolicy::kReverse}) {
    sink.clear();
    auto ch = makeChannel(p, sink, /*seed=*/5, /*maxDelay=*/2);
    ch->onMessage(mk(0, 1));
    ch->onMessage(mk(0, 2));
    ch->close();
    EXPECT_EQ(sink.messages().size(), 2u);
  }
}

}  // namespace
}  // namespace mpx::trace
