#include "trace/var_table.hpp"

#include <gtest/gtest.h>

namespace mpx::trace {
namespace {

TEST(VarTable, InternAssignsDenseIds) {
  VarTable t;
  EXPECT_EQ(t.intern("x", 1), 0u);
  EXPECT_EQ(t.intern("y", 2), 1u);
  EXPECT_EQ(t.size(), 2u);
}

TEST(VarTable, InternIsIdempotent) {
  VarTable t;
  const VarId x = t.intern("x", 5);
  EXPECT_EQ(t.intern("x", 5), x);
  EXPECT_EQ(t.size(), 1u);
}

TEST(VarTable, ReinternWithDifferentInitialThrows) {
  VarTable t;
  t.intern("x", 5);
  EXPECT_THROW(t.intern("x", 6), std::invalid_argument);
}

TEST(VarTable, ReinternWithDifferentRoleThrows) {
  VarTable t;
  t.intern("x", 0, VarRole::kData);
  EXPECT_THROW(t.intern("x", 0, VarRole::kLock), std::invalid_argument);
}

TEST(VarTable, LookupByName) {
  VarTable t;
  const VarId x = t.intern("x", -1);
  EXPECT_EQ(t.id("x"), x);
  EXPECT_EQ(t.name(x), "x");
  EXPECT_EQ(t.initial(x), -1);
  EXPECT_THROW((void)t.id("zzz"), std::out_of_range);
  EXPECT_FALSE(t.tryId("zzz").has_value());
  EXPECT_EQ(t.tryId("x"), x);
}

TEST(VarTable, UnknownIdThrows) {
  const VarTable t;
  EXPECT_THROW((void)t.name(0), std::out_of_range);
}

TEST(VarTable, RolesAndFiltering) {
  VarTable t;
  const VarId x = t.intern("x", 0, VarRole::kData);
  const VarId l = t.intern("__lock_m", 0, VarRole::kLock);
  const VarId c = t.intern("__cond_c", 0, VarRole::kCondition);
  EXPECT_TRUE(t.isData(x));
  EXPECT_FALSE(t.isData(l));
  EXPECT_FALSE(t.isData(c));
  EXPECT_EQ(t.idsWithRole(VarRole::kData), std::vector<VarId>{x});
  EXPECT_EQ(t.idsWithRole(VarRole::kLock), std::vector<VarId>{l});
}

TEST(VarTable, InitialValuationByVarId) {
  VarTable t;
  t.intern("a", 10);
  t.intern("b", -3);
  const std::vector<Value> init = t.initialValuation();
  ASSERT_EQ(init.size(), 2u);
  EXPECT_EQ(init[0], 10);
  EXPECT_EQ(init[1], -3);
}

}  // namespace
}  // namespace mpx::trace
