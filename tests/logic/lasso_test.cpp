// LTL on ultimately-periodic words u·v^ω — the liveness-prediction
// evaluator (Markey-Schnoebelen style, paper §4).
#include "logic/lasso.hpp"

#include <gtest/gtest.h>

#include <random>

namespace mpx::logic {
namespace {

using observer::GlobalState;

GlobalState st(Value p, Value q = 0) { return GlobalState({p, q}); }

StateExpr varP() { return StateExpr::var(0, "p"); }
StateExpr varQ() { return StateExpr::var(1, "q"); }

LtlFormula P() { return LtlFormula::atom(varP()); }
LtlFormula Q() { return LtlFormula::atom(varQ()); }

bool sat(const LtlFormula& f, std::vector<GlobalState> stem,
         std::vector<GlobalState> loop) {
  return satisfiesLasso(f, stem, loop);
}

TEST(Lasso, AtomAtPositionZero) {
  EXPECT_TRUE(sat(P(), {st(1)}, {st(0)}));
  EXPECT_FALSE(sat(P(), {st(0)}, {st(1)}));
  // Empty stem: position 0 is the loop start.
  EXPECT_TRUE(sat(P(), {}, {st(1), st(0)}));
}

TEST(Lasso, EmptyLoopRejected) {
  EXPECT_THROW(sat(P(), {st(1)}, {}), std::invalid_argument);
}

TEST(Lasso, NextStepsIntoLoopAndWraps) {
  // stem = [p], loop = [!p]: X p is false at 0.
  EXPECT_FALSE(sat(LtlFormula::next(P()), {st(1)}, {st(0)}));
  // One-state loop wraps to itself: X p == p there.
  EXPECT_TRUE(sat(LtlFormula::next(P()), {}, {st(1)}));
  // loop = [p=1, p=0]: positions 0,1 with succ(1) wrapping to 0.
  // X X p @0 = p@succ(succ(0)) = p@0 = 1.
  EXPECT_TRUE(
      sat(LtlFormula::next(LtlFormula::next(P())), {}, {st(1), st(0)}));
  // X X X p @0 = p@1 = 0.
  EXPECT_FALSE(sat(LtlFormula::next(LtlFormula::next(LtlFormula::next(P()))),
                   {}, {st(1), st(0)}));
}

TEST(Lasso, EventuallySeesTheLoop) {
  EXPECT_TRUE(sat(LtlFormula::eventually(P()), {st(0)}, {st(0), st(1)}));
  EXPECT_FALSE(sat(LtlFormula::eventually(P()), {st(0)}, {st(0)}));
}

TEST(Lasso, AlwaysRequiresLoopInvariance) {
  EXPECT_TRUE(sat(LtlFormula::always(P()), {st(1)}, {st(1), st(1)}));
  EXPECT_FALSE(sat(LtlFormula::always(P()), {st(1)}, {st(1), st(0)}));
  // A falsifying stem position also kills G.
  EXPECT_FALSE(sat(LtlFormula::always(P()), {st(0)}, {st(1)}));
}

TEST(Lasso, FGandGFOnToggleLoop) {
  const auto toggle = std::vector<GlobalState>{st(1), st(0)};
  // FG p: p eventually forever — false on a toggle loop.
  EXPECT_FALSE(
      sat(LtlFormula::eventually(LtlFormula::always(P())), {st(0)}, toggle));
  // GF p: p infinitely often — true on a toggle loop.
  EXPECT_TRUE(
      sat(LtlFormula::always(LtlFormula::eventually(P())), {st(0)}, toggle));
  // GF p false when the loop never has p.
  EXPECT_FALSE(sat(LtlFormula::always(LtlFormula::eventually(P())),
                   {st(1), st(1)}, {st(0)}));
}

TEST(Lasso, UntilAcrossStemIntoLoop) {
  // p U q with p on the stem and q in the loop.
  EXPECT_TRUE(sat(LtlFormula::until(P(), Q()), {st(1, 0), st(1, 0)},
                  {st(0, 1)}));
  // Fails if p breaks before q arrives.
  EXPECT_FALSE(sat(LtlFormula::until(P(), Q()), {st(1, 0), st(0, 0)},
                   {st(0, 1)}));
  // q already now: trivially true.
  EXPECT_TRUE(sat(LtlFormula::until(P(), Q()), {st(0, 1)}, {st(0, 0)}));
  // q never: false even with p forever (strong until).
  EXPECT_FALSE(sat(LtlFormula::until(P(), Q()), {st(1, 0)}, {st(1, 0)}));
}

TEST(Lasso, BooleanConnectives) {
  EXPECT_TRUE(sat(LtlFormula::conjunction(P(), LtlFormula::negation(Q())),
                  {st(1, 0)}, {st(0, 0)}));
  EXPECT_TRUE(sat(LtlFormula::implies(Q(), P()), {st(0, 0)}, {st(1, 1)}));
  EXPECT_TRUE(sat(LtlFormula::verum(), {}, {st(0)}));
  EXPECT_FALSE(sat(LtlFormula::falsum(), {}, {st(0)}));
}

TEST(Lasso, ToStringRendering) {
  EXPECT_EQ(LtlFormula::eventually(LtlFormula::always(P())).toString(),
            "F(G(p))");
  EXPECT_EQ(LtlFormula::until(P(), Q()).toString(), "(p U q)");
}

// Random equivalence properties: duality laws hold pointwise.
class LassoDuality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LassoDuality, DualityLawsOnRandomLassos) {
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 100; ++round) {
    std::vector<GlobalState> stem;
    std::vector<GlobalState> loop;
    const std::size_t sn = rng() % 4;
    const std::size_t ln = 1 + rng() % 4;
    for (std::size_t i = 0; i < sn; ++i) {
      stem.push_back(st(static_cast<Value>(rng() % 2),
                        static_cast<Value>(rng() % 2)));
    }
    for (std::size_t i = 0; i < ln; ++i) {
      loop.push_back(st(static_cast<Value>(rng() % 2),
                        static_cast<Value>(rng() % 2)));
    }
    // G p == !F !p
    EXPECT_EQ(sat(LtlFormula::always(P()), stem, loop),
              !sat(LtlFormula::eventually(LtlFormula::negation(P())), stem,
                   loop));
    // F q == true U q
    EXPECT_EQ(sat(LtlFormula::eventually(Q()), stem, loop),
              sat(LtlFormula::until(LtlFormula::verum(), Q()), stem, loop));
    // X distributes over &&
    EXPECT_EQ(
        sat(LtlFormula::next(LtlFormula::conjunction(P(), Q())), stem, loop),
        sat(LtlFormula::conjunction(LtlFormula::next(P()),
                                    LtlFormula::next(Q())),
            stem, loop));
    // p U q == q || (p && X(p U q))  (expansion law at position 0)
    const LtlFormula u = LtlFormula::until(P(), Q());
    EXPECT_EQ(sat(u, stem, loop),
              sat(LtlFormula::disjunction(
                      Q(), LtlFormula::conjunction(P(), LtlFormula::next(u))),
                  stem, loop));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LassoDuality,
                         ::testing::Values(71, 72, 73, 74));

}  // namespace
}  // namespace mpx::logic
