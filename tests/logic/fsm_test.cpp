// Explicit FSM monitors and their equivalence to the synthesized ptLTL
// monitor on the paper's landing property.
#include "logic/fsm.hpp"

#include <gtest/gtest.h>

#include "../support/fixtures.hpp"
#include "observer/online.hpp"
#include "logic/monitor.hpp"
#include "logic/parser.hpp"
#include "observer/run_enumerator.hpp"

namespace mpx::logic {
namespace {

using observer::GlobalState;

StateExpr var(const observer::StateSpace& sp, const std::string& n) {
  return StateExpr::var(sp.slotOfName(n), n);
}

StateExpr eq(StateExpr a, Value b) {
  return StateExpr::binary(StateOp::kEq, std::move(a),
                           StateExpr::constant(b));
}

StateExpr conj(StateExpr a, StateExpr b) {
  // 0/1-valued multiplication works as conjunction for comparisons.
  return StateExpr::binary(StateOp::kMul, std::move(a), std::move(b));
}

/// The landing property as a hand-authored FSM over
/// <landing, approved, radio>:
///   idle       -- approved=1 & radio=1 --> armed
///   armed      -- radio=0 (before landing starts) --> disarmed
///   armed      -- landing=1 --> landed (safe forever)
///   idle/disarmed -- landing=1 --> VIOLATION
class LandingFsm {
 public:
  explicit LandingFsm(const observer::StateSpace& sp) {
    const auto landing1 = eq(var(sp, "landing"), 1);
    const auto approved1 = eq(var(sp, "approved"), 1);
    const auto radio0 = eq(var(sp, "radio"), 0);
    const auto radio1 = eq(var(sp, "radio"), 1);

    idle_ = fsm.addState("idle");
    armed_ = fsm.addState("armed");
    landed_ = fsm.addState("landed");
    bad_ = fsm.addState("violation", /*violating=*/true);

    // Order matters: landing while not armed is the violation.
    fsm.addTransition(idle_, landing1, bad_);
    fsm.addTransition(idle_, conj(approved1, radio1), armed_);
    fsm.addTransition(armed_, landing1, landed_);
    fsm.addTransition(armed_, radio0, idle_);  // disarm
  }
  FsmMonitor fsm;
  FsmMonitor::StateId idle_ = 0, armed_ = 0, landed_ = 0, bad_ = 0;
};

TEST(FsmMonitor, StatesAndNames) {
  FsmMonitor m;
  const auto a = m.addState("a");
  const auto b = m.addState("b", true);
  EXPECT_EQ(m.stateCount(), 2u);
  EXPECT_EQ(m.stateName(a), "a");
  EXPECT_TRUE(m.isViolating(b));
  EXPECT_FALSE(m.isViolating(a));
}

TEST(FsmMonitor, TransitionValidation) {
  FsmMonitor m;
  m.addState("a");
  EXPECT_THROW(m.addTransition(0, StateExpr::constant(1), 5),
               std::out_of_range);
  EXPECT_THROW(m.addTransition(7, StateExpr::constant(1), 0),
               std::out_of_range);
}

TEST(FsmMonitor, EmptyMachineRejected) {
  FsmMonitor m;
  EXPECT_THROW(m.initial(GlobalState{}), std::logic_error);
}

TEST(FsmMonitor, ImplicitSelfLoopWhenNoGuardMatches) {
  FsmMonitor m;
  m.addState("a");
  m.addState("b");
  m.addTransition(0, StateExpr::var(0, "x"), 1);
  EXPECT_EQ(m.initial(GlobalState({0})), 0u);   // stays
  EXPECT_EQ(m.initial(GlobalState({1})), 1u);   // moves
}

TEST(FsmMonitor, FirstMatchingGuardWins) {
  FsmMonitor m;
  m.addState("a");
  m.addState("b");
  m.addState("c");
  m.addTransition(0, StateExpr::constant(1), 1);
  m.addTransition(0, StateExpr::constant(1), 2);
  EXPECT_EQ(m.initial(GlobalState{}), 1u);
}

TEST(FsmMonitor, LandingFsmOnTheThreePaperRuns) {
  trace::VarTable table;
  table.intern("landing", 0);
  table.intern("approved", 0);
  table.intern("radio", 1);
  const auto sp =
      observer::StateSpace::byNames(table, {"landing", "approved", "radio"});
  LandingFsm fsm(sp);

  const auto run = [&](std::vector<std::vector<Value>> states) {
    std::vector<GlobalState> trace;
    for (auto& s : states) trace.emplace_back(std::move(s));
    return fsm.fsm.firstViolation(trace);
  };
  // Observed: approve, land, radio-off afterwards — safe.
  EXPECT_EQ(run({{0, 0, 1}, {0, 1, 1}, {1, 1, 1}, {1, 1, 0}}), -1);
  // Radio off between approval and landing — violation at the landing.
  EXPECT_EQ(run({{0, 0, 1}, {0, 1, 1}, {0, 1, 0}, {1, 1, 0}}), 3);
  // Radio off before approval: approval with dead radio never arms...
  // (approved=1 & radio=1 fails), landing -> violation.
  EXPECT_EQ(run({{0, 0, 1}, {0, 0, 0}, {0, 1, 0}, {1, 1, 0}}), 3);
}

TEST(FsmMonitor, AgreesWithSynthesizedMonitorOnTheLattice) {
  // Run both monitors over every run of the Fig. 5 computation: identical
  // verdicts run by run, and identical lattice violation counts.
  const auto c = mpx::testing::landingComputation();
  LandingFsm fsm(c.space);
  SynthesizedMonitor synth(SpecParser(c.space).parse(
      program::corpus::landingProperty()));

  observer::RunEnumerator runs(c.graph, c.space);
  runs.forEachRun([&](const observer::Run& run) {
    const bool fsmBad = fsm.fsm.firstViolation(run.states) >= 0;
    const bool synthBad = synth.firstViolation(run.states) >= 0;
    EXPECT_EQ(fsmBad, synthBad);
    return true;
  });

  observer::ComputationLattice l1(c.graph, c.space);
  std::vector<observer::Violation> v1;
  l1.check(fsm.fsm, v1);
  observer::ComputationLattice l2(c.graph, c.space);
  std::vector<observer::Violation> v2;
  l2.check(synth, v2);
  EXPECT_EQ(v1.empty(), v2.empty());
}

TEST(FsmMonitor, WorksOnTheLatticeDirectly) {
  const auto c = mpx::testing::landingComputation();
  LandingFsm fsm(c.space);
  observer::ComputationLattice lattice(c.graph, c.space);
  std::vector<observer::Violation> violations;
  lattice.check(fsm.fsm, violations);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().state.values,
            (std::vector<Value>{1, 1, 0}));
}

TEST(FsmMonitor, CanEverViolateReachability) {
  FsmMonitor m;
  const auto safeTrap = m.addState("safe-trap");
  const auto start = m.addState("start");
  const auto mid = m.addState("mid");
  const auto bad = m.addState("bad", true);
  m.addTransition(start, StateExpr::var(0, "x"), mid);
  m.addTransition(mid, StateExpr::var(1, "y"), bad);
  m.addTransition(start, StateExpr::var(1, "y"), safeTrap);

  EXPECT_TRUE(m.canEverViolate(start));
  EXPECT_TRUE(m.canEverViolate(mid));
  EXPECT_TRUE(m.canEverViolate(bad));
  EXPECT_FALSE(m.canEverViolate(safeTrap));

  // Adding an escape from the trap invalidates the cached reachability.
  m.addTransition(safeTrap, StateExpr::var(0, "x"), mid);
  EXPECT_TRUE(m.canEverViolate(safeTrap));
}

TEST(FsmMonitor, LatticePrunesPermanentlySafeStates) {
  // The landing FSM's "landed" state is absorbing-safe: once a run lands
  // with the window intact, its monitor state is GC'd from the lattice.
  const auto c = mpx::testing::landingComputation();
  LandingFsm fsm(c.space);
  EXPECT_FALSE(fsm.fsm.canEverViolate(fsm.landed_));
  EXPECT_TRUE(fsm.fsm.canEverViolate(fsm.idle_));

  observer::ComputationLattice lattice(c.graph, c.space);
  std::vector<observer::Violation> violations;
  lattice.check(fsm.fsm, violations);
  // Verdict unchanged by pruning...
  ASSERT_FALSE(violations.empty());
  // ...and something was actually pruned (the observed safe run lands).
  EXPECT_GT(lattice.stats().prunedMonitorStates, 0u);
}

TEST(FsmMonitor, PruningPreservesVerdictsOnline) {
  const auto c = mpx::testing::landingComputation();
  LandingFsm fsm(c.space);
  observer::OnlineAnalyzer online(c.space, c.prog.threadCount(), &fsm.fsm);
  for (const auto& ref : c.graph.observedOrder()) {
    online.onMessage(c.graph.message(ref));
  }
  online.endOfTrace();
  EXPECT_FALSE(online.violations().empty());
  EXPECT_GT(online.stats().prunedMonitorStates, 0u);
}

}  // namespace
}  // namespace mpx::logic
