// Synthesized ptLTL monitor semantics, operator by operator, against hand
// traces and the documented first-state conventions.
#include "logic/monitor.hpp"

#include <gtest/gtest.h>

#include "logic/parser.hpp"
#include "observer/global_state.hpp"

namespace mpx::logic {
namespace {

using observer::GlobalState;

/// One tracked variable "p" interpreted as a boolean.
observer::StateSpace space1() {
  static trace::VarTable table = [] {
    trace::VarTable t;
    t.intern("p", 0);
    t.intern("q", 0);
    return t;
  }();
  return observer::StateSpace::byNames(table, {"p", "q"});
}

GlobalState st(Value p, Value q = 0) { return GlobalState({p, q}); }

/// Evaluates the formula at every position of the trace.
std::vector<bool> evaluate(const std::string& spec,
                           const std::vector<GlobalState>& trace) {
  const observer::StateSpace sp = space1();
  SynthesizedMonitor mon(SpecParser(sp).parse(spec));
  std::vector<bool> out;
  for (const auto& s : trace) out.push_back(mon.stepLinear(s));
  return out;
}

TEST(Monitor, AtomAndBooleans) {
  EXPECT_EQ(evaluate("p", {st(0), st(1)}), (std::vector<bool>{false, true}));
  EXPECT_EQ(evaluate("!p", {st(0), st(1)}), (std::vector<bool>{true, false}));
  EXPECT_EQ(evaluate("p && q", {st(1, 1), st(1, 0)}),
            (std::vector<bool>{true, false}));
  EXPECT_EQ(evaluate("p || q", {st(0, 1), st(0, 0)}),
            (std::vector<bool>{true, false}));
  EXPECT_EQ(evaluate("p -> q", {st(1, 0), st(0, 0), st(1, 1)}),
            (std::vector<bool>{false, true, true}));
  EXPECT_EQ(evaluate("true", {st(0)}), (std::vector<bool>{true}));
  EXPECT_EQ(evaluate("false", {st(0)}), (std::vector<bool>{false}));
}

TEST(Monitor, ComparisonAtoms) {
  EXPECT_EQ(evaluate("p = 2", {st(2), st(3)}),
            (std::vector<bool>{true, false}));
  EXPECT_EQ(evaluate("p != 2", {st(2), st(3)}),
            (std::vector<bool>{false, true}));
  EXPECT_EQ(evaluate("p > q", {st(1, 0), st(1, 2)}),
            (std::vector<bool>{true, false}));
  EXPECT_EQ(evaluate("p + q = 3", {st(1, 2), st(2, 2)}),
            (std::vector<bool>{true, false}));
}

TEST(Monitor, PrevFirstStateConvention) {
  // At the first state, prev F = F (Havelund-Rosu convention).
  EXPECT_EQ(evaluate("prev p", {st(1)}), (std::vector<bool>{true}));
  EXPECT_EQ(evaluate("prev p", {st(0)}), (std::vector<bool>{false}));
  EXPECT_EQ(evaluate("prev p", {st(1), st(0), st(0)}),
            (std::vector<bool>{true, true, false}));
}

TEST(Monitor, OnceRemembersForever) {
  EXPECT_EQ(evaluate("once p", {st(0), st(1), st(0), st(0)}),
            (std::vector<bool>{false, true, true, true}));
}

TEST(Monitor, HistoricallyDropsOnFirstFailure) {
  EXPECT_EQ(evaluate("historically p", {st(1), st(1), st(0), st(1)}),
            (std::vector<bool>{true, true, false, false}));
}

TEST(Monitor, SinceStrongSemantics) {
  // p S q: q held at some point, p ever since (strictly after that point).
  EXPECT_EQ(evaluate("p S q", {st(0, 1), st(1, 0), st(1, 0)}),
            (std::vector<bool>{true, true, true}));
  EXPECT_EQ(evaluate("p S q", {st(0, 1), st(0, 0)}),
            (std::vector<bool>{true, false}));
  // At the first state p S q = q.
  EXPECT_EQ(evaluate("p S q", {st(1, 0)}), (std::vector<bool>{false}));
  // q re-establishes.
  EXPECT_EQ(evaluate("p S q", {st(0, 1), st(0, 0), st(0, 1)}),
            (std::vector<bool>{true, false, true}));
}

TEST(Monitor, StartDetectsRisingEdge) {
  EXPECT_EQ(evaluate("start(p)", {st(0), st(1), st(1), st(0), st(1)}),
            (std::vector<bool>{false, true, false, false, true}));
  // Never true at the first state.
  EXPECT_EQ(evaluate("start(p)", {st(1)}), (std::vector<bool>{false}));
}

TEST(Monitor, EndDetectsFallingEdge) {
  EXPECT_EQ(evaluate("end(p)", {st(1), st(0), st(0), st(1), st(0)}),
            (std::vector<bool>{false, true, false, false, true}));
  EXPECT_EQ(evaluate("end(p)", {st(0)}), (std::vector<bool>{false}));
}

TEST(Monitor, IntervalBasics) {
  // [p, q): p happened and q has not happened since (inclusive of now).
  EXPECT_EQ(evaluate("[p, q)", {st(1, 0), st(0, 0), st(0, 1), st(0, 0)}),
            (std::vector<bool>{true, true, false, false}));
  // q at the same instant as p kills the interval.
  EXPECT_EQ(evaluate("[p, q)", {st(1, 1)}), (std::vector<bool>{false}));
  // p re-arms after q.
  EXPECT_EQ(evaluate("[p, q)", {st(1, 0), st(0, 1), st(1, 0)}),
            (std::vector<bool>{true, false, true}));
}

TEST(Monitor, LandingPropertyOnPaperRuns) {
  // The three Fig. 5 runs over <landing, approved, radio>.
  trace::VarTable table;
  table.intern("landing", 0);
  table.intern("approved", 0);
  table.intern("radio", 1);
  const auto sp =
      observer::StateSpace::byNames(table, {"landing", "approved", "radio"});
  SynthesizedMonitor mon(
      SpecParser(sp).parse("start(landing = 1) -> [approved = 1, radio = 0)"));

  const auto run = [&](std::vector<std::vector<Value>> states) {
    std::vector<GlobalState> trace;
    for (auto& s : states) trace.emplace_back(std::move(s));
    return mon.firstViolation(trace);
  };
  // Observed (successful): radio drops after landing started.
  EXPECT_EQ(run({{0, 0, 1}, {0, 1, 1}, {1, 1, 1}, {1, 1, 0}}), -1);
  // Radio drops between approval and landing: violated when landing starts.
  EXPECT_EQ(run({{0, 0, 1}, {0, 1, 1}, {0, 1, 0}, {1, 1, 0}}), 3);
  // Radio drops before approval: violated too.
  EXPECT_EQ(run({{0, 0, 1}, {0, 0, 0}, {0, 1, 0}, {1, 1, 0}}), 3);
}

TEST(Monitor, AdvanceIsAPureFunctionOfStateAndInput) {
  const observer::StateSpace sp = space1();
  SynthesizedMonitor mon(SpecParser(sp).parse("p S q"));
  const auto m0 = mon.initial(st(0, 1));
  const auto m1 = mon.advance(m0, st(1, 0));
  EXPECT_EQ(mon.advance(m0, st(1, 0)), m1);  // deterministic
  // Distinct histories with the same subformula values coincide — that is
  // exactly what makes lattice-node state sets small.
  const auto m0b = mon.initial(st(0, 1));
  EXPECT_EQ(m0, m0b);
}

TEST(Monitor, LatticeMonitorInterfaceMatchesLinear) {
  const observer::StateSpace sp = space1();
  SynthesizedMonitor linear(SpecParser(sp).parse("once p && !q"));
  SynthesizedMonitor stateless(SpecParser(sp).parse("once p && !q"));
  const std::vector<GlobalState> trace = {st(0, 0), st(1, 0), st(0, 1),
                                          st(0, 0)};
  observer::MonitorState m = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const bool ok = linear.stepLinear(trace[i]);
    m = i == 0 ? stateless.initial(trace[0]) : stateless.advance(m, trace[i]);
    EXPECT_EQ(!stateless.isViolating(m), ok) << "position " << i;
  }
}

TEST(Monitor, SharedSubformulasGetOneBit) {
  const observer::StateSpace sp = space1();
  const Formula p = SpecParser(sp).parse("p");
  const Formula f = Formula::conjunction(Formula::once(p), Formula::prev(p));
  SynthesizedMonitor mon(f);
  // p, once p, prev p, && : 4 subformulas (p shared).
  EXPECT_EQ(mon.subformulaCount(), 4u);
}

TEST(Monitor, TooManySubformulasRejected) {
  const observer::StateSpace sp = space1();
  Formula f = SpecParser(sp).parse("p");
  for (int i = 0; i < 70; ++i) f = Formula::prev(f);
  EXPECT_THROW(SynthesizedMonitor{f}, std::invalid_argument);
}

TEST(Monitor, FirstViolationIndexAndReset) {
  const observer::StateSpace sp = space1();
  SynthesizedMonitor mon(SpecParser(sp).parse("historically p"));
  EXPECT_EQ(mon.firstViolation({st(1), st(0), st(1)}), 1);
  EXPECT_EQ(mon.firstViolation({st(1), st(1)}), -1);  // reset() works
}

}  // namespace
}  // namespace mpx::logic
