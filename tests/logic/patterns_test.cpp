// The specification-pattern builders: meaning pinned on hand traces and
// equivalence with parsed formulas.
#include "logic/patterns.hpp"

#include <gtest/gtest.h>

#include "logic/monitor.hpp"
#include "logic/parser.hpp"

namespace mpx::logic::patterns {
namespace {

using observer::GlobalState;

observer::StateSpace space() {
  static trace::VarTable table = [] {
    trace::VarTable t;
    t.intern("p", 0);
    t.intern("q", 0);
    t.intern("r", 0);
    return t;
  }();
  return observer::StateSpace::byNames(table, {"p", "q", "r"});
}

Formula atomOf(const char* name) {
  return SpecParser(space()).parse(name);
}

GlobalState st(Value p, Value q = 0, Value r = 0) {
  return GlobalState({p, q, r});
}

std::vector<bool> run(const Formula& f, const std::vector<GlobalState>& tr) {
  SynthesizedMonitor mon(f);
  std::vector<bool> out;
  for (const auto& s : tr) out.push_back(mon.stepLinear(s));
  return out;
}

/// Two formulas agree on a set of traces.
void expectEquivalent(const Formula& a, const Formula& b,
                      const std::vector<std::vector<GlobalState>>& traces) {
  for (const auto& tr : traces) {
    EXPECT_EQ(run(a, tr), run(b, tr)) << a.toString() << " vs "
                                      << b.toString();
  }
}

std::vector<std::vector<GlobalState>> sampleTraces() {
  return {
      {st(0), st(1), st(0)},
      {st(1, 1), st(0, 1), st(1, 0)},
      {st(0, 0, 1), st(1, 1, 0), st(0, 1, 1), st(1, 0, 0)},
      {st(1), st(1), st(1)},
      {st(0)},
  };
}

TEST(Patterns, NeverMatchesParsedForm) {
  expectEquivalent(never(atomOf("p")),
                   SpecParser(space()).parse("historically !p"),
                   sampleTraces());
}

TEST(Patterns, NeverSemantics) {
  EXPECT_EQ(run(never(atomOf("p")), {st(0), st(1), st(0)}),
            (std::vector<bool>{true, false, false}));
}

TEST(Patterns, AlwaysSemantics) {
  EXPECT_EQ(run(always(atomOf("p")), {st(1), st(0), st(1)}),
            (std::vector<bool>{true, false, false}));
}

TEST(Patterns, PrecededBySemantics) {
  // q must not hold before the first p.
  EXPECT_EQ(run(precededBy(atomOf("q"), atomOf("p")),
                {st(0, 1), st(1, 0), st(0, 1)}),
            (std::vector<bool>{false, true, true}));
}

TEST(Patterns, RiseAfterIgnoresContinuation) {
  // q's FIRST rise violates (no p yet); q staying up later with p is fine.
  EXPECT_EQ(run(riseAfter(atomOf("q"), atomOf("p")),
                {st(0, 0), st(0, 1), st(1, 1)}),
            (std::vector<bool>{true, false, true}));
}

TEST(Patterns, MutexSemantics) {
  EXPECT_EQ(run(mutex(atomOf("p"), atomOf("q")),
                {st(1, 0), st(0, 1), st(1, 1)}),
            (std::vector<bool>{true, true, false}));
}

TEST(Patterns, ArmedWindowIsThePaperShape) {
  // start(p) -> [q, r): p = landing, q = approved, r = radio-down.
  const Formula f = armedWindow(atomOf("p"), atomOf("q"), atomOf("r"));
  expectEquivalent(f, SpecParser(space()).parse("start(p) -> [q, r)"),
                   sampleTraces());
  // Rise of p with the window armed and un-broken: fine.
  EXPECT_EQ(run(f, {st(0, 1, 0), st(1, 1, 0)}),
            (std::vector<bool>{true, true}));
  // Rise of p after the window was broken by r (and q did not re-arm it):
  // violation.  Note q still holding when r clears RE-ARMS the window —
  // that is the interval's defined semantics.
  EXPECT_EQ(run(f, {st(0, 1, 0), st(0, 0, 1), st(1, 0, 0)}),
            (std::vector<bool>{true, true, false}));
  EXPECT_EQ(run(f, {st(0, 1, 0), st(0, 1, 1), st(1, 1, 0)}),
            (std::vector<bool>{true, true, true}))
      << "q re-arms the window after r clears";
}

TEST(Patterns, LatchedSemantics) {
  EXPECT_EQ(run(latched(atomOf("p")), {st(0), st(1), st(0)}),
            (std::vector<bool>{true, true, false}));
}

TEST(Patterns, BetweenOpenCloseSemantics) {
  const Formula f = betweenOpenClose(atomOf("q"), atomOf("p"), atomOf("r"));
  // q inside an open p..r scope: ok; q with the scope closed: violation.
  EXPECT_EQ(run(f, {st(1, 0, 0),    // p opens
                    st(0, 1, 0),    // q inside: ok
                    st(0, 0, 1),    // r closes
                    st(0, 1, 0)}),  // q outside: violation
            (std::vector<bool>{true, true, true, false}));
}

TEST(Patterns, ComposeWithEachOther) {
  // Patterns are ordinary formulas: conjunction composes.
  const Formula f = Formula::conjunction(
      mutex(atomOf("p"), atomOf("q")), precededBy(atomOf("r"), atomOf("p")));
  EXPECT_EQ(run(f, {st(1, 0, 0), st(0, 0, 1)}),
            (std::vector<bool>{true, true}));
  EXPECT_EQ(run(f, {st(0, 0, 1)}), (std::vector<bool>{false}));
}

}  // namespace
}  // namespace mpx::logic::patterns
