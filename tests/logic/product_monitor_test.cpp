// ProductMonitor: several properties checked in one lattice pass, with
// verdicts identical to checking each property in its own pass.
#include "logic/product_monitor.hpp"

#include <gtest/gtest.h>

#include "../support/fixtures.hpp"
#include "logic/parser.hpp"
#include "observer/lattice.hpp"

namespace mpx::logic {
namespace {

using mpx::testing::landingComputation;

TEST(ProductMonitor, PacksComponentsSideBySide) {
  const auto c = landingComputation();
  SpecParser parser(c.space);
  ProductMonitor pm;
  const std::size_t a = pm.add(parser.parse("radio = 1"), "radio-live");
  const std::size_t b = pm.add(parser.parse("once approved = 1"), "approved");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(pm.componentCount(), 2u);
  EXPECT_EQ(pm.name(0), "radio-live");
  EXPECT_GT(pm.bitsUsed(), 0u);
  EXPECT_LE(pm.bitsUsed(), 64u);
}

TEST(ProductMonitor, OverflowRejected) {
  const auto c = landingComputation();
  SpecParser parser(c.space);
  ProductMonitor pm;
  Formula big = parser.parse("landing = 1");
  for (int i = 0; i < 20; ++i) big = Formula::prev(big);
  pm.add(big);      // ~21 bits
  pm.add(big);      // ~42
  pm.add(big);      // ~63
  EXPECT_THROW(pm.add(big), std::invalid_argument);
}

TEST(ProductMonitor, VerdictsMatchIndividualPasses) {
  const auto c = landingComputation();
  SpecParser parser(c.space);
  const std::vector<std::string> specs = {
      program::corpus::landingProperty(),   // violated in 2 of 3 runs
      "once radio = 0 -> landing = 1",      // also has structure
      "historically approved >= 0",         // never violated
  };

  // Individual passes.
  std::vector<bool> individual;
  for (const auto& spec : specs) {
    SynthesizedMonitor mon(parser.parse(spec));
    observer::ComputationLattice lattice(c.graph, c.space);
    std::vector<observer::Violation> violations;
    lattice.check(mon, violations);
    individual.push_back(!violations.empty());
  }

  // One combined pass.
  ProductMonitor pm;
  for (const auto& spec : specs) pm.add(parser.parse(spec), spec);
  observer::ComputationLattice lattice(c.graph, c.space);
  std::vector<observer::Violation> violations;
  lattice.check(pm, violations);

  // Attribution: collect which components ever violated.
  std::vector<bool> combined(specs.size(), false);
  for (const auto& v : violations) {
    for (const std::size_t i : pm.violatingComponents(v.monitorState)) {
      combined[i] = true;
    }
  }
  // NOTE: the lattice dedupes violations per (cut, combined-state) and caps
  // them, so "component i violated somewhere" needs enough budget; with the
  // defaults all three fit.
  EXPECT_EQ(combined, individual);
}

TEST(ProductMonitor, LinearSemanticsMatchComponents) {
  const auto c = landingComputation();
  SpecParser parser(c.space);
  const Formula f1 = parser.parse("radio = 1");
  const Formula f2 = parser.parse("once landing = 1");

  ProductMonitor pm;
  pm.add(f1);
  pm.add(f2);
  SynthesizedMonitor m1(f1);
  SynthesizedMonitor m2(f2);

  const std::vector<observer::GlobalState> trace = {
      observer::GlobalState({0, 0, 1}),
      observer::GlobalState({1, 1, 1}),
      observer::GlobalState({1, 1, 0}),
  };
  observer::MonitorState s = 0;
  observer::MonitorState s1 = 0;
  observer::MonitorState s2 = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    s = i == 0 ? pm.initial(trace[0]) : pm.advance(s, trace[i]);
    s1 = i == 0 ? m1.initial(trace[0]) : m1.advance(s1, trace[i]);
    s2 = i == 0 ? m2.initial(trace[0]) : m2.advance(s2, trace[i]);
    const auto bad = pm.violatingComponents(s);
    const bool pmSays1 =
        std::find(bad.begin(), bad.end(), 0u) != bad.end();
    const bool pmSays2 =
        std::find(bad.begin(), bad.end(), 1u) != bad.end();
    EXPECT_EQ(pmSays1, m1.isViolating(s1)) << "position " << i;
    EXPECT_EQ(pmSays2, m2.isViolating(s2)) << "position " << i;
  }
}

TEST(ProductMonitor, EmptyProductNeverViolates) {
  ProductMonitor pm;
  const observer::GlobalState s({1});
  EXPECT_EQ(pm.initial(s), 0u);
  EXPECT_FALSE(pm.isViolating(0));
  EXPECT_TRUE(pm.violatingComponents(0).empty());
}

}  // namespace
}  // namespace mpx::logic
