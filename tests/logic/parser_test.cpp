// Spec parser: grammar, precedence, paper syntax, relevant-variable
// extraction, and error reporting.
#include "logic/parser.hpp"

#include <gtest/gtest.h>

#include "logic/monitor.hpp"

namespace mpx::logic {
namespace {

observer::StateSpace space() {
  static trace::VarTable table = [] {
    trace::VarTable t;
    t.intern("x", 0);
    t.intern("y", 0);
    t.intern("z", 0);
    t.intern("landing", 0);
    t.intern("approved", 0);
    t.intern("radio", 1);
    return t;
  }();
  return observer::StateSpace::byNames(
      table, {"x", "y", "z", "landing", "approved", "radio"});
}

std::string parsed(const std::string& text) {
  return SpecParser(space()).parse(text).toString();
}

TEST(Parser, PaperLandingProperty) {
  EXPECT_EQ(parsed("start(landing = 1) -> [approved = 1, radio = 0)"),
            "(start((landing == 1)) -> [(approved == 1), (radio == 0)))");
}

TEST(Parser, PaperXyzProperty) {
  EXPECT_EQ(parsed("x > 0 -> [y = 0, y > z)"),
            "((x > 0) -> [(y == 0), (y > z)))");
}

TEST(Parser, SingleEqualsIsEquality) {
  EXPECT_EQ(parsed("x = 1"), "(x == 1)");
  EXPECT_EQ(parsed("x == 1"), "(x == 1)");
}

TEST(Parser, PrecedenceImpliesIsLowestAndRightAssoc) {
  EXPECT_EQ(parsed("x -> y -> z"), "(x -> (y -> z))");
  EXPECT_EQ(parsed("x && y -> z || x"), "((x && y) -> (z || x))");
}

TEST(Parser, PrecedenceAndBindsTighterThanOr) {
  EXPECT_EQ(parsed("x || y && z"), "(x || (y && z))");
}

TEST(Parser, SinceBindsTighterThanAnd) {
  EXPECT_EQ(parsed("x && y S z"), "(x && (y S z))");
  EXPECT_EQ(parsed("x S y S z"), "((x S y) S z)");  // left assoc
}

TEST(Parser, UnaryTemporalOperators) {
  EXPECT_EQ(parsed("prev x"), "prev(x)");
  EXPECT_EQ(parsed("@ x"), "prev(x)");
  EXPECT_EQ(parsed("once x"), "once(x)");
  EXPECT_EQ(parsed("<*> x"), "once(x)");
  EXPECT_EQ(parsed("historically x"), "historically(x)");
  EXPECT_EQ(parsed("[*] x"), "historically(x)");
  EXPECT_EQ(parsed("!prev x"), "!prev(x)");
  EXPECT_EQ(parsed("prev prev x"), "prev(prev(x))");
}

TEST(Parser, StartEndRequireParens) {
  EXPECT_EQ(parsed("start(x)"), "start(x)");
  EXPECT_EQ(parsed("end(x = 1)"), "end((x == 1))");
  EXPECT_THROW(parsed("start x"), SpecError);
}

TEST(Parser, IntervalVsHistoricallyGlyph) {
  EXPECT_EQ(parsed("[x, y)"), "[x, y)");
  EXPECT_EQ(parsed("[*] x"), "historically(x)");
  EXPECT_EQ(parsed("[x = 1, y = 2)"), "[(x == 1), (y == 2))");
}

TEST(Parser, ArithmeticPrecedence) {
  EXPECT_EQ(parsed("x + y * z = 7"), "((x + (y * z)) == 7)");
  EXPECT_EQ(parsed("(x + y) * z = 7"), "(((x + y) * z) == 7)");
  EXPECT_EQ(parsed("-x < 2"), "(-x < 2)");
}

TEST(Parser, ParenthesizedFormulaVsArithmetic) {
  // '(' can open either a sub-formula or an arithmetic group; the
  // backtracking resolves both.
  EXPECT_EQ(parsed("(x > 0) -> (y = 0)"), "((x > 0) -> (y == 0))");
  EXPECT_EQ(parsed("(x + 1) > 0"), "((x + 1) > 0)");
  EXPECT_EQ(parsed("(prev x) && y"), "(prev(x) && y)");
}

TEST(Parser, WordConnectives) {
  EXPECT_EQ(parsed("x and y or not z"), "((x && y) || !z)");
}

TEST(Parser, BareExpressionMeansNonzero) {
  EXPECT_EQ(parsed("x + y"), "(x + y)");
}

TEST(Parser, UnknownVariableError) {
  try {
    parsed("nosuchvar > 0");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("nosuchvar"), std::string::npos);
  }
}

TEST(Parser, SyntaxErrorsCarryPosition) {
  try {
    parsed("x > ");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_GE(e.position(), 3u);
  }
  EXPECT_THROW(parsed("(x > 0"), SpecError);
  EXPECT_THROW(parsed("x > 0)"), SpecError);
  EXPECT_THROW(parsed("[x, y"), SpecError);
  EXPECT_THROW(parsed("x $ y"), SpecError);
  EXPECT_THROW(parsed(""), SpecError);
}

TEST(Parser, ReferencedVariablesExtraction) {
  // The paper's §4.1 relevant-variable extraction — runs pre-binding.
  EXPECT_EQ(SpecParser::referencedVariables(
                "start(landing = 1) -> [approved = 1, radio = 0)"),
            (std::vector<std::string>{"landing", "approved", "radio"}));
  // Keywords and duplicates excluded; first-occurrence order kept.
  EXPECT_EQ(SpecParser::referencedVariables("once x && x S y and prev z"),
            (std::vector<std::string>{"x", "y", "z"}));
  EXPECT_TRUE(SpecParser::referencedVariables("true -> false").empty());
}

TEST(Parser, ParsedFormulaEvaluates) {
  // End-to-end sanity: parse then run one monitor step.
  const observer::StateSpace sp = space();
  SynthesizedMonitor mon(SpecParser(sp).parse("x + y >= 2 * z"));
  observer::GlobalState s({3, 1, 2, 0, 0, 0});
  EXPECT_TRUE(mon.stepLinear(s));
}

}  // namespace
}  // namespace mpx::logic
