#include "logic/state_expr.hpp"

#include <gtest/gtest.h>

namespace mpx::logic {
namespace {

using observer::GlobalState;

TEST(StateExpr, ConstantsAndVars) {
  const GlobalState s({5, -3});
  EXPECT_EQ(StateExpr::constant(7).eval(s), 7);
  EXPECT_EQ(StateExpr::var(0, "a").eval(s), 5);
  EXPECT_EQ(StateExpr::var(1, "b").eval(s), -3);
}

TEST(StateExpr, Arithmetic) {
  const GlobalState s({6, 4});
  const auto a = StateExpr::var(0, "a");
  const auto b = StateExpr::var(1, "b");
  EXPECT_EQ(StateExpr::binary(StateOp::kAdd, a, b).eval(s), 10);
  EXPECT_EQ(StateExpr::binary(StateOp::kSub, a, b).eval(s), 2);
  EXPECT_EQ(StateExpr::binary(StateOp::kMul, a, b).eval(s), 24);
  EXPECT_EQ(StateExpr::binary(StateOp::kDiv, a, b).eval(s), 1);
  EXPECT_EQ(StateExpr::unary(StateOp::kNeg, a).eval(s), -6);
}

TEST(StateExpr, DivisionByZeroIsZero) {
  const GlobalState s({1, 0});
  EXPECT_EQ(StateExpr::binary(StateOp::kDiv, StateExpr::var(0, "a"),
                              StateExpr::var(1, "b"))
                .eval(s),
            0);
}

TEST(StateExpr, Comparisons) {
  const GlobalState s({2, 3});
  const auto a = StateExpr::var(0, "a");
  const auto b = StateExpr::var(1, "b");
  EXPECT_EQ(StateExpr::binary(StateOp::kEq, a, b).eval(s), 0);
  EXPECT_EQ(StateExpr::binary(StateOp::kNe, a, b).eval(s), 1);
  EXPECT_EQ(StateExpr::binary(StateOp::kLt, a, b).eval(s), 1);
  EXPECT_EQ(StateExpr::binary(StateOp::kLe, a, b).eval(s), 1);
  EXPECT_EQ(StateExpr::binary(StateOp::kGt, a, b).eval(s), 0);
  EXPECT_EQ(StateExpr::binary(StateOp::kGe, a, b).eval(s), 0);
}

TEST(StateExpr, EvalBool) {
  const GlobalState s({0, -1});
  EXPECT_FALSE(StateExpr::var(0, "a").evalBool(s));
  EXPECT_TRUE(StateExpr::var(1, "b").evalBool(s));
}

TEST(StateExpr, OutOfRangeSlotThrows) {
  const GlobalState s({1});
  EXPECT_THROW((void)StateExpr::var(4, "ghost").eval(s), std::out_of_range);
}

TEST(StateExpr, ToString) {
  const auto e = StateExpr::binary(StateOp::kGt,
                                   StateExpr::binary(StateOp::kAdd,
                                                     StateExpr::var(0, "x"),
                                                     StateExpr::constant(1)),
                                   StateExpr::constant(0));
  EXPECT_EQ(e.toString(), "((x + 1) > 0)");
}

TEST(StateExpr, DefaultIsZero) {
  const GlobalState s{};
  EXPECT_EQ(StateExpr().eval(s), 0);
}

}  // namespace
}  // namespace mpx::logic
