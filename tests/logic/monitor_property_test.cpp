// Property test: the synthesized O(|φ|)-per-event monitor agrees with a
// naive reference evaluator that recomputes ptLTL semantics from the whole
// trace prefix at every position, for random formulas over random traces.
#include <gtest/gtest.h>

#include <random>

#include "logic/monitor.hpp"
#include "observer/global_state.hpp"

namespace mpx::logic {
namespace {

using observer::GlobalState;

// ---------------------------------------------------------------- naive

/// Reference semantics: evaluate formula at position i of trace[0..n).
bool naive(const Formula::Node* f, const std::vector<GlobalState>& tr,
           std::size_t i) {
  switch (f->op) {
    case PtOp::kAtom:
      return f->atom.evalBool(tr[i]);
    case PtOp::kTrue:
      return true;
    case PtOp::kFalse:
      return false;
    case PtOp::kNot:
      return !naive(f->lhs.get(), tr, i);
    case PtOp::kAnd:
      return naive(f->lhs.get(), tr, i) && naive(f->rhs.get(), tr, i);
    case PtOp::kOr:
      return naive(f->lhs.get(), tr, i) || naive(f->rhs.get(), tr, i);
    case PtOp::kImplies:
      return !naive(f->lhs.get(), tr, i) || naive(f->rhs.get(), tr, i);
    case PtOp::kPrev:
      return naive(f->lhs.get(), tr, i == 0 ? 0 : i - 1);
    case PtOp::kOnce:
      for (std::size_t j = 0; j <= i; ++j) {
        if (naive(f->lhs.get(), tr, j)) return true;
      }
      return false;
    case PtOp::kHistorically:
      for (std::size_t j = 0; j <= i; ++j) {
        if (!naive(f->lhs.get(), tr, j)) return false;
      }
      return true;
    case PtOp::kSince: {
      // ∃ j <= i: rhs@j and ∀ k in (j, i]: lhs@k.
      for (std::size_t j = i + 1; j-- > 0;) {
        if (naive(f->rhs.get(), tr, j)) {
          bool all = true;
          for (std::size_t k = j + 1; k <= i; ++k) {
            if (!naive(f->lhs.get(), tr, k)) {
              all = false;
              break;
            }
          }
          if (all) return true;
        }
      }
      return false;
    }
    case PtOp::kStart:
      return i > 0 && naive(f->lhs.get(), tr, i) &&
             !naive(f->lhs.get(), tr, i - 1);
    case PtOp::kEnd:
      return i > 0 && !naive(f->lhs.get(), tr, i) &&
             naive(f->lhs.get(), tr, i - 1);
    case PtOp::kInterval: {
      // ∃ j <= i: lhs@j and ∀ k in [j, i]: !rhs@k.
      for (std::size_t j = i + 1; j-- > 0;) {
        if (naive(f->rhs.get(), tr, j)) return false;  // rhs kills everything
        if (naive(f->lhs.get(), tr, j)) return true;
      }
      return false;
    }
  }
  return false;
}

// ----------------------------------------------------------- generators

Formula randomFormula(std::mt19937_64& rng, int depth) {
  const auto atom = [&rng]() {
    const std::size_t slot = rng() % 2;
    const Value c = static_cast<Value>(rng() % 3);
    return Formula::atom(StateExpr::binary(
        static_cast<StateOp>(static_cast<int>(StateOp::kEq) + rng() % 6),
        StateExpr::var(slot, slot == 0 ? "p" : "q"), StateExpr::constant(c)));
  };
  if (depth == 0) {
    switch (rng() % 4) {
      case 0: return Formula::verum();
      case 1: return Formula::falsum();
      default: return atom();
    }
  }
  switch (rng() % 11) {
    case 0: return Formula::negation(randomFormula(rng, depth - 1));
    case 1:
      return Formula::conjunction(randomFormula(rng, depth - 1),
                                  randomFormula(rng, depth - 1));
    case 2:
      return Formula::disjunction(randomFormula(rng, depth - 1),
                                  randomFormula(rng, depth - 1));
    case 3:
      return Formula::implies(randomFormula(rng, depth - 1),
                              randomFormula(rng, depth - 1));
    case 4: return Formula::prev(randomFormula(rng, depth - 1));
    case 5: return Formula::once(randomFormula(rng, depth - 1));
    case 6: return Formula::historically(randomFormula(rng, depth - 1));
    case 7:
      return Formula::since(randomFormula(rng, depth - 1),
                            randomFormula(rng, depth - 1));
    case 8: return Formula::start(randomFormula(rng, depth - 1));
    case 9: return Formula::end(randomFormula(rng, depth - 1));
    default:
      return Formula::interval(randomFormula(rng, depth - 1),
                               randomFormula(rng, depth - 1));
  }
}

class MonitorVsNaive : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MonitorVsNaive, AgreeOnRandomFormulasAndTraces) {
  std::mt19937_64 rng(GetParam());
  for (int round = 0; round < 60; ++round) {
    const Formula f = randomFormula(rng, 3);
    SynthesizedMonitor mon(f);

    std::vector<GlobalState> trace;
    const std::size_t len = 1 + rng() % 8;
    for (std::size_t i = 0; i < len; ++i) {
      trace.push_back(GlobalState({static_cast<Value>(rng() % 3),
                                   static_cast<Value>(rng() % 3)}));
    }

    mon.reset();
    for (std::size_t i = 0; i < trace.size(); ++i) {
      const bool fast = mon.stepLinear(trace[i]);
      const bool slow = naive(f.root(), trace, i);
      ASSERT_EQ(fast, slow)
          << "formula " << f.toString() << " diverged at position " << i
          << " (round " << round << ", seed " << GetParam() << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MonitorVsNaive,
                         ::testing::Values(1001, 1002, 1003, 1004, 1005,
                                           1006, 1007, 1008));

}  // namespace
}  // namespace mpx::logic
