// Offline re-analysis of a captured trace (paper Fig. 4's socket, made
// durable): the instrumented program writes its <e, i, V> messages to a
// file through the binary codec; a separate analysis pass — possibly on
// another machine, possibly with a different property — reloads and checks
// them.  The vector clocks make the file self-describing: no event order
// needs to be preserved.
#include <cstdio>
#include <sstream>

#include "core/instrumentor.hpp"
#include "logic/monitor.hpp"
#include "logic/parser.hpp"
#include "observer/causality.hpp"
#include "observer/lattice.hpp"
#include "observer/online.hpp"
#include "program/corpus.hpp"
#include "program/scheduler.hpp"
#include "trace/codec.hpp"

using namespace mpx;

int main() {
  namespace corpus = program::corpus;

  // ---- capture phase -------------------------------------------------
  const program::Program prog = corpus::xyzProgram();
  program::FixedScheduler sched(corpus::xyzObservedSchedule());
  const program::ExecutionRecord rec = program::runProgram(prog, sched);

  trace::TraceLog log;
  {
    trace::FunctionSink tap(
        [&log](const trace::Message& m) { log.append(m); });
    core::Instrumentor instr(
        core::RelevancePolicy::writesOf({prog.vars.id("x"), prog.vars.id("y"),
                                         prog.vars.id("z")}),
        tap);
    for (const auto& e : rec.events) instr.onEvent(e);
  }

  std::stringstream wire;  // stands in for a file / socket capture
  log.saveBinary(wire);
  std::printf("captured %zu messages (%zu bytes on the wire)\n", log.size(),
              wire.str().size());

  // ---- replay phase ---------------------------------------------------
  const trace::TraceLog replay = trace::TraceLog::loadBinary(wire);
  const observer::StateSpace space =
      observer::StateSpace::byNames(prog.vars, {"x", "y", "z"});

  // Check the paper's property...
  logic::SynthesizedMonitor paperMonitor(
      logic::SpecParser(space).parse(corpus::xyzProperty()));
  observer::OnlineAnalyzer analyzer(space, prog.threadCount(), &paperMonitor);
  for (const auto& m : replay.messages()) analyzer.onMessage(m);
  analyzer.endOfTrace();
  std::printf("property 1 (%s): %zu predicted violation(s)\n",
              corpus::xyzProperty(), analyzer.violations().size());

  // ...and a second property the capture never anticipated — offline
  // re-analysis needs no re-execution.
  logic::SynthesizedMonitor otherMonitor(
      logic::SpecParser(space).parse("historically z <= x + 1"));
  observer::OnlineAnalyzer analyzer2(space, prog.threadCount(), &otherMonitor);
  for (const auto& m : replay.messages()) analyzer2.onMessage(m);
  analyzer2.endOfTrace();
  std::printf("property 2 (historically z <= x + 1): %zu violation(s)\n",
              analyzer2.violations().size());

  std::printf("lattice: %zu nodes, %llu runs — reconstructed from the file\n",
              analyzer.stats().totalNodes,
              static_cast<unsigned long long>(analyzer.stats().pathCount));
  return 0;
}
