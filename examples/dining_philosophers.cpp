// Predictive deadlock detection: dining philosophers.
//
// A SUCCESSFUL run of the left-then-right philosophers completes without
// deadlock, but its lock-order graph contains the cycle
// fork0 -> fork1 -> ... -> fork0, so another schedule deadlocks.  The
// predictor reports the cycle from the one successful run; the exhaustive
// explorer confirms a real deadlocking schedule exists.  With globally
// ordered fork acquisition the graph is acyclic and nothing is reported.
#include <cstdio>

#include "analysis/engine.hpp"
#include "detect/deadlock_analysis.hpp"
#include "program/corpus.hpp"
#include "program/explorer.hpp"

using namespace mpx;

namespace {

void analyze(std::size_t n, bool ordered) {
  const program::Program prog =
      program::corpus::diningPhilosophers(n, ordered);
  std::printf("=== %zu philosophers, %s fork order ===\n", n,
              ordered ? "globally ordered" : "left-then-right");

  // One successful execution: philosophers eat one after another.
  program::GreedyScheduler sched;
  const program::ExecutionRecord rec = program::runProgram(prog, sched);
  std::printf("observed run deadlocked: %s\n", rec.deadlocked ? "yes" : "no");

  // The detector is a lattice-engine plugin: the engine replays the
  // recorded events through its bus; the plugin accumulates lock-order
  // edges and runs the cycle search at finish().
  detect::DeadlockAnalysis deadlockPlugin(prog);
  const analysis::Engine engine(prog, analysis::EngineConfig{});
  (void)engine.run(rec, {&deadlockPlugin});
  const auto& reports = deadlockPlugin.deadlocks();
  std::printf("predicted potential deadlocks: %zu\n", reports.size());
  for (const auto& r : reports) {
    std::printf("  %s\n", r.describe(prog.lockNames).c_str());
  }

  program::ExhaustiveExplorer explorer;
  const bool canDeadlock = explorer.existsExecution(
      prog, [](const program::ExecutionRecord& r) { return r.deadlocked; });
  std::printf("ground truth — some schedule deadlocks: %s\n\n",
              canDeadlock ? "yes" : "no");
}

}  // namespace

int main() {
  analyze(3, /*ordered=*/false);
  analyze(3, /*ordered=*/true);
  return 0;
}
