// Instrumenting REAL std::thread code with the library-function runtime.
//
// The paper lists "enforce shared variable updates via library functions,
// which execute A as well" as an implementation of Algorithm A (§1).  Here
// two genuine OS threads communicate through mpx::runtime::SharedVar and an
// InstrumentedMutex; every access runs Algorithm A inline, messages stream
// to the observer, and the same lattice machinery checks the property —
// no VM, no simulated scheduler.
#include <cstdio>
#include <thread>

#include "logic/monitor.hpp"
#include "logic/parser.hpp"
#include "observer/causality.hpp"
#include "observer/lattice.hpp"
#include "runtime/runtime.hpp"

using namespace mpx;

int main() {
  observer::CausalityGraph graph;
  runtime::Runtime rt(graph);

  runtime::SharedVar ready = rt.declare("ready", 0);
  runtime::SharedVar result = rt.declare("result", 0);
  auto mutex = rt.declareMutex("m");
  rt.markRelevant("ready");
  rt.markRelevant("result");

  // Producer publishes under the lock; consumer spins until it sees the
  // flag, then computes.  The lock writes give the happens-before edge.
  std::thread producer([&] {
    runtime::InstrumentedMutex::Guard g(*mutex);
    result.store(42);
    ready.store(1);
  });
  std::thread consumer([&] {
    while (true) {
      Value seen = 0;
      {
        runtime::InstrumentedMutex::Guard g(*mutex);
        seen = ready.load();
      }
      if (seen == 1) break;
      std::this_thread::yield();
    }
    runtime::InstrumentedMutex::Guard g(*mutex);
    result.store(result.load() + 1);
  });
  producer.join();
  consumer.join();

  std::printf("threads registered dynamically: %zu\n", rt.threadsSeen());
  std::printf("events instrumented: %llu, messages emitted: %llu\n",
              static_cast<unsigned long long>(rt.eventsProcessed()),
              static_cast<unsigned long long>(rt.messagesEmitted()));

  graph.finalize();
  const observer::StateSpace space =
      observer::StateSpace::byNames(rt.vars(), {"ready", "result"});

  // "If result has reached 43 then ready was raised at some point before."
  const logic::Formula property =
      logic::SpecParser(space).parse("result = 43 -> once ready = 1");
  logic::SynthesizedMonitor monitor(property);

  observer::ComputationLattice lattice(graph, space);
  std::vector<observer::Violation> violations;
  lattice.check(monitor, violations);

  std::printf("lattice nodes: %zu, runs: %llu\n",
              lattice.stats().totalNodes,
              static_cast<unsigned long long>(lattice.stats().pathCount));
  std::printf("predicted violations: %zu  (the lock ordering makes the "
              "increment causally follow the publish)\n",
              violations.size());

  // Bonus: predictive race detection on REAL threads.  Two threads bump a
  // counter without a lock; whatever interleaving the OS produced, the
  // projected happens-before finds the accesses concurrent.
  {
    trace::CollectingSink sink2;
    runtime::Runtime rt2(sink2);
    runtime::SharedVar counter = rt2.declare("counter", 0);
    rt2.enableRecording();
    std::thread a([&] { counter.store(counter.load() + 1); });
    std::thread b([&] { counter.store(counter.load() + 1); });
    a.join();
    b.join();
    detect::RaceOptions opts;
    opts.happensBefore = true;
    const auto races =
        rt2.analyzeRaces(rt2.takeRecording(), {"counter"}, opts);
    std::printf("unsynchronized real-thread counter: %zu race(s) predicted\n",
                races.size());
  }
  return violations.empty() ? 0 : 1;
}
