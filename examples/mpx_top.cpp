// mpx_top — live pipeline introspection for a running mpx_observerd.
//
// Polls the daemon's `GET /streams` endpoint and renders two terminal
// tables: one row per analyzer SESSION (tenant + trace id, checkpoint
// epoch, restore count, watermark, violations), and one row per stream
// with pipeline health — frames/messages ingested, duplicates absorbed,
// frames still in flight, and the emit-to-receive / emit-to-analyze lag
// the daemon measures from kEventsTs send timestamps.  Streams are
// grouped under their session (sorted by tenant, then trace id).
//
//   mpx_top --port N [--host H] [--interval MS] [--once]
//
//   --port N      the daemon's listen port (required)
//   --host H      daemon host (default 127.0.0.1)
//   --interval MS refresh period (default 1000)
//   --once        print a single snapshot and exit (CI / scripting mode);
//                 exit 0 on a parseable snapshot, 1 when the daemon is
//                 unreachable
//
// The daemon emits the JSON; this client only needs to pluck scalar fields
// out of it, so the "parser" here is a deliberately tiny key scanner, not
// a general JSON reader.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port N [--host H] [--interval MS] [--once]\n",
               argv0);
  std::exit(2);
}

/// One-shot HTTP/1.0 GET; returns the body (everything after the blank
/// line) or an empty string on any failure.
std::string httpGet(const std::string& host, std::uint16_t port,
                    const std::string& path) {
  mpx::net::Socket s = mpx::net::Socket::connectTo(host, port);
  if (!s.valid()) return {};
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!s.sendAll(req.data(), req.size())) return {};
  std::string response;
  char buf[4096];
  std::ptrdiff_t n;
  while ((n = s.recvSome(buf, sizeof buf)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t sep = response.find("\r\n\r\n");
  if (sep == std::string::npos) return {};
  return response.substr(sep + 4);
}

/// Finds `"key": <digits>` inside `text` starting at `from`; returns
/// `fallback` when absent.  Good enough for the daemon's own renderer.
std::uint64_t jsonU64(const std::string& text, const char* key,
                      std::size_t from = 0, std::uint64_t fallback = 0) {
  const std::string needle = std::string("\"") + key + "\": ";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos) return fallback;
  return std::strtoull(text.c_str() + at + needle.size(), nullptr, 10);
}

bool jsonBool(const std::string& text, const char* key,
              std::size_t from = 0) {
  const std::string needle = std::string("\"") + key + "\": ";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos) return false;
  return text.compare(at + needle.size(), 4, "true") == 0;
}

std::string jsonStr(const std::string& text, const char* key,
                    std::size_t from = 0) {
  const std::string needle = std::string("\"") + key + "\": \"";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos) return "?";
  const std::size_t start = at + needle.size();
  const std::size_t end = text.find('"', start);
  if (end == std::string::npos) return "?";
  return text.substr(start, end - start);
}

/// Splits a `"<label>": [...]` array into one raw-JSON chunk per object
/// (objects are flat — no nested braces beyond the lag maps, which we
/// balance with a depth counter).  The per-session scalar `"streams": N`
/// never matches because the needle requires the `[`.
std::vector<std::string> arrayChunks(const std::string& body,
                                     const char* label) {
  std::vector<std::string> out;
  const std::size_t arr =
      body.find(std::string("\"") + label + "\": [");
  if (arr == std::string::npos) return out;
  std::size_t i = arr;
  int depth = 0;
  std::size_t start = 0;
  for (; i < body.size(); ++i) {
    const char c = body[i];
    if (c == '{') {
      if (depth == 0) start = i;
      ++depth;
    } else if (c == '}') {
      if (depth > 0 && --depth == 0) {
        out.push_back(body.substr(start, i - start + 1));
      }
    } else if (c == ']' && depth == 0) {
      break;
    }
  }
  return out;
}

double toMs(std::uint64_t ns) { return static_cast<double>(ns) / 1e6; }

int renderOnce(const std::string& host, std::uint16_t port, bool clear) {
  const std::string body = httpGet(host, port, "/streams");
  if (body.empty()) {
    std::fprintf(stderr, "mpx_top: no response from %s:%u\n", host.c_str(),
                 static_cast<unsigned>(port));
    return 1;
  }
  if (clear) std::fputs("\033[H\033[2J", stdout);

  const std::uint64_t levels = jsonU64(body, "levels");
  const std::uint64_t watermark =
      jsonU64(body, "watermark_level", 0, ~std::uint64_t{0});
  const std::uint64_t pending = jsonU64(body, "pending_messages");
  std::printf("mpx_top — %s:%u   levels=%llu watermark=%lld pending=%llu "
              "degradation=%s finished=%s checkpoints=%llu restored=%llu\n",
              host.c_str(), static_cast<unsigned>(port),
              static_cast<unsigned long long>(levels),
              watermark == ~std::uint64_t{0}
                  ? -1ll
                  : static_cast<long long>(watermark),
              static_cast<unsigned long long>(pending),
              jsonStr(body, "degradation").c_str(),
              jsonBool(body, "finished") ? "yes" : "no",
              static_cast<unsigned long long>(
                  jsonU64(body, "checkpoints_written")),
              static_cast<unsigned long long>(
                  jsonU64(body, "sessions_restored")));

  const std::vector<std::string> sessions = arrayChunks(body, "sessions");
  if (!sessions.empty()) {
    std::printf("%-16s %-18s %5s %4s %9s %7s %4s %5s %4s\n", "TENANT",
                "TRACE", "EPOCH", "RST", "WATERMARK", "PENDING", "VIOL",
                "ENDED", "FIN");
    for (const std::string& chunk : sessions) {
      const std::string tenant = jsonStr(chunk, "tenant");
      char tracebuf[19];
      std::snprintf(tracebuf, sizeof tracebuf, "%016llx",
                    static_cast<unsigned long long>(
                        jsonU64(chunk, "trace_id")));
      std::printf("%-16s %-18s %5llu %4llu %9llu %7llu %4llu %5llu %4s\n",
                  tenant == "?" || tenant.empty() ? "(default)"
                                                  : tenant.c_str(),
                  tracebuf,
                  static_cast<unsigned long long>(jsonU64(chunk, "epoch")),
                  static_cast<unsigned long long>(
                      jsonU64(chunk, "restores")),
                  static_cast<unsigned long long>(
                      jsonU64(chunk, "watermark_level")),
                  static_cast<unsigned long long>(
                      jsonU64(chunk, "pending_messages")),
                  static_cast<unsigned long long>(
                      jsonU64(chunk, "violations")),
                  static_cast<unsigned long long>(
                      jsonU64(chunk, "streams_ended")),
                  jsonBool(chunk, "finished") ? "yes" : "no");
    }
  }

  std::printf("%-16s %-18s %3s %4s %7s %8s %6s %8s %5s %12s %12s\n",
              "TENANT", "STREAM", "VER", "CONN", "FRAMES", "MSGS", "DUP",
              "INFLIGHT", "END", "RECV-LAG ms", "ANLZ-LAG ms");
  for (const std::string& chunk : arrayChunks(body, "streams")) {
    const std::uint64_t id = jsonU64(chunk, "stream_id");
    const std::string tenant = jsonStr(chunk, "tenant");
    const std::size_t recvAt = chunk.find("\"receive_lag_ns\"");
    const std::size_t anlzAt = chunk.find("\"analyze_lag_ns\"");
    char idbuf[19];
    std::snprintf(idbuf, sizeof idbuf, "%016llx",
                  static_cast<unsigned long long>(id));
    std::printf("%-16s %-18s %3llu %4llu %7llu %8llu %6llu %8llu %5s "
                "%12.3f %12.3f\n",
                tenant == "?" || tenant.empty() ? "(default)"
                                                : tenant.c_str(),
                idbuf,
                static_cast<unsigned long long>(jsonU64(chunk, "version")),
                static_cast<unsigned long long>(
                    jsonU64(chunk, "connections")),
                static_cast<unsigned long long>(jsonU64(chunk, "frames")),
                static_cast<unsigned long long>(jsonU64(chunk, "messages")),
                static_cast<unsigned long long>(
                    jsonU64(chunk, "duplicates")),
                static_cast<unsigned long long>(
                    jsonU64(chunk, "frames_in_flight")),
                jsonBool(chunk, "ended") ? "yes" : "no",
                toMs(jsonU64(chunk, "mean_ns", recvAt)),
                toMs(jsonU64(chunk, "mean_ns", anlzAt)));
  }
  std::fflush(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  std::string host = "127.0.0.1";
  long intervalMs = 1000;
  bool once = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      port = static_cast<std::uint16_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--host") == 0 && i + 1 < argc) {
      host = argv[++i];
    } else if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc) {
      intervalMs = std::strtol(argv[++i], nullptr, 10);
      if (intervalMs < 10) intervalMs = 10;
    } else if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else {
      usage(argv[0]);
    }
  }
  if (port == 0) usage(argv[0]);

  if (once) return renderOnce(host, port, /*clear=*/false);
  for (;;) {
    renderOnce(host, port, /*clear=*/true);
    std::this_thread::sleep_for(std::chrono::milliseconds(intervalMs));
  }
}
