// mpx_loadgen — synthetic wide-lattice client for soak-testing mpx_observerd
// under a memory budget.
//
// Generates the worst case for frontier width: T fully independent threads
// (no synchronization, each writing its own variable E times), so EVERY
// interleaving is a consistent run and the lattice holds (E+1)^T cuts.  A
// daemon with a tight --memory-budget must ride the degradation ladder
// (DESIGN.md §5c) instead of OOMing, finish with `verdict: BOUNDED(...)`,
// and exit 3 (clean but bounded).
//
// The same stream is sent --streams S times over S sequential connections.
// Delivery is at-least-once and ingest is idempotent, so streams 2..S are
// pure duplicates the daemon must absorb with FLAT memory — the CI soak
// samples the daemon's RSS between streams and fails on growth.
//
// With --tenants T each stream instead becomes its OWN analyzer session:
// stream s handshakes (wire v5) as tenant "tenant<s mod T>" with a unique
// trace id, exercising the daemon's multi-tenant routing.  Run the daemon
// with `--streams 1 --serve` so every session finalizes on its single
// kEndOfTrace while the node stays up.  With --endpoints the emitter
// rendezvous-hashes each trace over the listed fleet instead of --port.
//
//   mpx_loadgen --port N [--threads T] [--events E] [--streams S]
//               [--tenants T] [--endpoints host:port,host:port,...]
//
// Exit: 0 = all streams delivered, 1 = transport failure / messages lost.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/emitter.hpp"
#include "net/wire.hpp"
#include "trace/event.hpp"
#include "trace/var_table.hpp"
#include "vc/vector_clock.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port N [--threads T] [--events E] [--streams S] "
               "[--tenants T] [--endpoints host:port,...]\n",
               argv0);
  std::exit(2);
}

/// Parses "host:port,host:port,..." into endpoints; empty result = bad input.
std::vector<mpx::net::Endpoint> parseEndpoints(const std::string& list) {
  std::vector<mpx::net::Endpoint> out;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    std::size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string item = list.substr(pos, comma - pos);
    const std::size_t colon = item.rfind(':');
    if (colon == std::string::npos || colon == 0) return {};
    mpx::net::Endpoint e;
    e.host = item.substr(0, colon);
    e.port = static_cast<std::uint16_t>(
        std::strtoul(item.c_str() + colon + 1, nullptr, 10));
    if (e.port == 0) return {};
    out.push_back(std::move(e));
    pos = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  mpx::ThreadId threads = 4;
  std::uint64_t events = 8;
  std::size_t streams = 3;
  std::size_t tenants = 0;
  std::vector<mpx::net::Endpoint> endpoints;

  for (int i = 1; i < argc; ++i) {
    const auto intArg = [&](const char* name) -> std::uint64_t {
      if (i + 1 >= argc) usage(argv[0]);
      return std::strtoull(argv[++i], nullptr, 10);
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      port = static_cast<std::uint16_t>(intArg("--port"));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = static_cast<mpx::ThreadId>(intArg("--threads"));
    } else if (std::strcmp(argv[i], "--events") == 0) {
      events = intArg("--events");
    } else if (std::strcmp(argv[i], "--streams") == 0) {
      streams = static_cast<std::size_t>(intArg("--streams"));
    } else if (std::strcmp(argv[i], "--tenants") == 0) {
      tenants = static_cast<std::size_t>(intArg("--tenants"));
    } else if (std::strcmp(argv[i], "--endpoints") == 0) {
      if (i + 1 >= argc) usage(argv[0]);
      endpoints = parseEndpoints(argv[++i]);
      if (endpoints.empty()) usage(argv[0]);
    } else {
      usage(argv[0]);
    }
  }
  if ((port == 0 && endpoints.empty()) || threads == 0 || events == 0 ||
      streams == 0) {
    usage(argv[0]);
  }

  // One variable per thread, no cross-thread causality: thread t's i-th
  // write carries clock {t: i+1} only, so all threads are pairwise
  // concurrent everywhere and the lattice is the full (E+1)^T grid.
  mpx::trace::VarTable vars;
  std::vector<std::string> tracked;
  for (mpx::ThreadId t = 0; t < threads; ++t) {
    const std::string name = "g" + std::to_string(t);
    vars.intern(name, 0);
    tracked.push_back(name);
  }
  std::vector<mpx::trace::Message> trace;
  for (mpx::ThreadId t = 0; t < threads; ++t) {
    for (std::uint64_t i = 0; i < events; ++i) {
      mpx::trace::Message m;
      m.event.kind = mpx::trace::EventKind::kWrite;
      m.event.thread = t;
      m.event.var = t;
      m.event.value = static_cast<mpx::Value>(i + 1);
      m.event.localSeq = i + 1;
      m.event.globalSeq = static_cast<mpx::GlobalSeq>(t) * events + i + 1;
      m.clock = mpx::vc::VectorClock(threads);
      m.clock.set(t, i + 1);
      trace.push_back(m);
    }
  }

  const mpx::net::Handshake handshake = mpx::net::makeHandshake(
      threads, std::string(), tracked, vars);

  bool ok = true;
  for (std::size_t s = 0; s < streams; ++s) {
    mpx::net::EmitterOptions opts;
    opts.port = port;
    opts.endpoints = endpoints;
    opts.handshake = handshake;
    if (tenants > 0) {
      // Multi-tenant mode: every stream is its own (tenant, trace) session.
      opts.handshake.tenant = "tenant" + std::to_string(s % tenants);
      opts.handshake.traceId = s + 1;
    }
    mpx::net::SocketEmitter emitter(opts);
    for (const auto& m : trace) emitter.onMessage(m);
    emitter.close();
    std::printf("mpx_loadgen: stream %zu/%zu sent %zu messages "
                "(tenant=%s dropped=%llu reconnects=%llu)\n",
                s + 1, streams, trace.size(),
                tenants > 0 ? opts.handshake.tenant.c_str() : "-",
                static_cast<unsigned long long>(emitter.droppedMessages()),
                static_cast<unsigned long long>(emitter.reconnects()));
    std::fflush(stdout);
    if (emitter.failed() || emitter.droppedMessages() != 0) ok = false;
  }
  return ok ? 0 : 1;
}
