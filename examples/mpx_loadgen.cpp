// mpx_loadgen — synthetic wide-lattice client for soak-testing mpx_observerd
// under a memory budget.
//
// Generates the worst case for frontier width: T fully independent threads
// (no synchronization, each writing its own variable E times), so EVERY
// interleaving is a consistent run and the lattice holds (E+1)^T cuts.  A
// daemon with a tight --memory-budget must ride the degradation ladder
// (DESIGN.md §5c) instead of OOMing, finish with `verdict: BOUNDED(...)`,
// and exit 3 (clean but bounded).
//
// The same stream is sent --streams S times over S sequential connections.
// Delivery is at-least-once and ingest is idempotent, so streams 2..S are
// pure duplicates the daemon must absorb with FLAT memory — the CI soak
// samples the daemon's RSS between streams and fails on growth.
//
//   mpx_loadgen --port N [--threads T] [--events E] [--streams S]
//
// Exit: 0 = all streams delivered, 1 = transport failure / messages lost.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "net/emitter.hpp"
#include "net/wire.hpp"
#include "trace/event.hpp"
#include "trace/var_table.hpp"
#include "vc/vector_clock.hpp"

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port N [--threads T] [--events E] [--streams S]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  mpx::ThreadId threads = 4;
  std::uint64_t events = 8;
  std::size_t streams = 3;

  for (int i = 1; i < argc; ++i) {
    const auto intArg = [&](const char* name) -> std::uint64_t {
      if (i + 1 >= argc) usage(argv[0]);
      return std::strtoull(argv[++i], nullptr, 10);
    };
    if (std::strcmp(argv[i], "--port") == 0) {
      port = static_cast<std::uint16_t>(intArg("--port"));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = static_cast<mpx::ThreadId>(intArg("--threads"));
    } else if (std::strcmp(argv[i], "--events") == 0) {
      events = intArg("--events");
    } else if (std::strcmp(argv[i], "--streams") == 0) {
      streams = static_cast<std::size_t>(intArg("--streams"));
    } else {
      usage(argv[0]);
    }
  }
  if (port == 0 || threads == 0 || events == 0 || streams == 0) {
    usage(argv[0]);
  }

  // One variable per thread, no cross-thread causality: thread t's i-th
  // write carries clock {t: i+1} only, so all threads are pairwise
  // concurrent everywhere and the lattice is the full (E+1)^T grid.
  mpx::trace::VarTable vars;
  std::vector<std::string> tracked;
  for (mpx::ThreadId t = 0; t < threads; ++t) {
    const std::string name = "g" + std::to_string(t);
    vars.intern(name, 0);
    tracked.push_back(name);
  }
  std::vector<mpx::trace::Message> trace;
  for (mpx::ThreadId t = 0; t < threads; ++t) {
    for (std::uint64_t i = 0; i < events; ++i) {
      mpx::trace::Message m;
      m.event.kind = mpx::trace::EventKind::kWrite;
      m.event.thread = t;
      m.event.var = t;
      m.event.value = static_cast<mpx::Value>(i + 1);
      m.event.localSeq = i + 1;
      m.event.globalSeq = static_cast<mpx::GlobalSeq>(t) * events + i + 1;
      m.clock = mpx::vc::VectorClock(threads);
      m.clock.set(t, i + 1);
      trace.push_back(m);
    }
  }

  const mpx::net::Handshake handshake = mpx::net::makeHandshake(
      threads, std::string(), tracked, vars);

  bool ok = true;
  for (std::size_t s = 0; s < streams; ++s) {
    mpx::net::EmitterOptions opts;
    opts.port = port;
    opts.handshake = handshake;
    mpx::net::SocketEmitter emitter(opts);
    for (const auto& m : trace) emitter.onMessage(m);
    emitter.close();
    std::printf("mpx_loadgen: stream %zu/%zu sent %zu messages "
                "(dropped=%llu reconnects=%llu)\n",
                s + 1, streams, trace.size(),
                static_cast<unsigned long long>(emitter.droppedMessages()),
                static_cast<unsigned long long>(emitter.reconnects()));
    std::fflush(stdout);
    if (emitter.failed() || emitter.droppedMessages() != 0) ok = false;
  }
  return ok ? 0 : 1;
}
