// mpx_fleetctl — local control plane for a fleet of mpx_observerd nodes.
//
// A fleet is N observer daemons on consecutive ports, each with its own
// epoch-checkpoint snapshot file; emitters rendezvous-hash their trace ids
// over the node list (see SocketEmitter), so every stream of one trace
// lands on the same node and a killed node's traces resume exactly where
// its last checkpoint left them once the node is restored.  fleetctl
// spawns the nodes, probes them over their HTTP surface, kills them
// (crash-testing: SIGKILL by default), and restores them from their
// snapshots — everything CI's fleet smoke needs.
//
//   mpx_fleetctl spawn   --dir DIR --observerd PATH --nodes N
//                        [--base-port P] [-- OBSERVERD_ARGS...]
//   mpx_fleetctl status  --dir DIR
//   mpx_fleetctl kill    --dir DIR --node I [--term]
//   mpx_fleetctl restore --dir DIR --node I
//   mpx_fleetctl stop    --dir DIR
//   mpx_fleetctl endpoints --dir DIR
//
//   spawn      start N nodes on ports P..P+N-1 (default base 47850), each
//              with `--serve --checkpoint DIR/node<i>.snapshot` plus any
//              passthrough args after `--`; waits for every /healthz.
//              Node state (pidfile, log, snapshot) lives under DIR.
//   status     one line per node: pid, alive?, and the node's
//              checkpoints_written / sessions_restored / session count
//              pulled from GET /streams.  Exit 0 iff every node responds.
//   kill       SIGKILL (or SIGTERM with --term) one node; its sessions
//              stay on disk in the snapshot.
//   restore    respawn a killed node with its original arguments; the
//              daemon restores its sessions from the snapshot on startup.
//              Waits for /healthz and prints the restored-session count.
//   stop       SIGTERM every live node (each snapshots its final epoch on
//              the way down) and delete the pidfiles.
//   endpoints  print "host:port,host:port,..." for mpx_loadgen --endpoints.
//
// Exit: 0 = command succeeded, 1 = a node failed a probe / signal, 2 = bad
// usage or unreadable fleet state.
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "net/socket.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

namespace {

[[noreturn]] void usage() {
  std::fprintf(
      stderr,
      "usage: mpx_fleetctl spawn --dir DIR --observerd PATH --nodes N\n"
      "                          [--base-port P] [-- OBSERVERD_ARGS...]\n"
      "       mpx_fleetctl status --dir DIR\n"
      "       mpx_fleetctl kill --dir DIR --node I [--term]\n"
      "       mpx_fleetctl restore --dir DIR --node I\n"
      "       mpx_fleetctl stop --dir DIR\n"
      "       mpx_fleetctl endpoints --dir DIR\n");
  std::exit(2);
}

/// One-shot HTTP/1.0 GET against 127.0.0.1:port; empty string on failure.
std::string httpGet(std::uint16_t port, const std::string& path) {
  mpx::net::Socket s = mpx::net::Socket::connectTo("127.0.0.1", port);
  if (!s.valid()) return {};
  const std::string req = "GET " + path + " HTTP/1.0\r\n\r\n";
  if (!s.sendAll(req.data(), req.size())) return {};
  std::string response;
  char buf[4096];
  std::ptrdiff_t n;
  while ((n = s.recvSome(buf, sizeof buf)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t sep = response.find("\r\n\r\n");
  if (sep == std::string::npos) return {};
  return response.substr(sep + 4);
}

std::uint64_t jsonU64(const std::string& text, const char* key) {
  const std::string needle = std::string("\"") + key + "\": ";
  const std::size_t at = text.find(needle);
  if (at == std::string::npos) return 0;
  return std::strtoull(text.c_str() + at + needle.size(), nullptr, 10);
}

/// Polls /healthz until the node answers or ~10s pass.
bool waitHealthy(std::uint16_t port) {
  for (int i = 0; i < 200; ++i) {
    if (!httpGet(port, "/healthz").empty()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return false;
}

/// The fleet's on-disk control state: DIR/fleet.meta holds the spawn
/// parameters (one "key=value" per line, passthrough args one per "arg="
/// line), DIR/node<i>.pid the live pid, DIR/node<i>.snapshot the epoch
/// checkpoints, DIR/node<i>.log the daemon's stdout+stderr.
struct FleetMeta {
  std::string observerd;
  std::size_t nodes = 0;
  std::uint16_t basePort = 47850;
  std::vector<std::string> extraArgs;
};

std::string metaPath(const std::string& dir) { return dir + "/fleet.meta"; }
std::string pidPath(const std::string& dir, std::size_t i) {
  return dir + "/node" + std::to_string(i) + ".pid";
}
std::string snapshotPath(const std::string& dir, std::size_t i) {
  return dir + "/node" + std::to_string(i) + ".snapshot";
}
std::string logPath(const std::string& dir, std::size_t i) {
  return dir + "/node" + std::to_string(i) + ".log";
}

bool writeMeta(const std::string& dir, const FleetMeta& m) {
  std::FILE* f = std::fopen(metaPath(dir).c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "observerd=%s\nnodes=%zu\nbaseport=%u\n",
               m.observerd.c_str(), m.nodes,
               static_cast<unsigned>(m.basePort));
  for (const auto& a : m.extraArgs) std::fprintf(f, "arg=%s\n", a.c_str());
  std::fclose(f);
  return true;
}

bool readMeta(const std::string& dir, FleetMeta* m) {
  std::FILE* f = std::fopen(metaPath(dir).c_str(), "r");
  if (f == nullptr) return false;
  char line[4096];
  while (std::fgets(line, sizeof line, f) != nullptr) {
    std::string s(line);
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) s.pop_back();
    const std::size_t eq = s.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = s.substr(0, eq), val = s.substr(eq + 1);
    if (key == "observerd") m->observerd = val;
    else if (key == "nodes") m->nodes = std::strtoull(val.c_str(), nullptr, 10);
    else if (key == "baseport")
      m->basePort =
          static_cast<std::uint16_t>(std::strtoul(val.c_str(), nullptr, 10));
    else if (key == "arg") m->extraArgs.push_back(val);
  }
  std::fclose(f);
  return m->nodes > 0 && !m->observerd.empty();
}

pid_t readPid(const std::string& dir, std::size_t i) {
  std::FILE* f = std::fopen(pidPath(dir, i).c_str(), "r");
  if (f == nullptr) return -1;
  long pid = -1;
  if (std::fscanf(f, "%ld", &pid) != 1) pid = -1;
  std::fclose(f);
  return static_cast<pid_t>(pid);
}

bool alive(pid_t pid) { return pid > 0 && ::kill(pid, 0) == 0; }

/// fork+exec one node; stdout/stderr go to its log, the pid to its pidfile.
bool spawnNode(const std::string& dir, const FleetMeta& m, std::size_t i) {
  const std::uint16_t port = static_cast<std::uint16_t>(m.basePort + i);
  std::vector<std::string> args = {
      m.observerd,      "--port",       std::to_string(port),
      "--serve",        "--checkpoint", snapshotPath(dir, i),
  };
  for (const auto& a : m.extraArgs) args.push_back(a);

  const pid_t pid = ::fork();
  if (pid < 0) return false;
  if (pid == 0) {
    const int log = ::open(logPath(dir, i).c_str(),
                           O_CREAT | O_WRONLY | O_APPEND, 0644);
    if (log >= 0) {
      ::dup2(log, 1);
      ::dup2(log, 2);
      ::close(log);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::_Exit(127);  // exec failed
  }
  std::FILE* f = std::fopen(pidPath(dir, i).c_str(), "w");
  if (f != nullptr) {
    std::fprintf(f, "%ld\n", static_cast<long>(pid));
    std::fclose(f);
  }
  if (!waitHealthy(port)) {
    std::fprintf(stderr, "mpx_fleetctl: node %zu (pid %ld, port %u) "
                 "never became healthy\n",
                 i, static_cast<long>(pid), static_cast<unsigned>(port));
    return false;
  }
  return true;
}

std::string flagValue(int argc, char** argv, int& i) {
  if (i + 1 >= argc) usage();
  return argv[++i];
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];

  std::string dir;
  FleetMeta meta;
  std::size_t node = static_cast<std::size_t>(-1);
  bool term = false;
  std::vector<std::string> passthrough;

  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--dir") == 0) {
      dir = flagValue(argc, argv, i);
    } else if (std::strcmp(argv[i], "--observerd") == 0) {
      meta.observerd = flagValue(argc, argv, i);
    } else if (std::strcmp(argv[i], "--nodes") == 0) {
      meta.nodes = std::strtoull(flagValue(argc, argv, i).c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--base-port") == 0) {
      meta.basePort = static_cast<std::uint16_t>(
          std::strtoul(flagValue(argc, argv, i).c_str(), nullptr, 10));
    } else if (std::strcmp(argv[i], "--node") == 0) {
      node = std::strtoull(flagValue(argc, argv, i).c_str(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--term") == 0) {
      term = true;
    } else if (std::strcmp(argv[i], "--") == 0) {
      for (++i; i < argc; ++i) passthrough.emplace_back(argv[i]);
    } else {
      usage();
    }
  }
  if (dir.empty()) usage();

  if (cmd == "spawn") {
    if (meta.observerd.empty() || meta.nodes == 0) usage();
    meta.extraArgs = passthrough;
    ::mkdir(dir.c_str(), 0755);
    if (!writeMeta(dir, meta)) {
      std::fprintf(stderr, "mpx_fleetctl: cannot write %s\n",
                   metaPath(dir).c_str());
      return 2;
    }
    for (std::size_t i = 0; i < meta.nodes; ++i) {
      if (!spawnNode(dir, meta, i)) return 1;
      std::printf("mpx_fleetctl: node %zu up on 127.0.0.1:%u\n", i,
                  static_cast<unsigned>(meta.basePort + i));
    }
    std::fflush(stdout);
    return 0;
  }

  if (!readMeta(dir, &meta)) {
    std::fprintf(stderr, "mpx_fleetctl: no fleet state in %s\n", dir.c_str());
    return 2;
  }
  if ((cmd == "kill" || cmd == "restore") && node >= meta.nodes) usage();

  if (cmd == "status") {
    bool allUp = true;
    for (std::size_t i = 0; i < meta.nodes; ++i) {
      const pid_t pid = readPid(dir, i);
      const std::uint16_t port = static_cast<std::uint16_t>(meta.basePort + i);
      const std::string body = httpGet(port, "/streams");
      if (body.empty()) allUp = false;
      std::printf("node %zu port=%u pid=%ld %s sessions=%llu "
                  "checkpoints=%llu restored=%llu violations=%llu\n",
                  i, static_cast<unsigned>(port), static_cast<long>(pid),
                  body.empty() ? (alive(pid) ? "starting" : "DOWN") : "up",
                  static_cast<unsigned long long>(
                      jsonU64(body, "sessions_active")),
                  static_cast<unsigned long long>(
                      jsonU64(body, "checkpoints_written")),
                  static_cast<unsigned long long>(
                      jsonU64(body, "sessions_restored")),
                  static_cast<unsigned long long>(
                      jsonU64(body, "violations_total")));
    }
    std::fflush(stdout);
    return allUp ? 0 : 1;
  }

  if (cmd == "kill") {
    const pid_t pid = readPid(dir, node);
    if (!alive(pid)) {
      std::fprintf(stderr, "mpx_fleetctl: node %zu is not running\n", node);
      return 1;
    }
    // SIGKILL is the crash test (no final checkpoint — the restore replays
    // the gap from the emitters' resend windows); --term is the graceful
    // path (the daemon snapshots its final epoch before exiting).
    ::kill(pid, term ? SIGTERM : SIGKILL);
    int st = 0;
    ::waitpid(pid, &st, 0);  // only reaps our own children; harmless else
    // The node is usually init's child (the spawning fleetctl has exited),
    // so waitpid cannot reap it — poll until the kernel retires the pid, or
    // a follow-up `restore` races the dying process and refuses to start.
    for (int tries = 0; alive(pid) && tries < 200; ++tries) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (alive(pid)) {
      std::fprintf(stderr, "mpx_fleetctl: node %zu (pid %ld) did not exit\n",
                   node, static_cast<long>(pid));
      return 1;
    }
    std::printf("mpx_fleetctl: node %zu (pid %ld) sent %s\n", node,
                static_cast<long>(pid), term ? "SIGTERM" : "SIGKILL");
    std::fflush(stdout);
    return 0;
  }

  if (cmd == "restore") {
    const pid_t old = readPid(dir, node);
    if (alive(old)) {
      std::fprintf(stderr, "mpx_fleetctl: node %zu is still running\n", node);
      return 1;
    }
    if (!spawnNode(dir, meta, node)) return 1;
    const std::uint16_t port = static_cast<std::uint16_t>(meta.basePort + node);
    const std::string body = httpGet(port, "/streams");
    std::printf("mpx_fleetctl: node %zu restored on 127.0.0.1:%u "
                "(sessions_restored=%llu)\n",
                node, static_cast<unsigned>(port),
                static_cast<unsigned long long>(
                    jsonU64(body, "sessions_restored")));
    std::fflush(stdout);
    return 0;
  }

  if (cmd == "stop") {
    bool ok = true;
    for (std::size_t i = 0; i < meta.nodes; ++i) {
      const pid_t pid = readPid(dir, i);
      if (alive(pid)) {
        ::kill(pid, SIGTERM);
      }
    }
    for (std::size_t i = 0; i < meta.nodes; ++i) {
      const pid_t pid = readPid(dir, i);
      for (int tries = 0; alive(pid) && tries < 200; ++tries) {
        int st = 0;
        ::waitpid(pid, &st, WNOHANG);
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      if (alive(pid)) {
        std::fprintf(stderr, "mpx_fleetctl: node %zu did not exit\n", i);
        ok = false;
      }
      std::remove(pidPath(dir, i).c_str());
    }
    return ok ? 0 : 1;
  }

  if (cmd == "endpoints") {
    std::string list;
    for (std::size_t i = 0; i < meta.nodes; ++i) {
      if (i > 0) list += ',';
      list += "127.0.0.1:" + std::to_string(meta.basePort + i);
    }
    std::printf("%s\n", list.c_str());
    return 0;
  }

  usage();
}
