// Quickstart: the whole MPX pipeline in ~60 lines.
//
// 1. Describe a multithreaded program (or instrument a real one — see
//    examples/real_threads.cpp).
// 2. State a safety property in past-time LTL.
// 3. Execute the program ONCE, under any scheduler.
// 4. MPX instruments every shared access with the multithreaded-vector-
//    clock Algorithm A, reconstructs the causal partial order at the
//    observer, builds the computation lattice, and checks the property
//    against EVERY thread interleaving consistent with that causality —
//    predicting violations the observed run never exhibited.
#include <cstdio>

#include "analysis/predictive_analyzer.hpp"
#include "program/corpus.hpp"

int main() {
  using namespace mpx;

  // Two threads: t1 raises `ready`, then `go`; t2 independently cuts the
  // `power`.  The property: "when `go` first rises, `ready` must have been
  // raised, and the power must not have dropped since".
  program::ProgramBuilder b;
  const VarId ready = b.var("ready", 0);
  const VarId go = b.var("go", 0);
  const VarId power = b.var("power", 1);
  auto t1 = b.thread("starter");
  t1.write(ready, program::lit(1)).write(go, program::lit(1));
  auto t2 = b.thread("breaker");
  t2.write(power, program::lit(0));
  const program::Program prog = b.build();

  analysis::AnalyzerConfig config;
  config.spec = "start(go = 1) -> [ready = 1, power = 0)";

  analysis::PredictiveAnalyzer analyzer(prog, config);
  std::printf("relevant variables extracted from the spec:");
  for (const auto& v : analyzer.relevantVariables()) std::printf(" %s", v.c_str());
  std::printf("\n\n");

  // One SUCCESSFUL execution: t1 completes first, the power drops last —
  // the property holds on this run, so a single-trace monitor is silent.
  program::FixedScheduler sched({0, 0, 0, 1, 1});
  const analysis::AnalysisResult result = analyzer.analyze(sched);

  std::printf("observed run violates property:  %s\n",
              result.observedRunViolates() ? "yes" : "no");
  std::printf("lattice: %zu nodes, %llu runs consistent with the causality\n",
              result.latticeStats.totalNodes,
              static_cast<unsigned long long>(result.latticeStats.pathCount));
  std::printf("predicted violations in other consistent runs: %zu\n\n",
              result.predictedViolations.size());

  for (const auto& v : result.predictedViolations) {
    std::printf("%s\n", result.describe(v).c_str());
  }

  // Sanity: the prediction is real — exhaustive scheduling confirms some
  // interleaving of the same program actually violates the property.
  const auto truth = analysis::groundTruth(prog, config.spec);
  std::printf("ground truth over all %zu schedules: %zu violating\n",
              truth.totalExecutions, truth.violatingExecutions);
  return 0;
}
