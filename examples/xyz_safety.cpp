// Paper Example 2 (Fig. 6): the x/y/z program.
//
//   initially x = -1, y = 0, z = 0
//   thread1:  x++; ...; y = x + 1;
//   thread2:  z = x + 1; ...; x++;
//   property: (x > 0) -> [y = 0, y > z)
//
// The observed execution passes through states
// (-1,0,0) (0,0,0) (0,0,1) (1,0,1) (1,1,1) and satisfies the property; the
// observer receives the four messages of Fig. 6, reconstructs the causal
// order, and the lattice contains three runs — the rightmost of which
// violates the property.  JPAX/Java-MaC fail here; MPX predicts the bug.
#include <cstdio>

#include "analysis/predictive_analyzer.hpp"
#include "observer/run_enumerator.hpp"
#include "program/corpus.hpp"
#include "trace/codec.hpp"

int main() {
  using namespace mpx;
  namespace corpus = program::corpus;

  const program::Program prog = corpus::xyzProgram();
  analysis::AnalyzerConfig config;
  config.spec = corpus::xyzProperty();
  config.lattice.retention = observer::Retention::kFull;
  analysis::PredictiveAnalyzer analyzer(prog, config);

  std::printf("property: %s\n\n", config.spec.c_str());

  program::FixedScheduler sched(corpus::xyzObservedSchedule());
  const analysis::AnalysisResult r = analyzer.analyze(sched);

  std::printf("=== Messages received by the observer (paper Fig. 6) ===\n");
  trace::TextCodec codec(prog.vars);
  for (const auto& ref : r.observedRun) {
    std::printf("  %s\n", codec.format(r.causality.message(ref)).c_str());
  }

  std::printf("\n=== Observed state sequence ===\n ");
  for (const auto& s : r.observedStates) {
    std::printf(" (x=%lld,y=%lld,z=%lld)", static_cast<long long>(s[0]),
                static_cast<long long>(s[1]), static_cast<long long>(s[2]));
  }
  std::printf("\nobserved run violates: %s\n\n",
              r.observedRunViolates() ? "YES" : "no");

  std::printf("=== Computation lattice (paper Fig. 6) ===\n");
  observer::ComputationLattice lattice(r.causality, r.space, config.lattice);
  lattice.build();
  std::printf("%s", lattice.render().c_str());
  std::printf("nodes: %zu, runs: %llu\n\n", lattice.stats().totalNodes,
              static_cast<unsigned long long>(lattice.stats().pathCount));

  std::printf("=== All runs, checked individually ===\n");
  observer::RunEnumerator runs(r.causality, r.space);
  logic::SynthesizedMonitor monitor(analyzer.formula());
  std::size_t idx = 0;
  runs.forEachRun([&](const observer::Run& run) {
    std::printf("run %zu:", ++idx);
    for (const auto& s : run.states) std::printf(" %s", s.toString().c_str());
    std::printf("  -> %s\n",
                monitor.firstViolation(run.states) >= 0 ? "VIOLATES" : "ok");
    return true;
  });

  std::printf("\n=== Predicted violations ===\n");
  for (const auto& v : r.predictedViolations) {
    std::printf("%s\n", r.describe(v).c_str());
  }

  const auto truth = analysis::groundTruth(prog, config.spec);
  std::printf("ground truth: %zu of %zu schedules violate\n",
              truth.violatingExecutions, truth.totalExecutions);
  return 0;
}
