// Paper Example 1 (Figs. 1 and 5): the flight controller.
//
// The observed execution is SUCCESSFUL: approval is granted, the plane
// starts landing, and only afterwards does the radio go down — the safety
// property "landing = 1 -> [approved = 1, radio = 0)" holds on that trace,
// so JPAX/Java-MaC-style observed-run monitors see nothing.
//
// JMPaX's (and MPX's) observer instead extracts the causal partial order
// from the three emitted messages, builds the 6-state computation lattice
// of Fig. 5, and finds the two OTHER runs — radio-off before approval, and
// radio-off between approval and landing — of which the latter violates
// the property.  This program prints the whole story.
#include <cstdio>

#include "analysis/predictive_analyzer.hpp"
#include "observer/run_enumerator.hpp"
#include "program/corpus.hpp"

int main() {
  using namespace mpx;
  namespace corpus = program::corpus;

  const program::Program prog = corpus::landingController();
  std::printf("=== Program (paper Fig. 1) ===\n%s\n",
              prog.disassemble().c_str());

  analysis::AnalyzerConfig config;
  config.spec = corpus::landingProperty();
  config.lattice.retention = observer::Retention::kFull;
  analysis::PredictiveAnalyzer analyzer(prog, config);

  std::printf("property: %s\n\n", config.spec.c_str());

  // The paper's observed (successful) execution.
  program::FixedScheduler sched(corpus::landingObservedSchedule());
  const analysis::AnalysisResult r = analyzer.analyze(sched);

  std::printf("=== Observed execution ===\n");
  std::printf("messages emitted to the observer: %llu\n",
              static_cast<unsigned long long>(r.messagesEmitted));
  std::printf("observed state sequence:");
  for (const auto& s : r.observedStates) std::printf(" %s", s.toString().c_str());
  std::printf("   (<landing,approved,radio>)\n");
  std::printf("observed run violates: %s  (a single-trace monitor reports nothing)\n\n",
              r.observedRunViolates() ? "YES" : "no");

  std::printf("=== Computation lattice (paper Fig. 5) ===\n");
  observer::ComputationLattice lattice(r.causality, r.space,
                                       config.lattice);
  lattice.build();
  std::printf("%s", lattice.render().c_str());
  std::printf("nodes: %zu, runs: %llu\n\n", lattice.stats().totalNodes,
              static_cast<unsigned long long>(lattice.stats().pathCount));

  std::printf("=== Runs and verdicts ===\n");
  observer::RunEnumerator runs(r.causality, r.space);
  std::size_t idx = 0;
  std::size_t violating = 0;
  logic::SynthesizedMonitor monitor(analyzer.formula());
  runs.forEachRun([&](const observer::Run& run) {
    const std::int64_t firstBad = monitor.firstViolation(run.states);
    std::printf("run %zu:", ++idx);
    for (const auto& s : run.states) std::printf(" %s", s.toString().c_str());
    std::printf("  -> %s\n", firstBad >= 0 ? "VIOLATES" : "ok");
    if (firstBad >= 0) ++violating;
    return true;
  });
  std::printf("%zu of %zu runs violate the property\n\n", violating, idx);

  std::printf("=== Predicted violations (with counterexamples) ===\n");
  for (const auto& v : r.predictedViolations) {
    std::printf("%s\n", r.describe(v).c_str());
  }

  const auto truth = analysis::groundTruth(prog, config.spec);
  std::printf(
      "ground truth: %zu of %zu schedules of the real program violate\n",
      truth.violatingExecutions, truth.totalExecutions);
  return 0;
}
