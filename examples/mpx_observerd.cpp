// mpx_observerd — the standalone observer process of the paper's Fig. 4
// deployment.  An instrumented program (or several channels of one) connects
// with a SocketEmitter and streams its observer-bound messages; this daemon
// feeds them into an OnlineAnalyzer and prints the violation report when the
// trace completes or the daemon is told to shut down.
//
//   mpx_observerd [--port N] [--jobs N] [--streams N] [--property SPEC]...
//                 [--analysis NAME]... [--memory-budget BYTES]
//                 [--max-frontier N] [--max-conns N]
//                 [--max-conns-per-tenant N] [--checkpoint PATH]
//                 [--checkpoint-interval LEVELS] [--serve]
//                 [--flight-dump PATH] [--quiet]
//
//   --port N     listen on 127.0.0.1:N (default 0 = ephemeral; the chosen
//                port is printed on startup either way)
//   --jobs N     parallel lattice-level expansion inside the analyzer
//   --streams N  kEndOfTrace frames to await before finalizing (a client
//                spreading its trace over N channels sends one per channel)
//   --property SPEC
//                check SPEC in addition to the properties the client's
//                handshake carries; repeatable — all properties are checked
//                in ONE lattice pass (one SpecAnalysis plugin each)
//   --analysis NAME
//                run a daemon-side analysis plugin in every session;
//                repeatable.  NAME is "atomicity" (conflict-serializability
//                of MPX_ATOMIC_BEGIN/END regions, wire v6) or "mhp"
//                (never-concurrent pair / race-free variable prefilter)
//   --memory-budget BYTES
//                bound the analyzer's accounted working set; over budget it
//                degrades (sampled frontier → observed path only) instead of
//                dying, and new connections are shed while over budget
//   --max-frontier N
//                cap the lattice frontier at N nodes per level (same ladder)
//   --max-conns N
//                admission control: at most N live client connections;
//                further connections are shed with a notice
//   --max-conns-per-tenant N
//                per-tenant admission control: at most N live handshaken
//                connections per tenant (wire v5); one tenant flooding the
//                daemon cannot starve the others
//   --checkpoint PATH
//                epoch checkpoint/restore: restore all analyzer sessions
//                from PATH on startup (if it exists), snapshot them back
//                atomically on SIGTERM/SIGINT and at the --checkpoint-
//                interval cadence
//   --checkpoint-interval LEVELS
//                also snapshot whenever a session's consumption watermark
//                advanced LEVELS levels since its last checkpoint
//                (default 0 = only on shutdown)
//   --serve      keep serving after the expected streams finished (fleet
//                mode: a node analyzes many tenants' traces, each session
//                finishing on its own schedule; stop with SIGTERM)
//   --flight-dump PATH
//                write the flight-recorder ring (recent pipeline events) to
//                PATH as JSON on exit, on the first predicted violation, and
//                from the SIGSEGV/SIGABRT crash handler
//   --quiet      suppress per-connection error logging
//
// While running the daemon answers plain HTTP on its port:
//   GET /                human status page (counters, report, telemetry)
//   GET /healthz         "ok" once the listener is up
//   GET /metrics         Prometheus exposition (mpx_pipeline_* live here)
//   GET /streams         per-stream lag + watermark JSON
//   GET /report          current violation report (text)
//   GET /flightrecorder  flight-recorder ring as JSON, on demand
// SIGTERM/SIGINT print the final report and exit: 0 = finished with no
// violations, 1 = violations predicted, 2 = analysis incomplete or unusable
// input, 3 = finished clean but BOUNDED (the ladder shed runs, so "no
// violation" is not a proof).
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "analysis/report.hpp"
#include "net/observerd.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/trace_span.hpp"

#include <unistd.h>

namespace {

volatile std::sig_atomic_t g_stop = 0;

void onSignal(int) { g_stop = 1; }

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port N] [--jobs N] [--streams N] "
               "[--property SPEC]... [--analysis NAME]... "
               "[--memory-budget BYTES] "
               "[--max-frontier N] [--max-conns N] "
               "[--max-conns-per-tenant N] [--checkpoint PATH] "
               "[--checkpoint-interval LEVELS] [--serve] "
               "[--flight-dump PATH] [--quiet]\n",
               argv0);
  std::exit(2);
}

long argValue(int argc, char** argv, int& i, const char* argv0) {
  if (i + 1 >= argc) usage(argv0);
  char* end = nullptr;
  const long v = std::strtol(argv[++i], &end, 10);
  if (end == nullptr || *end != '\0' || v < 0) usage(argv0);
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  mpx::net::DaemonOptions opts;
  bool serve = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0) {
      const long v = argValue(argc, argv, i, argv[0]);
      if (v > 65535) usage(argv[0]);
      opts.port = static_cast<std::uint16_t>(v);
    } else if (std::strcmp(argv[i], "--jobs") == 0) {
      opts.jobs = static_cast<std::size_t>(argValue(argc, argv, i, argv[0]));
    } else if (std::strcmp(argv[i], "--streams") == 0) {
      const long v = argValue(argc, argv, i, argv[0]);
      if (v < 1) usage(argv[0]);
      opts.expectedStreams = static_cast<std::size_t>(v);
    } else if (std::strcmp(argv[i], "--property") == 0) {
      if (i + 1 >= argc) usage(argv[0]);
      opts.extraSpecs.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--analysis") == 0) {
      if (i + 1 >= argc) usage(argv[0]);
      const std::string name = argv[++i];
      if (name != "atomicity" && name != "mhp") usage(argv[0]);
      opts.analyses.push_back(name);
    } else if (std::strcmp(argv[i], "--memory-budget") == 0) {
      opts.lattice.memoryBudgetBytes =
          static_cast<std::size_t>(argValue(argc, argv, i, argv[0]));
    } else if (std::strcmp(argv[i], "--max-frontier") == 0) {
      opts.lattice.maxFrontier =
          static_cast<std::size_t>(argValue(argc, argv, i, argv[0]));
    } else if (std::strcmp(argv[i], "--max-conns") == 0) {
      opts.maxConnections =
          static_cast<std::size_t>(argValue(argc, argv, i, argv[0]));
    } else if (std::strcmp(argv[i], "--max-conns-per-tenant") == 0) {
      opts.maxConnsPerTenant =
          static_cast<std::size_t>(argValue(argc, argv, i, argv[0]));
    } else if (std::strcmp(argv[i], "--checkpoint") == 0) {
      if (i + 1 >= argc) usage(argv[0]);
      opts.checkpointPath = argv[++i];
    } else if (std::strcmp(argv[i], "--checkpoint-interval") == 0) {
      opts.checkpointIntervalLevels =
          static_cast<std::uint64_t>(argValue(argc, argv, i, argv[0]));
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve = true;
    } else if (std::strcmp(argv[i], "--flight-dump") == 0) {
      if (i + 1 >= argc) usage(argv[0]);
      opts.flightDumpPath = argv[++i];
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      opts.logErrors = false;
    } else {
      usage(argv[0]);
    }
  }

  if (!opts.flightDumpPath.empty()) {
    // Crash handler last-resort dump goes to the same file the graceful
    // paths use, so post-mortems always look in one place.
    mpx::telemetry::FlightRecorder::installCrashHandler(
        opts.flightDumpPath.c_str());
  }
  // Tag this process's trace spans so a merged Chrome trace shows the
  // daemon's daemon.frame spans beside the client's emitter.batch spans.
  mpx::telemetry::TraceRecorder::global().setPid(
      static_cast<std::uint32_t>(::getpid()));
  mpx::telemetry::TraceRecorder::global().setProcessName("mpx_observerd");

  mpx::net::ObserverDaemon daemon(opts);
  if (!daemon.start()) {
    std::fprintf(stderr, "mpx_observerd: cannot bind 127.0.0.1:%u\n",
                 static_cast<unsigned>(opts.port));
    return 2;
  }
  std::printf("mpx_observerd: listening on 127.0.0.1:%u (streams=%zu jobs=%zu)\n",
              static_cast<unsigned>(daemon.port()), opts.expectedStreams,
              opts.jobs);
  std::fflush(stdout);

  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);

  // Serve until the trace completes or a signal asks for the report now.
  // Fleet mode (--serve) keeps the node alive after the expected streams
  // finish: sessions come and go on their tenants' schedules, so only a
  // signal ends the process.
  while (g_stop == 0 &&
         !daemon.waitFinished(std::chrono::milliseconds(200))) {
    const std::string err = daemon.streamError();
    if (!err.empty()) {
      std::fprintf(stderr, "mpx_observerd: analysis failed: %s\n",
                   err.c_str());
      break;
    }
  }
  while (serve && g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  // Persist the final epoch before tearing the listener down, so a
  // SIGTERM'd node restarts exactly where it stopped.
  if (!opts.checkpointPath.empty()) daemon.checkpointNow();
  daemon.stop();

  if (!opts.flightDumpPath.empty()) {
    mpx::telemetry::FlightRecorder::global().record(
        mpx::telemetry::FlightEvent::kDump, /*reason=*/0);
    mpx::telemetry::FlightRecorder::global().dumpToFile(
        opts.flightDumpPath.c_str());
  }

  std::fputs(daemon.renderReport().c_str(), stdout);
  const auto reports = daemon.analysisReports();
  if (!reports.empty()) {
    std::fputs("\n", stdout);
    std::fputs(mpx::analysis::renderAnalysisReports(reports).c_str(), stdout);
  }
  return mpx::analysis::exitCodeFor(daemon.finished(),
                                    daemon.violations().size(),
                                    daemon.stats().bounded());
}
