// Liveness-violation prediction via lattice lassos (paper §4).
//
// A toggler thread flips x between 1 and 0.  The state sequence revisits
// earlier global states, so the lattice contains paths u and u·v with
// state(u) = state(u·v); the system can "potentially run into the infinite
// sequence u·v^ω".  We check the liveness property F(G(x = 0)) — "the
// system eventually stabilizes with x = 0" — against each lasso with the
// polynomial LTL-on-lasso evaluation of Markey & Schnoebelen.
#include <cstdio>

#include "analysis/liveness.hpp"
#include "analysis/predictive_analyzer.hpp"
#include "core/instrumentor.hpp"
#include "program/corpus.hpp"

using namespace mpx;

int main() {
  // Toggler: x goes 0 -> 1 -> 0 -> 1 -> 0; a witness thread bumps w once.
  program::ProgramBuilder b;
  const VarId x = b.var("x", 0);
  const VarId w = b.var("w", 0);
  auto t1 = b.thread("toggler");
  t1.write(x, program::lit(1))
      .write(x, program::lit(0))
      .write(x, program::lit(1))
      .write(x, program::lit(0));
  auto t2 = b.thread("witness");
  t2.write(w, program::lit(1));
  const program::Program prog = b.build();

  // Execute once and extract the causal order over writes of {x, w}.
  program::GreedyScheduler sched;
  const program::ExecutionRecord rec = program::runProgram(prog, sched);

  observer::CausalityGraph graph;
  core::Instrumentor instr(
      core::RelevancePolicy::writesOf({x, w}), graph);
  for (const trace::Event& e : rec.events) instr.onEvent(e);
  graph.finalize();

  const observer::StateSpace space =
      observer::StateSpace::byNames(prog.vars, {"x", "w"});

  // Property: eventually, x stays 0 forever.
  const logic::StateExpr xIsZero = logic::StateExpr::binary(
      logic::StateOp::kEq,
      logic::StateExpr::var(space.slotOfName("x"), "x"),
      logic::StateExpr::constant(0));
  const logic::LtlFormula stabilizes = logic::LtlFormula::eventually(
      logic::LtlFormula::always(logic::LtlFormula::atom(xIsZero)));

  analysis::LivenessPredictor predictor(graph, space);
  const auto lassos = predictor.allLassos();
  std::printf("lassos found in the lattice: %zu\n", lassos.size());

  const auto violations = predictor.predict(stabilizes);
  std::printf("lassos violating F(G(x = 0)): %zu\n", violations.size());
  for (const auto& v : violations) {
    std::printf("  stem:");
    for (const auto& s : v.stemStates) std::printf(" %s", s.toString().c_str());
    std::printf("   loop:");
    for (const auto& s : v.loopStates) std::printf(" %s", s.toString().c_str());
    std::printf("  (repeats forever)\n");
  }
  return 0;
}
