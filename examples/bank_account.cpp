// Predictive data-race detection on the classic lost-update bug.
//
// Two threads deposit into a shared balance with an unsynchronized
// read-modify-write.  Most schedules are benign (final balance 150); the
// losing-update schedules are rare.  From ONE benign execution, the MVC
// happens-before analysis reports the racing access pair; on the
// lock-protected variant the lock writes (§3.1) order the critical
// sections and no race is reported.
#include <cstdio>

#include "analysis/engine.hpp"
#include "detect/race_analysis.hpp"
#include "program/corpus.hpp"
#include "program/explorer.hpp"

using namespace mpx;

namespace {

void analyzeRaces(const program::Program& prog, const char* label) {
  // One execution, greedy schedule (thread 1 fully, then thread 2): benign.
  program::GreedyScheduler sched;
  const program::ExecutionRecord rec = program::runProgram(prog, sched);
  std::printf("=== %s ===\n", label);
  std::printf("observed final balance: %lld\n",
              static_cast<long long>(rec.finalShared[prog.vars.id("balance")]));

  // Instrument ALL accesses of `balance` with the race-detection causality
  // projection (program order + synchronization edges only), then look for
  // MVC-concurrent conflicting pairs; the lockset refinement also flags
  // pairs this particular run happened to order.  The detector is a
  // lattice-engine plugin: the engine replays the recorded events through
  // its bus and the plugin builds the projected clocks as they stream by.
  detect::RaceOptions opts;
  opts.lockset = true;
  detect::RaceAnalysis racePlugin(prog, {"balance"}, opts);
  const analysis::Engine engine(prog, analysis::EngineConfig{});
  (void)engine.run(rec, {&racePlugin});
  const auto& races = racePlugin.races();

  std::printf("predicted races: %zu\n", races.size());
  for (const auto& race : races) {
    std::printf("  %s\n", race.describe(prog.vars).c_str());
  }

  // Ground truth: does any schedule actually lose an update?
  program::ExhaustiveExplorer explorer;
  const VarId balance = prog.vars.id("balance");
  bool lostUpdate = explorer.existsExecution(
      prog, [balance](const program::ExecutionRecord& r) {
        return r.finalShared[balance] != 150;
      });
  std::printf("some schedule loses an update: %s\n\n",
              lostUpdate ? "yes" : "no");
}

}  // namespace

int main() {
  analyzeRaces(program::corpus::bankAccountRacy(), "unsynchronized deposits");
  analyzeRaces(program::corpus::bankAccountLocked(), "lock-protected deposits");
  return 0;
}
