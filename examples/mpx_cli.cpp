// mpx_cli — command-line predictive analysis over the built-in corpus.
//
//   mpx_cli list
//   mpx_cli analyze <program> [--spec "<ptLTL>"] [--property "<ptLTL>"]...
//           [--seed N] [--schedule greedy|roundrobin|random|observed]
//           [--delivery fifo|shuffle|delay|reverse] [--lattice] [--dot] [--json]
//   mpx_cli explore <program> [--spec "<ptLTL>"]      # ground truth
//
// `--property` is repeatable: all K properties are checked in ONE lattice
// pass (each a SpecAnalysis plugin on the shared engine bus) instead of K
// independent analyses.
//
// Examples:
//   mpx_cli analyze landing --schedule observed --lattice
//   mpx_cli analyze xyz --seed 7
//   mpx_cli analyze naive-mutex --spec "!(c0 = 1 && c1 = 1)"
//   mpx_cli analyze xyz --property "y = 1 -> [.](x = 0)" --property "z != 2"
//   mpx_cli analyze peterson --stats --trace-out peterson.trace.json
//   mpx_cli explore landing
//
// Global flags (any command):
//   --stats               dump the telemetry registry (Prometheus text) at exit
//   --trace-out <file>    write a Chrome trace-event JSON (load in Perfetto)
//   --telemetry-sample N  time every N-th Algorithm A event (rounded up to a
//                         power of two; 0 disables latency sampling; default
//                         64; env MPX_TELEMETRY_SAMPLE is the same knob)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "analysis/atomicity_analysis.hpp"
#include "analysis/engine.hpp"
#include "analysis/mhp_prefilter.hpp"
#include "analysis/predictive_analyzer.hpp"
#include "analysis/campaign.hpp"
#include "analysis/report.hpp"
#include "program/corpus.hpp"
#include "telemetry/export.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace_span.hpp"

using namespace mpx;
namespace corpus = program::corpus;

namespace {

struct Entry {
  std::string description;
  program::Program (*make)();
  const char* (*defaultSpec)();
  std::vector<ThreadId> (*observedSchedule)();
};

program::Program makeLanding() { return corpus::landingController(); }
program::Program makeXyz() { return corpus::xyzProgram(); }
program::Program makeBank() { return corpus::bankAccountRacy(); }
program::Program makePeterson() { return corpus::peterson(); }
program::Program makeNaiveMutex() { return corpus::mutualExclusionNaive(); }
program::Program makeReadersWriter() { return corpus::readersWriter(); }
program::Program makeCas() { return corpus::casCounter(); }
program::Program makeAtomicityDemo() { return corpus::atomicityDemo(); }
program::Program makeLockDisciplined() { return corpus::lockDisciplined(); }
const char* casSpec() { return "counter >= 0"; }
const char* bankSpec() { return "balance >= 0"; }
const char* atomicityDemoSpec() { return "acct <= 100"; }
const char* lockDisciplinedSpec() { return "data >= 0"; }

const std::map<std::string, Entry>& registry() {
  static const std::map<std::string, Entry> r = {
      {"landing",
       {"paper Fig. 1 flight controller", &makeLanding,
        &corpus::landingProperty, &corpus::landingObservedSchedule}},
      {"xyz",
       {"paper Fig. 6 x/y/z program", &makeXyz, &corpus::xyzProperty,
        &corpus::xyzObservedSchedule}},
      {"bank",
       {"racy bank account (lost update)", &makeBank, &bankSpec, nullptr}},
      {"peterson",
       {"Peterson's mutual exclusion", &makePeterson,
        &corpus::mutualExclusionProperty, nullptr}},
      {"naive-mutex",
       {"unsynchronized critical sections", &makeNaiveMutex,
        &corpus::mutualExclusionProperty, nullptr}},
      {"readers-writer",
       {"readers/writer via mutex + condvar", &makeReadersWriter,
        &corpus::readersWriterProperty, nullptr}},
      {"cas-counter",
       {"lock-free CAS counter", &makeCas, &casSpec, nullptr}},
      {"atomicity-demo",
       {"annotated atomic regions, --atomicity finds the witness cycle",
        &makeAtomicityDemo, &atomicityDemoSpec,
        &corpus::atomicityDemoViolatingSchedule}},
      {"lock-disciplined",
       {"lock-disciplined pipeline, --mhp-prefilter prunes the aux suffix",
        &makeLockDisciplined, &lockDisciplinedSpec, nullptr}},
  };
  return r;
}

int listPrograms() {
  std::printf("available programs:\n");
  for (const auto& [name, entry] : registry()) {
    std::printf("  %-12s %s   (default spec: %s)\n", name.c_str(),
                entry.description.c_str(), entry.defaultSpec());
  }
  return 0;
}

std::optional<std::string> argValue(int argc, char** argv, const char* flag) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return std::string(argv[i + 1]);
  }
  return std::nullopt;
}

bool hasFlag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Every occurrence of a repeatable flag's value, in command-line order.
std::vector<std::string> argValues(int argc, char** argv, const char* flag) {
  std::vector<std::string> values;
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) values.emplace_back(argv[i + 1]);
  }
  return values;
}

int analyze(const std::string& name, int argc, char** argv) {
  const auto it = registry().find(name);
  if (it == registry().end()) {
    std::fprintf(stderr, "unknown program '%s' (try: mpx_cli list)\n",
                 name.c_str());
    return 2;
  }
  const Entry& entry = it->second;
  const program::Program prog = entry.make();

  analysis::AnalyzerConfig config;
  config.spec = argValue(argc, argv, "--spec").value_or(entry.defaultSpec());
  const std::string delivery =
      argValue(argc, argv, "--delivery").value_or("fifo");
  if (delivery == "shuffle") config.delivery = trace::DeliveryPolicy::kShuffle;
  else if (delivery == "delay")
    config.delivery = trace::DeliveryPolicy::kBoundedDelay;
  else if (delivery == "reverse")
    config.delivery = trace::DeliveryPolicy::kReverse;
  const bool wantLattice = hasFlag(argc, argv, "--lattice");
  if (wantLattice) config.lattice.retention = observer::Retention::kFull;
  // --jobs N: expand lattice levels on N pool workers (1 = serial,
  // 0 = one per hardware thread).  Verdicts are identical either way.
  config.lattice.parallel.jobs =
      std::stoull(argValue(argc, argv, "--jobs").value_or("1"));
  // --memory-budget BYTES / --max-frontier N: bound the accounted working
  // set / per-level width.  When either bound trips, the engine degrades
  // (sampled frontier, then observed-path-only) instead of crashing, the
  // report is stamped BOUNDED, and a clean run exits 3 instead of 0.
  config.lattice.memoryBudgetBytes = std::stoull(
      argValue(argc, argv, "--memory-budget").value_or("0"));
  config.lattice.maxFrontier =
      std::stoull(argValue(argc, argv, "--max-frontier").value_or("0"));

  const std::uint64_t seed =
      std::stoull(argValue(argc, argv, "--seed").value_or("0"));
  const std::string scheduleKind =
      argValue(argc, argv, "--schedule").value_or("random");

  std::unique_ptr<program::Scheduler> sched;
  if (scheduleKind == "greedy") {
    sched = std::make_unique<program::GreedyScheduler>();
  } else if (scheduleKind == "roundrobin") {
    sched = std::make_unique<program::RoundRobinScheduler>(1);
  } else if (scheduleKind == "observed") {
    if (entry.observedSchedule == nullptr) {
      std::fprintf(stderr, "no canonical observed schedule for '%s'\n",
                   name.c_str());
      return 2;
    }
    sched = std::make_unique<program::FixedScheduler>(entry.observedSchedule());
  } else {
    sched = std::make_unique<program::RandomScheduler>(seed);
  }

  // Repeatable --property: K properties, ONE instrumented execution, ONE
  // lattice pass (each property a SpecAnalysis plugin on the engine bus).
  // --atomicity / --mhp-prefilter add the ISSUE-10 analysis plugins to the
  // same pass (and alone select the engine path with zero specs);
  // --mhp-prefilter additionally turns on the engine's union-space pruning.
  const std::vector<std::string> props = argValues(argc, argv, "--property");
  const bool wantAtomicity = hasFlag(argc, argv, "--atomicity");
  const bool wantMhp = hasFlag(argc, argv, "--mhp-prefilter");
  if (!props.empty() || wantAtomicity || wantMhp) {
    analysis::EngineConfig ec;
    ec.specs = props;
    // Repeatable --track: variables tracked beyond the specs' union —
    // the prefilter's prunable candidates (spec variables never prune).
    ec.extraTrackedVars = argValues(argc, argv, "--track");
    ec.delivery = config.delivery;
    ec.lattice = config.lattice;
    ec.mhpPrefilter = wantMhp;
    analysis::Engine engine(prog, ec);

    std::vector<std::unique_ptr<observer::Analysis>> extraOwned;
    if (wantMhp) {
      extraOwned.push_back(
          std::make_unique<analysis::MhpPrefilter>(&prog.vars));
    }
    if (wantAtomicity) {
      extraOwned.push_back(
          std::make_unique<analysis::AtomicityAnalysis>(&prog.vars));
    }
    std::vector<observer::Analysis*> extras;
    for (const auto& p : extraOwned) extras.push_back(p.get());

    std::printf("program:  %s — %s\n", name.c_str(),
                entry.description.c_str());
    std::printf("properties (%zu, one pass):\n", props.size());
    for (const auto& p : props) std::printf("  %s\n", p.c_str());
    std::printf("tracked variables:");
    for (const auto& v : engine.trackedVariables()) {
      std::printf(" %s", v.c_str());
    }
    std::printf("\nschedule: %s (seed %llu), delivery: %s\n\n",
                scheduleKind.c_str(), static_cast<unsigned long long>(seed),
                delivery.c_str());

    program::Executor ex(prog, *sched);
    const analysis::EngineResult r = engine.run(ex.run(), extras);
    std::printf("events instrumented: %llu, messages to observer: %llu\n",
                static_cast<unsigned long long>(r.eventsInstrumented),
                static_cast<unsigned long long>(r.messagesEmitted));
    std::printf("lattice: %zu nodes across %zu levels, %llu consistent runs\n",
                r.latticeStats.totalNodes, r.latticeStats.levels,
                static_cast<unsigned long long>(r.latticeStats.pathCount));
    if (wantMhp) {
      std::printf("union variables expanded: %zu of %zu",
                  r.unionVarsExpanded, engine.trackedVariables().size());
      if (!r.prunedVars.empty()) {
        std::printf(" (pruned:");
        for (const auto& v : r.prunedVars) std::printf(" %s", v.c_str());
        std::printf(")");
      }
      std::printf("\n");
    }
    std::printf("\n");
    std::printf("%s", analysis::renderAnalysisReports(r.reports).c_str());
    if (r.latticeStats.bounded()) {
      std::printf("coverage: BOUNDED(%s, dropped_nodes=%llu) — degraded to "
                  "'%s' at level %llu\n",
                  observer::toString(r.latticeStats.boundReason),
                  static_cast<unsigned long long>(
                      r.latticeStats.droppedNodes +
                      r.latticeStats.beamPrunedNodes),
                  observer::toString(r.latticeStats.degradation),
                  static_cast<unsigned long long>(
                      r.latticeStats.degradedAtLevel));
    }
    if (hasFlag(argc, argv, "--dot")) {
      std::printf("=== causality graph (graphviz) ===\n%s",
                  r.causality.renderDot(prog.vars).c_str());
    }
    return analysis::exitCodeFor(true, r.totalFindings(),
                                 r.latticeStats.bounded());
  }

  analysis::PredictiveAnalyzer analyzer(prog, config);
  std::printf("program:  %s — %s\n", name.c_str(), entry.description.c_str());
  std::printf("property: %s\n", config.spec.c_str());
  std::printf("relevant variables:");
  for (const auto& v : analyzer.relevantVariables()) {
    std::printf(" %s", v.c_str());
  }
  std::printf("\nschedule: %s (seed %llu), delivery: %s\n\n",
              scheduleKind.c_str(), static_cast<unsigned long long>(seed),
              delivery.c_str());

  const analysis::AnalysisResult r = analyzer.analyze(*sched);
  std::printf("events instrumented: %llu, messages to observer: %llu\n",
              static_cast<unsigned long long>(r.eventsInstrumented),
              static_cast<unsigned long long>(r.messagesEmitted));
  std::printf("observed run violates:  %s\n",
              r.observedRunViolates() ? "YES" : "no");
  std::printf("lattice: %zu nodes across %zu levels, %llu consistent runs\n",
              r.latticeStats.totalNodes, r.latticeStats.levels,
              static_cast<unsigned long long>(r.latticeStats.pathCount));
  std::printf("predicted violations:   %zu\n\n",
              r.predictedViolations.size());
  for (const auto& v : r.predictedViolations) {
    std::printf("%s\n", r.describe(v).c_str());
  }

  if (wantLattice) {
    observer::ComputationLattice lattice(r.causality, r.space,
                                         config.lattice);
    lattice.build();
    std::printf("=== lattice ===\n%s", lattice.render().c_str());
  }
  if (hasFlag(argc, argv, "--dot")) {
    std::printf("=== causality graph (graphviz) ===\n%s",
                r.causality.renderDot(prog.vars).c_str());
  }
  if (hasFlag(argc, argv, "--json")) {
    analysis::ReportOptions ropts;
    ropts.includeMetrics = hasFlag(argc, argv, "--stats");
    std::printf("%s\n", analysis::toJson(r, ropts).c_str());
  }
  if (r.latticeStats.bounded()) {
    std::printf("coverage: BOUNDED(%s, dropped_nodes=%llu)\n",
                observer::toString(r.latticeStats.boundReason),
                static_cast<unsigned long long>(
                    r.latticeStats.droppedNodes +
                    r.latticeStats.beamPrunedNodes));
  }
  return analysis::exitCodeFor(true, r.predictedViolations.size(),
                               r.latticeStats.bounded());
}

int campaign(const std::string& name, int argc, char** argv) {
  const auto it = registry().find(name);
  if (it == registry().end()) {
    std::fprintf(stderr, "unknown program '%s'\n", name.c_str());
    return 2;
  }
  const program::Program prog = it->second.make();
  analysis::CampaignOptions opts;
  opts.trials =
      std::stoull(argValue(argc, argv, "--trials").value_or("100"));
  opts.withGroundTruth = hasFlag(argc, argv, "--ground-truth");

  // Repeatable --property: every trial checks all K properties in one pass.
  const std::vector<std::string> props = argValues(argc, argv, "--property");
  if (!props.empty()) {
    const auto r = analysis::runCampaign(prog, props, opts);
    std::printf("program: %s\n%s\n", name.c_str(), r.summary().c_str());
    std::size_t predicted = 0;
    for (const std::size_t n : r.predictedDetections) predicted += n;
    return analysis::exitCodeFor(true, predicted);
  }

  const std::string spec =
      argValue(argc, argv, "--spec").value_or(it->second.defaultSpec());
  const auto r = analysis::runCampaign(prog, spec, opts);
  std::printf("program: %s, property: %s\n%s\n", name.c_str(), spec.c_str(),
              r.summary().c_str());
  return analysis::exitCodeFor(true, r.predictedDetections);
}

int explore(const std::string& name, int argc, char** argv) {
  const auto it = registry().find(name);
  if (it == registry().end()) {
    std::fprintf(stderr, "unknown program '%s'\n", name.c_str());
    return 2;
  }
  const program::Program prog = it->second.make();
  const std::string spec =
      argValue(argc, argv, "--spec").value_or(it->second.defaultSpec());
  const auto truth = analysis::groundTruth(prog, spec);
  std::printf("program: %s, property: %s\n", name.c_str(), spec.c_str());
  std::printf("schedules explored: %zu%s\n", truth.totalExecutions,
              truth.truncated ? " (truncated)" : "");
  std::printf("violating: %zu, deadlocked: %zu\n", truth.violatingExecutions,
              truth.deadlockedExecutions);
  return truth.violatingExecutions > 0 ? 1 : 0;
}

/// Post-run observability output: --stats dumps the registry as Prometheus
/// text on stdout; --trace-out writes the recorded spans as Chrome
/// trace-event JSON.  Returns the command's exit code unchanged unless the
/// trace file cannot be written.
int finish(int rc, int argc, char** argv) {
  const auto traceOut = argValue(argc, argv, "--trace-out");
  if (traceOut) {
    std::ofstream out(*traceOut);
    if (!out) {
      std::fprintf(stderr, "cannot write trace file '%s'\n",
                   traceOut->c_str());
      return 2;
    }
    out << telemetry::TraceRecorder::global().toChromeTraceJson();
    std::fprintf(stderr, "wrote %zu trace events to %s\n",
                 telemetry::TraceRecorder::global().spanCount(),
                 traceOut->c_str());
  }
  if (hasFlag(argc, argv, "--stats")) {
    std::printf("=== telemetry ===\n%s",
                telemetry::toPrometheusText(
                    telemetry::registry().snapshot())
                    .c_str());
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: mpx_cli list\n"
                 "       mpx_cli analyze <program> [--spec S]"
                 " [--property S]... [--seed N]\n"
                 "               [--schedule greedy|roundrobin|random|observed]\n"
                 "               [--delivery fifo|shuffle|delay|reverse]"
                 " [--lattice] [--dot] [--json] [--jobs N]\n"
                 "               [--memory-budget BYTES] [--max-frontier N]"
                 " [--atomicity] [--mhp-prefilter] [--track VAR]...\n"
                 "       mpx_cli explore <program> [--spec S]\n"
                 "       mpx_cli campaign <program> [--spec S]"
                 " [--property S]... [--trials N]"
                 " [--ground-truth]\n"
                 "global flags: [--stats] [--trace-out <file>.json]"
                 " [--telemetry-sample N]\n");
    return 2;
  }
  if (argValue(argc, argv, "--trace-out")) {
    telemetry::TraceRecorder::global().setEnabled(true);
  }
  if (const auto sample = argValue(argc, argv, "--telemetry-sample")) {
    telemetry::setLatencySampleEvery(std::stoull(*sample));
  }
  const std::string cmd = argv[1];
  if (cmd == "list") return listPrograms();
  if (cmd == "analyze" && argc >= 3) {
    return finish(analyze(argv[2], argc, argv), argc, argv);
  }
  if (cmd == "explore" && argc >= 3) {
    return finish(explore(argv[2], argc, argv), argc, argv);
  }
  if (cmd == "campaign" && argc >= 3) {
    return finish(campaign(argv[2], argc, argv), argc, argv);
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}
