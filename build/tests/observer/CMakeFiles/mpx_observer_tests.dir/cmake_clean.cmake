file(REMOVE_RECURSE
  "CMakeFiles/mpx_observer_tests.dir/beam_test.cpp.o"
  "CMakeFiles/mpx_observer_tests.dir/beam_test.cpp.o.d"
  "CMakeFiles/mpx_observer_tests.dir/causality_test.cpp.o"
  "CMakeFiles/mpx_observer_tests.dir/causality_test.cpp.o.d"
  "CMakeFiles/mpx_observer_tests.dir/global_state_test.cpp.o"
  "CMakeFiles/mpx_observer_tests.dir/global_state_test.cpp.o.d"
  "CMakeFiles/mpx_observer_tests.dir/lattice_test.cpp.o"
  "CMakeFiles/mpx_observer_tests.dir/lattice_test.cpp.o.d"
  "CMakeFiles/mpx_observer_tests.dir/online_test.cpp.o"
  "CMakeFiles/mpx_observer_tests.dir/online_test.cpp.o.d"
  "CMakeFiles/mpx_observer_tests.dir/run_enumerator_test.cpp.o"
  "CMakeFiles/mpx_observer_tests.dir/run_enumerator_test.cpp.o.d"
  "mpx_observer_tests"
  "mpx_observer_tests.pdb"
  "mpx_observer_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpx_observer_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
