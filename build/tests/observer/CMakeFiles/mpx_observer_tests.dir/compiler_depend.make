# Empty compiler generated dependencies file for mpx_observer_tests.
# This may be replaced when dependencies are built.
