# CMake generated Testfile for 
# Source directory: /root/repo/tests/observer
# Build directory: /root/repo/build/tests/observer
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/observer/mpx_observer_tests[1]_include.cmake")
