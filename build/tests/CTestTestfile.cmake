# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("vc")
subdirs("trace")
subdirs("program")
subdirs("core")
subdirs("observer")
subdirs("logic")
subdirs("detect")
subdirs("analysis")
subdirs("runtime")
