
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/vc/vector_clock_test.cpp" "tests/vc/CMakeFiles/mpx_vc_tests.dir/vector_clock_test.cpp.o" "gcc" "tests/vc/CMakeFiles/mpx_vc_tests.dir/vector_clock_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/mpx_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/mpx_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/mpx_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/observer/CMakeFiles/mpx_observer.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mpx_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mpx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/mpx_program.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mpx_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/vc/CMakeFiles/mpx_vc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
