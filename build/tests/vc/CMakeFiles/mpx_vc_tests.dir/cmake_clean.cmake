file(REMOVE_RECURSE
  "CMakeFiles/mpx_vc_tests.dir/vector_clock_test.cpp.o"
  "CMakeFiles/mpx_vc_tests.dir/vector_clock_test.cpp.o.d"
  "mpx_vc_tests"
  "mpx_vc_tests.pdb"
  "mpx_vc_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpx_vc_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
