# Empty compiler generated dependencies file for mpx_vc_tests.
# This may be replaced when dependencies are built.
