# CMake generated Testfile for 
# Source directory: /root/repo/tests/vc
# Build directory: /root/repo/build/tests/vc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/vc/mpx_vc_tests[1]_include.cmake")
