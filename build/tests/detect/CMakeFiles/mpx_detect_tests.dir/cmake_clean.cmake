file(REMOVE_RECURSE
  "CMakeFiles/mpx_detect_tests.dir/deadlock_test.cpp.o"
  "CMakeFiles/mpx_detect_tests.dir/deadlock_test.cpp.o.d"
  "CMakeFiles/mpx_detect_tests.dir/race_test.cpp.o"
  "CMakeFiles/mpx_detect_tests.dir/race_test.cpp.o.d"
  "mpx_detect_tests"
  "mpx_detect_tests.pdb"
  "mpx_detect_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpx_detect_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
