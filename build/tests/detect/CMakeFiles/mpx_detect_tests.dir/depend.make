# Empty dependencies file for mpx_detect_tests.
# This may be replaced when dependencies are built.
