file(REMOVE_RECURSE
  "CMakeFiles/mpx_logic_tests.dir/fsm_test.cpp.o"
  "CMakeFiles/mpx_logic_tests.dir/fsm_test.cpp.o.d"
  "CMakeFiles/mpx_logic_tests.dir/lasso_test.cpp.o"
  "CMakeFiles/mpx_logic_tests.dir/lasso_test.cpp.o.d"
  "CMakeFiles/mpx_logic_tests.dir/monitor_property_test.cpp.o"
  "CMakeFiles/mpx_logic_tests.dir/monitor_property_test.cpp.o.d"
  "CMakeFiles/mpx_logic_tests.dir/monitor_test.cpp.o"
  "CMakeFiles/mpx_logic_tests.dir/monitor_test.cpp.o.d"
  "CMakeFiles/mpx_logic_tests.dir/parser_test.cpp.o"
  "CMakeFiles/mpx_logic_tests.dir/parser_test.cpp.o.d"
  "CMakeFiles/mpx_logic_tests.dir/patterns_test.cpp.o"
  "CMakeFiles/mpx_logic_tests.dir/patterns_test.cpp.o.d"
  "CMakeFiles/mpx_logic_tests.dir/product_monitor_test.cpp.o"
  "CMakeFiles/mpx_logic_tests.dir/product_monitor_test.cpp.o.d"
  "CMakeFiles/mpx_logic_tests.dir/state_expr_test.cpp.o"
  "CMakeFiles/mpx_logic_tests.dir/state_expr_test.cpp.o.d"
  "mpx_logic_tests"
  "mpx_logic_tests.pdb"
  "mpx_logic_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpx_logic_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
