# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mpx_logic_tests.
