# Empty compiler generated dependencies file for mpx_logic_tests.
# This may be replaced when dependencies are built.
