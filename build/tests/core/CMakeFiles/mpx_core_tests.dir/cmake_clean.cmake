file(REMOVE_RECURSE
  "CMakeFiles/mpx_core_tests.dir/distributed_interpretation_test.cpp.o"
  "CMakeFiles/mpx_core_tests.dir/distributed_interpretation_test.cpp.o.d"
  "CMakeFiles/mpx_core_tests.dir/instrumentor_test.cpp.o"
  "CMakeFiles/mpx_core_tests.dir/instrumentor_test.cpp.o.d"
  "CMakeFiles/mpx_core_tests.dir/lamport_test.cpp.o"
  "CMakeFiles/mpx_core_tests.dir/lamport_test.cpp.o.d"
  "CMakeFiles/mpx_core_tests.dir/reference_test.cpp.o"
  "CMakeFiles/mpx_core_tests.dir/reference_test.cpp.o.d"
  "CMakeFiles/mpx_core_tests.dir/requirements_test.cpp.o"
  "CMakeFiles/mpx_core_tests.dir/requirements_test.cpp.o.d"
  "CMakeFiles/mpx_core_tests.dir/theorem3_test.cpp.o"
  "CMakeFiles/mpx_core_tests.dir/theorem3_test.cpp.o.d"
  "mpx_core_tests"
  "mpx_core_tests.pdb"
  "mpx_core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpx_core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
