# Empty dependencies file for mpx_core_tests.
# This may be replaced when dependencies are built.
