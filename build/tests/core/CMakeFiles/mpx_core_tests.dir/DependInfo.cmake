
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/distributed_interpretation_test.cpp" "tests/core/CMakeFiles/mpx_core_tests.dir/distributed_interpretation_test.cpp.o" "gcc" "tests/core/CMakeFiles/mpx_core_tests.dir/distributed_interpretation_test.cpp.o.d"
  "/root/repo/tests/core/instrumentor_test.cpp" "tests/core/CMakeFiles/mpx_core_tests.dir/instrumentor_test.cpp.o" "gcc" "tests/core/CMakeFiles/mpx_core_tests.dir/instrumentor_test.cpp.o.d"
  "/root/repo/tests/core/lamport_test.cpp" "tests/core/CMakeFiles/mpx_core_tests.dir/lamport_test.cpp.o" "gcc" "tests/core/CMakeFiles/mpx_core_tests.dir/lamport_test.cpp.o.d"
  "/root/repo/tests/core/reference_test.cpp" "tests/core/CMakeFiles/mpx_core_tests.dir/reference_test.cpp.o" "gcc" "tests/core/CMakeFiles/mpx_core_tests.dir/reference_test.cpp.o.d"
  "/root/repo/tests/core/requirements_test.cpp" "tests/core/CMakeFiles/mpx_core_tests.dir/requirements_test.cpp.o" "gcc" "tests/core/CMakeFiles/mpx_core_tests.dir/requirements_test.cpp.o.d"
  "/root/repo/tests/core/theorem3_test.cpp" "tests/core/CMakeFiles/mpx_core_tests.dir/theorem3_test.cpp.o" "gcc" "tests/core/CMakeFiles/mpx_core_tests.dir/theorem3_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/mpx_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/mpx_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/mpx_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/observer/CMakeFiles/mpx_observer.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mpx_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mpx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/mpx_program.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mpx_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/vc/CMakeFiles/mpx_vc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
