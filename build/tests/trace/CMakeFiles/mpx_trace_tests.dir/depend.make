# Empty dependencies file for mpx_trace_tests.
# This may be replaced when dependencies are built.
