file(REMOVE_RECURSE
  "CMakeFiles/mpx_trace_tests.dir/channel_test.cpp.o"
  "CMakeFiles/mpx_trace_tests.dir/channel_test.cpp.o.d"
  "CMakeFiles/mpx_trace_tests.dir/codec_test.cpp.o"
  "CMakeFiles/mpx_trace_tests.dir/codec_test.cpp.o.d"
  "CMakeFiles/mpx_trace_tests.dir/event_test.cpp.o"
  "CMakeFiles/mpx_trace_tests.dir/event_test.cpp.o.d"
  "CMakeFiles/mpx_trace_tests.dir/var_table_test.cpp.o"
  "CMakeFiles/mpx_trace_tests.dir/var_table_test.cpp.o.d"
  "mpx_trace_tests"
  "mpx_trace_tests.pdb"
  "mpx_trace_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpx_trace_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
