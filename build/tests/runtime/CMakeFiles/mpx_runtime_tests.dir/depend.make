# Empty dependencies file for mpx_runtime_tests.
# This may be replaced when dependencies are built.
