file(REMOVE_RECURSE
  "CMakeFiles/mpx_runtime_tests.dir/runtime_test.cpp.o"
  "CMakeFiles/mpx_runtime_tests.dir/runtime_test.cpp.o.d"
  "mpx_runtime_tests"
  "mpx_runtime_tests.pdb"
  "mpx_runtime_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpx_runtime_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
