# Empty dependencies file for mpx_analysis_tests.
# This may be replaced when dependencies are built.
