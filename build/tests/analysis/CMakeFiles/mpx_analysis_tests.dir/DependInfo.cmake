
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/campaign_test.cpp" "tests/analysis/CMakeFiles/mpx_analysis_tests.dir/campaign_test.cpp.o" "gcc" "tests/analysis/CMakeFiles/mpx_analysis_tests.dir/campaign_test.cpp.o.d"
  "/root/repo/tests/analysis/differential_test.cpp" "tests/analysis/CMakeFiles/mpx_analysis_tests.dir/differential_test.cpp.o" "gcc" "tests/analysis/CMakeFiles/mpx_analysis_tests.dir/differential_test.cpp.o.d"
  "/root/repo/tests/analysis/edge_cases_test.cpp" "tests/analysis/CMakeFiles/mpx_analysis_tests.dir/edge_cases_test.cpp.o" "gcc" "tests/analysis/CMakeFiles/mpx_analysis_tests.dir/edge_cases_test.cpp.o.d"
  "/root/repo/tests/analysis/landing_test.cpp" "tests/analysis/CMakeFiles/mpx_analysis_tests.dir/landing_test.cpp.o" "gcc" "tests/analysis/CMakeFiles/mpx_analysis_tests.dir/landing_test.cpp.o.d"
  "/root/repo/tests/analysis/liveness_test.cpp" "tests/analysis/CMakeFiles/mpx_analysis_tests.dir/liveness_test.cpp.o" "gcc" "tests/analysis/CMakeFiles/mpx_analysis_tests.dir/liveness_test.cpp.o.d"
  "/root/repo/tests/analysis/peterson_test.cpp" "tests/analysis/CMakeFiles/mpx_analysis_tests.dir/peterson_test.cpp.o" "gcc" "tests/analysis/CMakeFiles/mpx_analysis_tests.dir/peterson_test.cpp.o.d"
  "/root/repo/tests/analysis/pipeline_test.cpp" "tests/analysis/CMakeFiles/mpx_analysis_tests.dir/pipeline_test.cpp.o" "gcc" "tests/analysis/CMakeFiles/mpx_analysis_tests.dir/pipeline_test.cpp.o.d"
  "/root/repo/tests/analysis/prediction_soundness_test.cpp" "tests/analysis/CMakeFiles/mpx_analysis_tests.dir/prediction_soundness_test.cpp.o" "gcc" "tests/analysis/CMakeFiles/mpx_analysis_tests.dir/prediction_soundness_test.cpp.o.d"
  "/root/repo/tests/analysis/report_test.cpp" "tests/analysis/CMakeFiles/mpx_analysis_tests.dir/report_test.cpp.o" "gcc" "tests/analysis/CMakeFiles/mpx_analysis_tests.dir/report_test.cpp.o.d"
  "/root/repo/tests/analysis/xyz_test.cpp" "tests/analysis/CMakeFiles/mpx_analysis_tests.dir/xyz_test.cpp.o" "gcc" "tests/analysis/CMakeFiles/mpx_analysis_tests.dir/xyz_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/mpx_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/mpx_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/mpx_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/observer/CMakeFiles/mpx_observer.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mpx_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mpx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/mpx_program.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mpx_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/vc/CMakeFiles/mpx_vc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
