file(REMOVE_RECURSE
  "CMakeFiles/mpx_analysis_tests.dir/campaign_test.cpp.o"
  "CMakeFiles/mpx_analysis_tests.dir/campaign_test.cpp.o.d"
  "CMakeFiles/mpx_analysis_tests.dir/differential_test.cpp.o"
  "CMakeFiles/mpx_analysis_tests.dir/differential_test.cpp.o.d"
  "CMakeFiles/mpx_analysis_tests.dir/edge_cases_test.cpp.o"
  "CMakeFiles/mpx_analysis_tests.dir/edge_cases_test.cpp.o.d"
  "CMakeFiles/mpx_analysis_tests.dir/landing_test.cpp.o"
  "CMakeFiles/mpx_analysis_tests.dir/landing_test.cpp.o.d"
  "CMakeFiles/mpx_analysis_tests.dir/liveness_test.cpp.o"
  "CMakeFiles/mpx_analysis_tests.dir/liveness_test.cpp.o.d"
  "CMakeFiles/mpx_analysis_tests.dir/peterson_test.cpp.o"
  "CMakeFiles/mpx_analysis_tests.dir/peterson_test.cpp.o.d"
  "CMakeFiles/mpx_analysis_tests.dir/pipeline_test.cpp.o"
  "CMakeFiles/mpx_analysis_tests.dir/pipeline_test.cpp.o.d"
  "CMakeFiles/mpx_analysis_tests.dir/prediction_soundness_test.cpp.o"
  "CMakeFiles/mpx_analysis_tests.dir/prediction_soundness_test.cpp.o.d"
  "CMakeFiles/mpx_analysis_tests.dir/report_test.cpp.o"
  "CMakeFiles/mpx_analysis_tests.dir/report_test.cpp.o.d"
  "CMakeFiles/mpx_analysis_tests.dir/xyz_test.cpp.o"
  "CMakeFiles/mpx_analysis_tests.dir/xyz_test.cpp.o.d"
  "mpx_analysis_tests"
  "mpx_analysis_tests.pdb"
  "mpx_analysis_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpx_analysis_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
