# Empty dependencies file for mpx_program_tests.
# This may be replaced when dependencies are built.
