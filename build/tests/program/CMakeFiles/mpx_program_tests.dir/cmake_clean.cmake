file(REMOVE_RECURSE
  "CMakeFiles/mpx_program_tests.dir/builder_test.cpp.o"
  "CMakeFiles/mpx_program_tests.dir/builder_test.cpp.o.d"
  "CMakeFiles/mpx_program_tests.dir/corpus_test.cpp.o"
  "CMakeFiles/mpx_program_tests.dir/corpus_test.cpp.o.d"
  "CMakeFiles/mpx_program_tests.dir/explorer_test.cpp.o"
  "CMakeFiles/mpx_program_tests.dir/explorer_test.cpp.o.d"
  "CMakeFiles/mpx_program_tests.dir/expr_test.cpp.o"
  "CMakeFiles/mpx_program_tests.dir/expr_test.cpp.o.d"
  "CMakeFiles/mpx_program_tests.dir/interpreter_test.cpp.o"
  "CMakeFiles/mpx_program_tests.dir/interpreter_test.cpp.o.d"
  "CMakeFiles/mpx_program_tests.dir/scheduler_test.cpp.o"
  "CMakeFiles/mpx_program_tests.dir/scheduler_test.cpp.o.d"
  "mpx_program_tests"
  "mpx_program_tests.pdb"
  "mpx_program_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpx_program_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
