
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/program/builder_test.cpp" "tests/program/CMakeFiles/mpx_program_tests.dir/builder_test.cpp.o" "gcc" "tests/program/CMakeFiles/mpx_program_tests.dir/builder_test.cpp.o.d"
  "/root/repo/tests/program/corpus_test.cpp" "tests/program/CMakeFiles/mpx_program_tests.dir/corpus_test.cpp.o" "gcc" "tests/program/CMakeFiles/mpx_program_tests.dir/corpus_test.cpp.o.d"
  "/root/repo/tests/program/explorer_test.cpp" "tests/program/CMakeFiles/mpx_program_tests.dir/explorer_test.cpp.o" "gcc" "tests/program/CMakeFiles/mpx_program_tests.dir/explorer_test.cpp.o.d"
  "/root/repo/tests/program/expr_test.cpp" "tests/program/CMakeFiles/mpx_program_tests.dir/expr_test.cpp.o" "gcc" "tests/program/CMakeFiles/mpx_program_tests.dir/expr_test.cpp.o.d"
  "/root/repo/tests/program/interpreter_test.cpp" "tests/program/CMakeFiles/mpx_program_tests.dir/interpreter_test.cpp.o" "gcc" "tests/program/CMakeFiles/mpx_program_tests.dir/interpreter_test.cpp.o.d"
  "/root/repo/tests/program/scheduler_test.cpp" "tests/program/CMakeFiles/mpx_program_tests.dir/scheduler_test.cpp.o" "gcc" "tests/program/CMakeFiles/mpx_program_tests.dir/scheduler_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/mpx_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/mpx_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/mpx_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/observer/CMakeFiles/mpx_observer.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/mpx_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mpx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/mpx_program.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mpx_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/vc/CMakeFiles/mpx_vc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
