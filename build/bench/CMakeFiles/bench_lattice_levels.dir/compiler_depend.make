# Empty compiler generated dependencies file for bench_lattice_levels.
# This may be replaced when dependencies are built.
