file(REMOVE_RECURSE
  "CMakeFiles/bench_lattice_levels.dir/bench_lattice_levels.cpp.o"
  "CMakeFiles/bench_lattice_levels.dir/bench_lattice_levels.cpp.o.d"
  "bench_lattice_levels"
  "bench_lattice_levels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lattice_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
