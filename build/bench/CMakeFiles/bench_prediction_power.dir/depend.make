# Empty dependencies file for bench_prediction_power.
# This may be replaced when dependencies are built.
