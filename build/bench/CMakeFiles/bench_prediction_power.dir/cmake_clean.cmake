file(REMOVE_RECURSE
  "CMakeFiles/bench_prediction_power.dir/bench_prediction_power.cpp.o"
  "CMakeFiles/bench_prediction_power.dir/bench_prediction_power.cpp.o.d"
  "bench_prediction_power"
  "bench_prediction_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prediction_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
