# Empty compiler generated dependencies file for bench_fig6_lattice.
# This may be replaced when dependencies are built.
