file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_lattice.dir/bench_fig6_lattice.cpp.o"
  "CMakeFiles/bench_fig6_lattice.dir/bench_fig6_lattice.cpp.o.d"
  "bench_fig6_lattice"
  "bench_fig6_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
