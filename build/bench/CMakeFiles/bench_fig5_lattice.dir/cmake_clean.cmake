file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_lattice.dir/bench_fig5_lattice.cpp.o"
  "CMakeFiles/bench_fig5_lattice.dir/bench_fig5_lattice.cpp.o.d"
  "bench_fig5_lattice"
  "bench_fig5_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
