# Empty dependencies file for bench_algorithm_a.
# This may be replaced when dependencies are built.
