file(REMOVE_RECURSE
  "CMakeFiles/bench_algorithm_a.dir/bench_algorithm_a.cpp.o"
  "CMakeFiles/bench_algorithm_a.dir/bench_algorithm_a.cpp.o.d"
  "bench_algorithm_a"
  "bench_algorithm_a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_algorithm_a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
