file(REMOVE_RECURSE
  "CMakeFiles/bench_race_detection.dir/bench_race_detection.cpp.o"
  "CMakeFiles/bench_race_detection.dir/bench_race_detection.cpp.o.d"
  "bench_race_detection"
  "bench_race_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_race_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
