file(REMOVE_RECURSE
  "CMakeFiles/bench_lattice_vs_enumeration.dir/bench_lattice_vs_enumeration.cpp.o"
  "CMakeFiles/bench_lattice_vs_enumeration.dir/bench_lattice_vs_enumeration.cpp.o.d"
  "bench_lattice_vs_enumeration"
  "bench_lattice_vs_enumeration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lattice_vs_enumeration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
