# Empty dependencies file for bench_lattice_vs_enumeration.
# This may be replaced when dependencies are built.
