# Empty dependencies file for bench_channel_codec.
# This may be replaced when dependencies are built.
