file(REMOVE_RECURSE
  "CMakeFiles/bench_channel_codec.dir/bench_channel_codec.cpp.o"
  "CMakeFiles/bench_channel_codec.dir/bench_channel_codec.cpp.o.d"
  "bench_channel_codec"
  "bench_channel_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_channel_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
