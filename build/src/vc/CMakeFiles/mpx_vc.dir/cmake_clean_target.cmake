file(REMOVE_RECURSE
  "libmpx_vc.a"
)
