file(REMOVE_RECURSE
  "CMakeFiles/mpx_vc.dir/vector_clock.cpp.o"
  "CMakeFiles/mpx_vc.dir/vector_clock.cpp.o.d"
  "libmpx_vc.a"
  "libmpx_vc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpx_vc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
