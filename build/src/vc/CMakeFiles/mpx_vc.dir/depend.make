# Empty dependencies file for mpx_vc.
# This may be replaced when dependencies are built.
