# Empty compiler generated dependencies file for mpx_runtime.
# This may be replaced when dependencies are built.
