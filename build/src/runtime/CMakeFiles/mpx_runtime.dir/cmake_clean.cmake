file(REMOVE_RECURSE
  "CMakeFiles/mpx_runtime.dir/runtime.cpp.o"
  "CMakeFiles/mpx_runtime.dir/runtime.cpp.o.d"
  "libmpx_runtime.a"
  "libmpx_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpx_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
