file(REMOVE_RECURSE
  "libmpx_runtime.a"
)
