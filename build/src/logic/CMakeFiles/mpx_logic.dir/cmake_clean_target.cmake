file(REMOVE_RECURSE
  "libmpx_logic.a"
)
