# Empty dependencies file for mpx_logic.
# This may be replaced when dependencies are built.
