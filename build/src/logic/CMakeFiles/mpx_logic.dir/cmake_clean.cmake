file(REMOVE_RECURSE
  "CMakeFiles/mpx_logic.dir/fsm.cpp.o"
  "CMakeFiles/mpx_logic.dir/fsm.cpp.o.d"
  "CMakeFiles/mpx_logic.dir/lasso.cpp.o"
  "CMakeFiles/mpx_logic.dir/lasso.cpp.o.d"
  "CMakeFiles/mpx_logic.dir/monitor.cpp.o"
  "CMakeFiles/mpx_logic.dir/monitor.cpp.o.d"
  "CMakeFiles/mpx_logic.dir/parser.cpp.o"
  "CMakeFiles/mpx_logic.dir/parser.cpp.o.d"
  "CMakeFiles/mpx_logic.dir/product_monitor.cpp.o"
  "CMakeFiles/mpx_logic.dir/product_monitor.cpp.o.d"
  "CMakeFiles/mpx_logic.dir/ptltl.cpp.o"
  "CMakeFiles/mpx_logic.dir/ptltl.cpp.o.d"
  "CMakeFiles/mpx_logic.dir/state_expr.cpp.o"
  "CMakeFiles/mpx_logic.dir/state_expr.cpp.o.d"
  "libmpx_logic.a"
  "libmpx_logic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpx_logic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
