
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/logic/fsm.cpp" "src/logic/CMakeFiles/mpx_logic.dir/fsm.cpp.o" "gcc" "src/logic/CMakeFiles/mpx_logic.dir/fsm.cpp.o.d"
  "/root/repo/src/logic/lasso.cpp" "src/logic/CMakeFiles/mpx_logic.dir/lasso.cpp.o" "gcc" "src/logic/CMakeFiles/mpx_logic.dir/lasso.cpp.o.d"
  "/root/repo/src/logic/monitor.cpp" "src/logic/CMakeFiles/mpx_logic.dir/monitor.cpp.o" "gcc" "src/logic/CMakeFiles/mpx_logic.dir/monitor.cpp.o.d"
  "/root/repo/src/logic/parser.cpp" "src/logic/CMakeFiles/mpx_logic.dir/parser.cpp.o" "gcc" "src/logic/CMakeFiles/mpx_logic.dir/parser.cpp.o.d"
  "/root/repo/src/logic/product_monitor.cpp" "src/logic/CMakeFiles/mpx_logic.dir/product_monitor.cpp.o" "gcc" "src/logic/CMakeFiles/mpx_logic.dir/product_monitor.cpp.o.d"
  "/root/repo/src/logic/ptltl.cpp" "src/logic/CMakeFiles/mpx_logic.dir/ptltl.cpp.o" "gcc" "src/logic/CMakeFiles/mpx_logic.dir/ptltl.cpp.o.d"
  "/root/repo/src/logic/state_expr.cpp" "src/logic/CMakeFiles/mpx_logic.dir/state_expr.cpp.o" "gcc" "src/logic/CMakeFiles/mpx_logic.dir/state_expr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/observer/CMakeFiles/mpx_observer.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mpx_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/vc/CMakeFiles/mpx_vc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
