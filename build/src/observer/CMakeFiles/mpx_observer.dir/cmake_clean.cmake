file(REMOVE_RECURSE
  "CMakeFiles/mpx_observer.dir/causality.cpp.o"
  "CMakeFiles/mpx_observer.dir/causality.cpp.o.d"
  "CMakeFiles/mpx_observer.dir/global_state.cpp.o"
  "CMakeFiles/mpx_observer.dir/global_state.cpp.o.d"
  "CMakeFiles/mpx_observer.dir/lattice.cpp.o"
  "CMakeFiles/mpx_observer.dir/lattice.cpp.o.d"
  "CMakeFiles/mpx_observer.dir/online.cpp.o"
  "CMakeFiles/mpx_observer.dir/online.cpp.o.d"
  "CMakeFiles/mpx_observer.dir/run_enumerator.cpp.o"
  "CMakeFiles/mpx_observer.dir/run_enumerator.cpp.o.d"
  "libmpx_observer.a"
  "libmpx_observer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpx_observer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
