file(REMOVE_RECURSE
  "libmpx_observer.a"
)
