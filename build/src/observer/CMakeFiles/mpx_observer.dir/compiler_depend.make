# Empty compiler generated dependencies file for mpx_observer.
# This may be replaced when dependencies are built.
