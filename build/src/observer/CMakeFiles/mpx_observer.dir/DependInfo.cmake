
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/observer/causality.cpp" "src/observer/CMakeFiles/mpx_observer.dir/causality.cpp.o" "gcc" "src/observer/CMakeFiles/mpx_observer.dir/causality.cpp.o.d"
  "/root/repo/src/observer/global_state.cpp" "src/observer/CMakeFiles/mpx_observer.dir/global_state.cpp.o" "gcc" "src/observer/CMakeFiles/mpx_observer.dir/global_state.cpp.o.d"
  "/root/repo/src/observer/lattice.cpp" "src/observer/CMakeFiles/mpx_observer.dir/lattice.cpp.o" "gcc" "src/observer/CMakeFiles/mpx_observer.dir/lattice.cpp.o.d"
  "/root/repo/src/observer/online.cpp" "src/observer/CMakeFiles/mpx_observer.dir/online.cpp.o" "gcc" "src/observer/CMakeFiles/mpx_observer.dir/online.cpp.o.d"
  "/root/repo/src/observer/run_enumerator.cpp" "src/observer/CMakeFiles/mpx_observer.dir/run_enumerator.cpp.o" "gcc" "src/observer/CMakeFiles/mpx_observer.dir/run_enumerator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/mpx_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/vc/CMakeFiles/mpx_vc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
