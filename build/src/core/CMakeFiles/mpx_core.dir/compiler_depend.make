# Empty compiler generated dependencies file for mpx_core.
# This may be replaced when dependencies are built.
