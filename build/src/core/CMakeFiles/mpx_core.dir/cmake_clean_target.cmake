file(REMOVE_RECURSE
  "libmpx_core.a"
)
