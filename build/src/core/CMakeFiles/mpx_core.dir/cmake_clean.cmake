file(REMOVE_RECURSE
  "CMakeFiles/mpx_core.dir/instrumentor.cpp.o"
  "CMakeFiles/mpx_core.dir/instrumentor.cpp.o.d"
  "CMakeFiles/mpx_core.dir/lamport.cpp.o"
  "CMakeFiles/mpx_core.dir/lamport.cpp.o.d"
  "CMakeFiles/mpx_core.dir/reference.cpp.o"
  "CMakeFiles/mpx_core.dir/reference.cpp.o.d"
  "CMakeFiles/mpx_core.dir/relevance.cpp.o"
  "CMakeFiles/mpx_core.dir/relevance.cpp.o.d"
  "libmpx_core.a"
  "libmpx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
