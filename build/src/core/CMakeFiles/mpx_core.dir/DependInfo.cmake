
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/instrumentor.cpp" "src/core/CMakeFiles/mpx_core.dir/instrumentor.cpp.o" "gcc" "src/core/CMakeFiles/mpx_core.dir/instrumentor.cpp.o.d"
  "/root/repo/src/core/lamport.cpp" "src/core/CMakeFiles/mpx_core.dir/lamport.cpp.o" "gcc" "src/core/CMakeFiles/mpx_core.dir/lamport.cpp.o.d"
  "/root/repo/src/core/reference.cpp" "src/core/CMakeFiles/mpx_core.dir/reference.cpp.o" "gcc" "src/core/CMakeFiles/mpx_core.dir/reference.cpp.o.d"
  "/root/repo/src/core/relevance.cpp" "src/core/CMakeFiles/mpx_core.dir/relevance.cpp.o" "gcc" "src/core/CMakeFiles/mpx_core.dir/relevance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/mpx_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/vc/CMakeFiles/mpx_vc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
