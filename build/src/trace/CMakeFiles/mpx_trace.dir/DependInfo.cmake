
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/channel.cpp" "src/trace/CMakeFiles/mpx_trace.dir/channel.cpp.o" "gcc" "src/trace/CMakeFiles/mpx_trace.dir/channel.cpp.o.d"
  "/root/repo/src/trace/codec.cpp" "src/trace/CMakeFiles/mpx_trace.dir/codec.cpp.o" "gcc" "src/trace/CMakeFiles/mpx_trace.dir/codec.cpp.o.d"
  "/root/repo/src/trace/event.cpp" "src/trace/CMakeFiles/mpx_trace.dir/event.cpp.o" "gcc" "src/trace/CMakeFiles/mpx_trace.dir/event.cpp.o.d"
  "/root/repo/src/trace/var_table.cpp" "src/trace/CMakeFiles/mpx_trace.dir/var_table.cpp.o" "gcc" "src/trace/CMakeFiles/mpx_trace.dir/var_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vc/CMakeFiles/mpx_vc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
