# Empty compiler generated dependencies file for mpx_trace.
# This may be replaced when dependencies are built.
