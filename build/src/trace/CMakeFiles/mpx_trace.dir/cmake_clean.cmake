file(REMOVE_RECURSE
  "CMakeFiles/mpx_trace.dir/channel.cpp.o"
  "CMakeFiles/mpx_trace.dir/channel.cpp.o.d"
  "CMakeFiles/mpx_trace.dir/codec.cpp.o"
  "CMakeFiles/mpx_trace.dir/codec.cpp.o.d"
  "CMakeFiles/mpx_trace.dir/event.cpp.o"
  "CMakeFiles/mpx_trace.dir/event.cpp.o.d"
  "CMakeFiles/mpx_trace.dir/var_table.cpp.o"
  "CMakeFiles/mpx_trace.dir/var_table.cpp.o.d"
  "libmpx_trace.a"
  "libmpx_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpx_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
