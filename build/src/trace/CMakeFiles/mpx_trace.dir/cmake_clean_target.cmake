file(REMOVE_RECURSE
  "libmpx_trace.a"
)
