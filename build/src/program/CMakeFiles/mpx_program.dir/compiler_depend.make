# Empty compiler generated dependencies file for mpx_program.
# This may be replaced when dependencies are built.
