file(REMOVE_RECURSE
  "libmpx_program.a"
)
