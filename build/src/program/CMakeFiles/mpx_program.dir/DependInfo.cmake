
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/program/corpus.cpp" "src/program/CMakeFiles/mpx_program.dir/corpus.cpp.o" "gcc" "src/program/CMakeFiles/mpx_program.dir/corpus.cpp.o.d"
  "/root/repo/src/program/explorer.cpp" "src/program/CMakeFiles/mpx_program.dir/explorer.cpp.o" "gcc" "src/program/CMakeFiles/mpx_program.dir/explorer.cpp.o.d"
  "/root/repo/src/program/expr.cpp" "src/program/CMakeFiles/mpx_program.dir/expr.cpp.o" "gcc" "src/program/CMakeFiles/mpx_program.dir/expr.cpp.o.d"
  "/root/repo/src/program/interpreter.cpp" "src/program/CMakeFiles/mpx_program.dir/interpreter.cpp.o" "gcc" "src/program/CMakeFiles/mpx_program.dir/interpreter.cpp.o.d"
  "/root/repo/src/program/program.cpp" "src/program/CMakeFiles/mpx_program.dir/program.cpp.o" "gcc" "src/program/CMakeFiles/mpx_program.dir/program.cpp.o.d"
  "/root/repo/src/program/scheduler.cpp" "src/program/CMakeFiles/mpx_program.dir/scheduler.cpp.o" "gcc" "src/program/CMakeFiles/mpx_program.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/mpx_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/vc/CMakeFiles/mpx_vc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
