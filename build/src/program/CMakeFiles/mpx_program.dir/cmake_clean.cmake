file(REMOVE_RECURSE
  "CMakeFiles/mpx_program.dir/corpus.cpp.o"
  "CMakeFiles/mpx_program.dir/corpus.cpp.o.d"
  "CMakeFiles/mpx_program.dir/explorer.cpp.o"
  "CMakeFiles/mpx_program.dir/explorer.cpp.o.d"
  "CMakeFiles/mpx_program.dir/expr.cpp.o"
  "CMakeFiles/mpx_program.dir/expr.cpp.o.d"
  "CMakeFiles/mpx_program.dir/interpreter.cpp.o"
  "CMakeFiles/mpx_program.dir/interpreter.cpp.o.d"
  "CMakeFiles/mpx_program.dir/program.cpp.o"
  "CMakeFiles/mpx_program.dir/program.cpp.o.d"
  "CMakeFiles/mpx_program.dir/scheduler.cpp.o"
  "CMakeFiles/mpx_program.dir/scheduler.cpp.o.d"
  "libmpx_program.a"
  "libmpx_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpx_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
