
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/campaign.cpp" "src/analysis/CMakeFiles/mpx_analysis.dir/campaign.cpp.o" "gcc" "src/analysis/CMakeFiles/mpx_analysis.dir/campaign.cpp.o.d"
  "/root/repo/src/analysis/liveness.cpp" "src/analysis/CMakeFiles/mpx_analysis.dir/liveness.cpp.o" "gcc" "src/analysis/CMakeFiles/mpx_analysis.dir/liveness.cpp.o.d"
  "/root/repo/src/analysis/predictive_analyzer.cpp" "src/analysis/CMakeFiles/mpx_analysis.dir/predictive_analyzer.cpp.o" "gcc" "src/analysis/CMakeFiles/mpx_analysis.dir/predictive_analyzer.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/mpx_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/mpx_analysis.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mpx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/detect/CMakeFiles/mpx_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/logic/CMakeFiles/mpx_logic.dir/DependInfo.cmake"
  "/root/repo/build/src/observer/CMakeFiles/mpx_observer.dir/DependInfo.cmake"
  "/root/repo/build/src/program/CMakeFiles/mpx_program.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mpx_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/vc/CMakeFiles/mpx_vc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
