file(REMOVE_RECURSE
  "CMakeFiles/mpx_analysis.dir/campaign.cpp.o"
  "CMakeFiles/mpx_analysis.dir/campaign.cpp.o.d"
  "CMakeFiles/mpx_analysis.dir/liveness.cpp.o"
  "CMakeFiles/mpx_analysis.dir/liveness.cpp.o.d"
  "CMakeFiles/mpx_analysis.dir/predictive_analyzer.cpp.o"
  "CMakeFiles/mpx_analysis.dir/predictive_analyzer.cpp.o.d"
  "CMakeFiles/mpx_analysis.dir/report.cpp.o"
  "CMakeFiles/mpx_analysis.dir/report.cpp.o.d"
  "libmpx_analysis.a"
  "libmpx_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpx_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
