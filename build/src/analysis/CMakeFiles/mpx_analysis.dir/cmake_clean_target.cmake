file(REMOVE_RECURSE
  "libmpx_analysis.a"
)
