# Empty dependencies file for mpx_analysis.
# This may be replaced when dependencies are built.
