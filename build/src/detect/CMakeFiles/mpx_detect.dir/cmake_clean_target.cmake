file(REMOVE_RECURSE
  "libmpx_detect.a"
)
