# Empty compiler generated dependencies file for mpx_detect.
# This may be replaced when dependencies are built.
