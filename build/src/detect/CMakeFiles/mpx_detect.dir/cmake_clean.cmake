file(REMOVE_RECURSE
  "CMakeFiles/mpx_detect.dir/deadlock_detector.cpp.o"
  "CMakeFiles/mpx_detect.dir/deadlock_detector.cpp.o.d"
  "CMakeFiles/mpx_detect.dir/race_detector.cpp.o"
  "CMakeFiles/mpx_detect.dir/race_detector.cpp.o.d"
  "libmpx_detect.a"
  "libmpx_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpx_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
