# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_landing "/root/repo/build/examples/landing_controller")
set_tests_properties(example_landing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_xyz "/root/repo/build/examples/xyz_safety")
set_tests_properties(example_xyz PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bank "/root/repo/build/examples/bank_account")
set_tests_properties(example_bank PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_philosophers "/root/repo/build/examples/dining_philosophers")
set_tests_properties(example_philosophers PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_liveness "/root/repo/build/examples/liveness_lasso")
set_tests_properties(example_liveness PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_real_threads "/root/repo/build/examples/real_threads")
set_tests_properties(example_real_threads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_replay "/root/repo/build/examples/trace_replay")
set_tests_properties(example_replay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_list "/root/repo/build/examples/mpx_cli" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_landing "/root/repo/build/examples/mpx_cli" "analyze" "landing" "--schedule" "observed" "--lattice" "--dot" "--json")
set_tests_properties(cli_landing PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_explore "/root/repo/build/examples/mpx_cli" "explore" "xyz")
set_tests_properties(cli_explore PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;32;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(cli_peterson "/root/repo/build/examples/mpx_cli" "analyze" "peterson" "--seed" "3")
set_tests_properties(cli_peterson PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;34;add_test;/root/repo/examples/CMakeLists.txt;0;")
