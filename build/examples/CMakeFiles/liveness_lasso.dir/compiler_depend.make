# Empty compiler generated dependencies file for liveness_lasso.
# This may be replaced when dependencies are built.
