file(REMOVE_RECURSE
  "CMakeFiles/liveness_lasso.dir/liveness_lasso.cpp.o"
  "CMakeFiles/liveness_lasso.dir/liveness_lasso.cpp.o.d"
  "liveness_lasso"
  "liveness_lasso.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/liveness_lasso.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
