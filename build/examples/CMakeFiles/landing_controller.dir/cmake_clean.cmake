file(REMOVE_RECURSE
  "CMakeFiles/landing_controller.dir/landing_controller.cpp.o"
  "CMakeFiles/landing_controller.dir/landing_controller.cpp.o.d"
  "landing_controller"
  "landing_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/landing_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
