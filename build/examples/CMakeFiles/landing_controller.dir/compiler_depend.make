# Empty compiler generated dependencies file for landing_controller.
# This may be replaced when dependencies are built.
