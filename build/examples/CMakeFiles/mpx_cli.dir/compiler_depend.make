# Empty compiler generated dependencies file for mpx_cli.
# This may be replaced when dependencies are built.
