file(REMOVE_RECURSE
  "CMakeFiles/mpx_cli.dir/mpx_cli.cpp.o"
  "CMakeFiles/mpx_cli.dir/mpx_cli.cpp.o.d"
  "mpx_cli"
  "mpx_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpx_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
