file(REMOVE_RECURSE
  "CMakeFiles/xyz_safety.dir/xyz_safety.cpp.o"
  "CMakeFiles/xyz_safety.dir/xyz_safety.cpp.o.d"
  "xyz_safety"
  "xyz_safety.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xyz_safety.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
