# Empty dependencies file for xyz_safety.
# This may be replaced when dependencies are built.
